"""Shared benchmark configuration.

Experiment benches run the real harnesses at reduced horizons (the
simulations are minutes of simulated time; pytest-benchmark runs them
once via ``pedantic``), then assert the paper's *shape* on the result.
Microbenches (engine, BOE, winner process) use normal rounds.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive harness exactly once and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
