"""Ablation benches for the design choices DESIGN.md calls out.

Each bench perturbs one EZ-flow design choice on the unstable 4-hop
chain and reports/asserts its effect:

* the 50-sample averaging window;
* the tiny b_min (Section 3.3: must be ~0.05, not ~5);
* tolerance to missed overhearings (BOE robustness);
* per-successor queues vs the paper's requirement.
"""

import pytest

from repro.core import EZFlowConfig, attach_ezflow
from repro.sim.units import seconds
from repro.topology.linear import linear_chain

DURATION_S = 120.0
WARMUP_S = 30.0


def chain_throughput_kbps(config=None, overhear_loss=0.0, seed=3):
    network = linear_chain(hops=4, seed=seed)
    if overhear_loss:
        for node_id in network.nodes:
            network.channel.set_overhear_loss(node_id, overhear_loss)
    attach_ezflow(network.nodes, config)
    network.run(until_us=seconds(DURATION_S))
    throughput = network.flow("F1").throughput_bps(seconds(WARMUP_S), seconds(DURATION_S))
    buffer1 = network.nodes[1].total_buffer_occupancy()
    return throughput / 1000.0, buffer1


def test_bench_ablation_sample_window(benchmark, once):
    """Sweep the CAA averaging window (paper default 50)."""

    def sweep():
        return {
            window: chain_throughput_kbps(EZFlowConfig(sample_window=window))
            for window in (5, 50, 200)
        }

    results = once(benchmark, sweep)
    # Windows up to the paper's 50 stabilize within this horizon; the
    # oversized 200-sample window demonstrates the tradeoff Section 3.3
    # names — each CAA decision then needs ~200 forwarded packets, so
    # convergence outlasts the run (its b1 may still be saturated).
    for window in (5, 50):
        thr, buffer1 = results[window]
        assert buffer1 <= 30, f"window={window} left b1={buffer1}"
    # The paper's window adapts better than standard 802.11's ~100 kb/s.
    assert results[50][0] > 120.0
    # And reacts no slower than the oversized window.
    assert results[50][0] >= results[200][0] * 0.8


def test_bench_ablation_bmin(benchmark, once):
    """b_min must be tiny: a large b_min lets nodes stay too aggressive
    (they see 'underutilization' even with packets queued)."""

    def sweep():
        return {
            b_min: chain_throughput_kbps(EZFlowConfig(b_min=b_min))
            for b_min in (0.05, 5.0)
        }

    results = once(benchmark, sweep)
    thr_tiny, buf_tiny = results[0.05]
    thr_large, buf_large = results[5.0]
    # The paper's tiny threshold keeps the first relay's buffer lower
    # (aggressive halving is gated on a truly idle successor).
    assert buf_tiny <= buf_large + 10


def test_bench_ablation_overhear_loss(benchmark, once):
    """Section 3.2: EZ-flow survives missed overhearings — fewer
    samples mean slower reaction, not wrong estimates. Moderate loss
    converges within the normal horizon; 90% loss needs ~10x longer
    (one BOE sample per ten forwarded packets) yet still doubles the
    unstabilized throughput."""

    def sweep():
        return {
            0.0: chain_throughput_kbps(),
            0.6: chain_throughput_kbps_long(overhear_loss=0.6, duration_s=150.0),
            0.9: chain_throughput_kbps_long(overhear_loss=0.9, duration_s=400.0),
        }

    results = once(benchmark, sweep)
    assert results[0.0][1] <= 30  # lossless sniffing: fully stabilized
    # Standard 802.11 reaches ~100 kb/s on this chain; with degraded
    # sniffing EZ-flow still clearly beats it given time to converge.
    assert results[0.6][0] > 150.0
    assert results[0.9][0] > 150.0


def chain_throughput_kbps_long(overhear_loss, duration_s, seed=3):
    network = linear_chain(hops=4, seed=seed)
    for node_id in network.nodes:
        network.channel.set_overhear_loss(node_id, overhear_loss)
    attach_ezflow(network.nodes)
    network.run(until_us=seconds(duration_s))
    throughput = network.flow("F1").throughput_bps(
        seconds(duration_s / 2), seconds(duration_s)
    )
    return throughput / 1000.0, network.nodes[1].total_buffer_occupancy()


def test_bench_ablation_counter_asymmetry(benchmark, once):
    """The cw-dependent countup/countdown thresholds are the fairness
    device; a symmetric variant (fixed thresholds) must still
    stabilize a single chain — the asymmetry matters for multi-flow
    fairness, not single-flow stability."""

    def run_symmetric():
        # countdown_base=8 with log2(cw) in [4..15] makes both counter
        # thresholds nearly flat across cw values.
        return chain_throughput_kbps(EZFlowConfig(countdown_base=8))

    throughput, buffer1 = once(benchmark, run_symmetric)
    assert buffer1 <= 30
