"""Buffer-size ablation (the Section 2.3 critique).

The paper criticises buffer-hungry algorithms (Shin et al. need
thousands of packets per node: "large buffers imply a large end-to-end
delay; [they] do not match current hardware, which usually have a
standard MAC buffer of only 50 packets"). This bench sweeps the queue
capacity on the 4-hop chain:

* standard 802.11: larger buffers only store more delay — goodput is
  flat while path delay grows with capacity;
* EZ-flow: performance is insensitive to capacity, because converged
  queues sit near-empty — it works on 10-packet hardware.
"""

from repro.core import attach_ezflow
from repro.mac.dcf import DcfConfig
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.net.flow import Flow
from repro.sim.units import seconds
from repro.topology.builders import build_chain_positions, build_network
from repro.traffic.sources import CbrSource

DURATION_S = 400.0
WARMUP_S = 250.0


def run_chain(capacity: int, ezflow: bool, seed: int = 3):
    positions = build_chain_positions(5, 200.0)
    conn = GeometricConnectivity(positions, RangeModel())
    network = build_network(conn, seed=seed, mac_config=DcfConfig())
    # Rebuild stacks with the requested queue capacity.
    for stack in network.nodes.values():
        stack.queue_capacity = capacity
    network.routing.install_path(list(range(5)))
    flow = Flow("F1", src=0, dst=4)
    network.flows["F1"] = flow
    network.nodes[4].register_flow(flow)
    network.sources.append(
        CbrSource(network.engine, network.nodes[0], flow, 2_000_000.0, 1000)
    )
    if ezflow:
        attach_ezflow(network.nodes)
    network.run(until_us=seconds(DURATION_S))
    goodput = flow.throughput_bps(seconds(WARMUP_S), seconds(DURATION_S)) / 1000.0
    delay = flow.mean_path_delay_s(seconds(WARMUP_S), seconds(DURATION_S))
    return goodput, delay


def test_bench_buffer_capacity(benchmark, once):
    def sweep():
        return {
            (capacity, ezflow): run_chain(capacity, ezflow)
            for capacity in (10, 50, 200)
            for ezflow in (False, True)
        }

    results = once(benchmark, sweep)
    # Standard 802.11: bigger buffers store delay, not goodput.
    delay_std_small = results[(10, False)][1]
    delay_std_large = results[(200, False)][1]
    assert delay_std_large > 3 * delay_std_small
    goodput_std = [results[(c, False)][0] for c in (10, 50, 200)]
    assert max(goodput_std) < 1.5 * min(goodput_std)
    # EZ-flow: insensitive to capacity — works on tiny hardware buffers.
    for capacity in (10, 50, 200):
        goodput, delay = results[(capacity, True)]
        assert goodput > 1.4 * results[(capacity, False)][0]
        assert delay < 0.6
