"""Figure 1 bench: 3- vs 4-hop buffer evolution and throughput collapse."""

from repro.experiments import fig1


def test_bench_fig1(benchmark, once):
    result = once(benchmark, fig1.run, duration_s=120.0, warmup_s=20.0, seed=1)
    table = result.find_table("Figure 1")

    by_hops = {}
    for hops, thr, relay, mean_buf, final, saturated in table.rows:
        by_hops.setdefault(hops, {})[relay] = (thr, mean_buf, saturated)

    thr3 = by_hops[3]["node1"][0]
    thr4 = by_hops[4]["node1"][0]
    # Paper: 4-hop throughput almost twice smaller than 3-hop.
    assert thr4 < 0.7 * thr3
    # Paper: the 4-hop first relay builds up until saturation and stays.
    assert by_hops[4]["node1"][2] > 0.9  # share of time saturated
    # Downstream relays stay near-empty in both chains.
    assert by_hops[4]["node3"][1] < 5.0
    assert by_hops[3]["node2"][1] < 10.0
