"""Figure 10 bench: scenario-2 delay series, ± EZ-flow."""

from repro.experiments import scenario2
from repro.metrics.stats import mean


def test_bench_fig10(benchmark, once):
    result = once(benchmark, scenario2.run, time_scale=0.05, seed=6)
    table = result.find_table("Table 3")

    path_delay = {
        (period, ez, flow): pd
        for period, ez, flow, paper, thr, sd, fi, pd in table.rows
    }
    # EZ-flow reduces F1's relay-path delay (paper: an order of
    # magnitude on the full schedule; the compressed schedule leaves
    # part of the transient inside the measurement window).
    assert path_delay[("P2", "on", "F1")] < 0.75 * path_delay[("P2", "off", "F1")]
    assert path_delay[("P3", "on", "F1")] < 0.5 * path_delay[("P3", "off", "F1")]
    # Delay series exist for each flow and configuration.
    for tag in ("std", "ez"):
        for flow in ("F1", "F2", "F3"):
            assert f"fig10.{tag}.{flow}.delay_s" in result.series
