"""Figure 11 bench: scenario-2 contention-window adaptation."""

from repro.experiments import scenario2


def test_bench_fig11(benchmark, once):
    result = once(benchmark, scenario2.run, time_scale=0.05, seed=6)
    cw_table = result.find_table("Figure 11")

    cw = {node: value for ez, node, successor, value in cw_table.rows}
    # Every flow's source throttles itself above its first relay's
    # window (paper: sources ratchet to 2^9..2^10, relays stay low).
    assert cw[0] > cw[1]
    assert cw[10] > cw[11]
    assert cw[19] > cw[20]
    assert cw[0] >= 128 and cw[10] >= 128 and cw[19] >= 128
