"""Figure 4 bench: testbed relay buffers, standard 802.11 vs EZ-flow."""

from repro.experiments import fig4


def test_bench_fig4(benchmark, once):
    result = once(benchmark, fig4.run, duration_s=300.0, warmup_s=60.0, seed=4)
    table = result.find_table("Figure 4")

    means = {
        (flow, node, ez): measured
        for flow, ez, node, paper, measured, final in table.rows
    }
    # Without EZ-flow the pre-bottleneck relays saturate (paper ~42-44).
    assert means[("F1", "N1", "off")] > 30.0 or means[("F1", "N2", "off")] > 30.0
    assert means[("F2", "N4", "off")] > 35.0
    # With EZ-flow the same relays are stabilized. The queue mass may
    # redistribute between N1 and N2 (the paper's testbed had it at
    # both), so compare the pre-bottleneck total.
    assert means[("F2", "N4", "on")] < 15.0
    f1_off_total = sum(means[("F1", n, "off")] for n in ("N1", "N2", "N3"))
    f1_on_total = sum(means[("F1", n, "on")] for n in ("N1", "N2", "N3"))
    assert f1_on_total < 0.8 * f1_off_total
    # Relays past the bottleneck stay small in every configuration.
    assert means[("F2", "N6", "off")] < 10.0
    assert means[("F2", "N6", "on")] < 10.0
