"""Figure 6 bench: scenario-1 throughput series, ± EZ-flow."""

from repro.experiments import scenario1


def test_bench_fig6(benchmark, once):
    result = once(benchmark, scenario1.run, time_scale=0.06, seed=5)
    table = result.find_table("Scenario 1")

    rows = {
        (period.split()[0], ez, flow): thr
        for period, ez, flow, thr, delay, path_delay in table.rows
    }
    # Period 1 (F1 alone): EZ-flow raises throughput (paper: +20%).
    assert rows[("P1", "on", "F1")] > 1.1 * rows[("P1", "off", "F1")]
    # Period 3: the network re-adapts after F2 leaves.
    assert rows[("P3", "on", "F1")] > 1.1 * rows[("P3", "off", "F1")]
    # The throughput series for the figures exist and are non-trivial.
    for tag in ("std", "ez"):
        series = result.series[f"fig6.{tag}.F1.throughput_kbps"]
        assert len(series) > 10
        assert max(v for _, v in series) > 50.0
