"""Figure 7 bench: scenario-1 delay series, ± EZ-flow."""

from repro.experiments import scenario1


def test_bench_fig7(benchmark, once):
    # Delay convergence needs a longer horizon than the throughput
    # shapes: the CAA ratchets one doubling per ~50 overheard packets.
    result = once(benchmark, scenario1.run, time_scale=0.2, seed=5, settle_fraction=0.5)
    table = result.find_table("Scenario 1")

    path_delay = {
        (period.split()[0], ez, flow): pd
        for period, ez, flow, thr, delay, pd in table.rows
    }
    # EZ-flow cuts the relay-path delay of the resident flow sharply
    # (paper: 4.1 s -> 0.2 s on the full schedule).
    assert path_delay[("P1", "on", "F1")] < 0.6 * path_delay[("P1", "off", "F1")]
    assert path_delay[("P3", "on", "F1")] < 0.6 * path_delay[("P3", "off", "F1")]
    # Delay series are recorded per delivered packet.
    assert len(result.series["fig7.std.F1.delay_s"]) > 100
    assert len(result.series["fig7.ez.F1.path_delay_s"]) > 100
