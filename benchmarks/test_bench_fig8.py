"""Figure 8 bench: scenario-1 contention-window adaptation."""

from repro.experiments import scenario1


def test_bench_fig8(benchmark, once):
    result = once(benchmark, scenario1.run, time_scale=0.06, seed=5)
    cw_table = result.find_table("Figure 8")

    cw = {node: value for ez, node, successor, value in cw_table.rows}
    # The sources (branch heads) throttle themselves hardest; the trunk
    # relays stay at or near the minimum (paper: relays 2^4, source up
    # to 2^7..2^11).
    assert cw[12] >= 128        # F1's source
    assert cw[4] <= 64          # junction relay
    assert cw[3] <= 32 and cw[2] <= 32
    assert cw[12] > cw[4]
    # cw evolution series recorded for the figure.
    assert any(key.startswith("fig8.cw.node") for key in result.series)
