"""Cross-mechanism comparison benches.

* all four mechanisms (802.11, EZ-flow, static penalty-q, DiffQ-style)
  on the unstable 4-hop chain — the comparison the related-work section
  frames;
* the cw-based vs rate-based EZ-flow variants (Section 7 extension);
* EZ-flow on a gateway tree with genuine per-successor queues.
"""

from repro.baselines.diffq import attach_diffq
from repro.baselines.penalty import apply_penalty
from repro.core import attach_ezflow, attach_rate_ezflow
from repro.sim.units import seconds
from repro.topology.linear import linear_chain
from repro.topology.trees import tree_backhaul

DURATION_S = 300.0


def run_chain(mechanism: str, seed: int = 3):
    network = linear_chain(
        hops=4, seed=seed, saturated=False, rate_bps=2_000_000.0
    )
    if mechanism == "ezflow":
        attach_ezflow(network.nodes)
    elif mechanism == "rate-ezflow":
        attach_rate_ezflow(network.nodes)
    elif mechanism == "penalty":
        network.run(until_us=seconds(1))
        apply_penalty(network.nodes, sources=[0], q=16 / 128)
    elif mechanism == "diffq":
        attach_diffq(network.nodes)
    network.run(until_us=seconds(DURATION_S))
    throughput = network.flow("F1").throughput_bps(
        seconds(DURATION_S / 2), seconds(DURATION_S)
    )
    return throughput / 1000.0


def test_bench_mechanism_comparison(benchmark, once):
    def sweep():
        return {
            m: run_chain(m)
            for m in ("802.11", "ezflow", "penalty", "diffq", "rate-ezflow")
        }

    results = once(benchmark, sweep)
    baseline = results["802.11"]
    # Every flow-control mechanism beats plain 802.11 on the unstable chain.
    for mechanism in ("ezflow", "penalty", "diffq", "rate-ezflow"):
        assert results[mechanism] > 1.3 * baseline, (mechanism, results)
    # EZ-flow matches the hand-tuned static penalty without knowing q.
    assert results["ezflow"] > 0.85 * results["penalty"]
    # And matches DiffQ without its per-packet header overhead.
    assert results["ezflow"] > 0.85 * results["diffq"]


def test_bench_tree_backhaul(benchmark, once):
    """EZ-flow with several per-successor queues at the gateway."""

    def run(ezflow):
        network = tree_backhaul(depth=3, fanout=2, seed=2, rate_bps=120_000.0)
        controllers = attach_ezflow(network.nodes) if ezflow else {}
        network.run(until_us=seconds(200))
        start, end = seconds(100), seconds(200)
        total = sum(
            flow.throughput_bps(start, end) for flow in network.flows.values()
        )
        root_buffer = network.nodes[0].total_buffer_occupancy()
        root_caas = len(controllers[0].caas) if ezflow else 0
        return total / 1000.0, root_buffer, root_caas

    def both():
        return {"off": run(False), "on": run(True)}

    results = once(benchmark, both)
    total_off, buffer_off, _ = results["off"]
    total_on, buffer_on, caas = results["on"]
    # The gateway's aggregate demand saturates the root region; EZ-flow
    # must not lose aggregate goodput and must manage one CAA per child.
    assert caas == 2
    assert total_on > 0.8 * total_off
