"""Microbenchmarks of the hot paths (real pytest-benchmark rounds)."""

import random

from repro.analysis.activation import sample_activation
from repro.core.boe import BufferOccupancyEstimator
from repro.sim.engine import Engine
from repro.sim.units import seconds
from repro.topology.linear import linear_chain

INF = float("inf")


def test_bench_engine_event_throughput(benchmark):
    """Raw event scheduling + dispatch rate of the simulation core."""
    events = 20_000

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < events:
                engine.schedule(1, tick)

        engine.schedule(0, tick)
        engine.run()
        return count[0]

    # CI's benchmark smoke derives events/s from this, not from a
    # hard-coded constant: the floor check follows the micro if its
    # event count ever changes.
    benchmark.extra_info["events"] = events
    assert benchmark(run) == events


def test_bench_boe_overhearing(benchmark):
    """BOE send/overhear cycle at paper-default history size."""

    def run():
        boe = BufferOccupancyEstimator("next", history_size=1000)
        for i in range(2000):
            boe.note_sent(i & 0xFFFF)
            if i % 2:
                boe.note_overheard((i - 1) & 0xFFFF)
        return boe.samples_produced

    assert benchmark(run) == 1000


def test_bench_winner_process_sampling(benchmark):
    """Slot sampling for the stability random walk (hot loop)."""
    rng = random.Random(1)
    buffers = [INF, 3.0, 0.0, 5.0]
    cw = (16, 16, 16, 16)

    def run():
        total = 0
        for _ in range(5_000):
            total += sum(sample_activation(buffers, cw, 4, rng))
        return total

    assert benchmark(run) > 0


def test_bench_packet_simulation_rate(benchmark):
    """Simulated-seconds-per-wall-second of the full MAC/PHY stack."""

    def run():
        network = linear_chain(hops=3, seed=1)
        network.run(until_us=seconds(10))
        return network.flow("F1").delivered

    assert benchmark(run) > 0
