"""Section 6 bench: Table 4, Theorem 1 drift, random-walk contrast."""

import pytest

from repro.experiments import stability


def test_bench_stability(benchmark, once):
    result = once(benchmark, stability.run, slots=100_000, trials=400, seed=7)

    # Table 4: closed forms agree with the winner process exactly.
    table4 = result.find_table("Table 4")
    for region, pattern, closed, process in table4.rows:
        assert closed == pytest.approx(process, abs=1e-12)

    # Theorem 1: negative k-step drift in every region outside S.
    drift = result.find_table("Theorem 1")
    assert len(drift.rows) == 7
    for region, k, state, drift_value, negative in drift.rows:
        assert negative, f"region {region} drift {drift_value}"

    # Random walk: standard 802.11 diverges, EZ-flow stays bounded.
    walk = {rule: (max_b1, delivered) for rule, slots, max_b1, final, delivered in walk_rows(result)}
    assert walk["802.11 fixed cw"][0] > 20 * walk["EZ-flow"][0]
    # EZ-flow pays no throughput price in the slotted model.
    assert walk["EZ-flow"][1] >= 0.95 * walk["802.11 fixed cw"][1]


def walk_rows(result):
    return result.find_table("Random walk").rows
