"""Table 1 bench: isolated testbed link capacities, l2 bottleneck."""

from repro.experiments import table1
from repro.topology.testbed import TESTBED_LINK_RATES_KBPS


def test_bench_table1(benchmark, once):
    result = once(benchmark, table1.run, duration_s=60.0, warmup_s=10.0, seed=1)
    table = result.find_table("Table 1")
    measured = table.column("measured_kbps")
    paper = table.column("paper_kbps")

    assert len(measured) == 7
    # The bottleneck must be l2, as in the paper.
    assert measured.index(min(measured)) == 2
    # Each link within 25% of its calibration target.
    for got, want in zip(measured, paper):
        assert abs(got - want) / want < 0.25
    # Ordering shape: l2 clearly below every other link.
    others = [m for i, m in enumerate(measured) if i != 2]
    assert min(others) > 1.3 * measured[2]
