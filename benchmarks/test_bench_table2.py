"""Table 2 bench: testbed throughput/fairness shapes with EZ-flow."""

from repro.experiments import table2


def test_bench_table2(benchmark, once):
    result = once(benchmark, table2.run, duration_s=250.0, warmup_s=50.0, seed=4)
    table = result.find_table("Table 2")

    rows = {
        (scenario, flow, ez): (measured, fi)
        for scenario, ez, flow, paper, measured, sd, fi in table.rows
    }
    # Single-flow scenarios: EZ-flow raises throughput.
    assert rows[("F1 alone", "F1", "on")][0] > rows[("F1 alone", "F1", "off")][0]
    assert rows[("F2 alone", "F2", "on")][0] > rows[("F2 alone", "F2", "off")][0]
    # Parking lot under 802.11: the long flow is starved.
    f1_off = rows[("parking lot", "F1", "off")][0]
    f2_off = rows[("parking lot", "F2", "off")][0]
    assert f1_off < 0.3 * f2_off
    # EZ-flow un-starves F1 and raises the fairness index.
    f1_on = rows[("parking lot", "F1", "on")][0]
    assert f1_on > 5 * max(f1_off, 1.0)
    fi_off = float(rows[("parking lot", "F1", "off")][1])
    fi_on = float(rows[("parking lot", "F1", "on")][1])
    assert fi_on > fi_off + 0.1
