"""Table 3 bench: scenario-2 throughput, smoothness and fairness."""

from repro.experiments import scenario2


def test_bench_table3(benchmark, once):
    result = once(benchmark, scenario2.run, time_scale=0.05, seed=6)
    table = result.find_table("Table 3")

    rows = {
        (period, ez, flow): (thr, fi)
        for period, ez, flow, paper, thr, sd, fi, pd in table.rows
    }
    # Period 2 (all three flows): EZ-flow raises the aggregate
    # throughput (paper: +62%) and the fairness index (0.64 -> 0.80).
    agg_off = sum(rows[("P2", "off", f)][0] for f in ("F1", "F2", "F3"))
    agg_on = sum(rows[("P2", "on", f)][0] for f in ("F1", "F2", "F3"))
    assert agg_on > 1.3 * agg_off
    fi_off = float(rows[("P2", "off", "F1")][1])
    fi_on = float(rows[("P2", "on", "F1")][1])
    assert fi_on > fi_off
    # Period 3: F1 alone recovers high throughput (paper: 180 kb/s).
    assert rows[("P3", "on", "F1")][0] > 1.2 * rows[("P3", "off", "F1")][0]
