#!/usr/bin/env python3
"""The Section-7 extension: rate-based EZ-flow vs the CWmin variant.

For deployments with more successors than MAC queues, the paper's
conclusion proposes keeping the BOE and letting the CAA pace a
routing-layer queue instead of changing ``CWmin``. This example runs
the unstable 4-hop chain under standard 802.11, the cw-based EZ-flow,
and the rate-based variant, and prints throughput, buffers and the
converged actuator values.

Run:  python examples/adaptive_rate_control.py [--duration 400]
"""

import argparse

from repro.core import attach_ezflow, attach_rate_ezflow
from repro.sim.units import seconds
from repro.topology.linear import linear_chain


def run(variant: str, duration_s: float, seed: int):
    network = linear_chain(
        hops=4, seed=seed, saturated=False, rate_bps=2_000_000.0
    )
    controllers = {}
    if variant == "cw":
        controllers = attach_ezflow(network.nodes)
    elif variant == "rate":
        controllers = attach_rate_ezflow(network.nodes)
    network.run(until_us=seconds(duration_s))

    half = seconds(duration_s / 2)
    throughput = network.flow("F1").throughput_bps(half, seconds(duration_s)) / 1000.0
    buffers = [network.nodes[n].total_buffer_occupancy() for n in (1, 2, 3)]
    actuators = {}
    for node_id, controller in controllers.items():
        for successor, caa in controller.caas.items():
            value = getattr(caa, "cw", None) or round(caa.rate_pps, 2)
            actuators[f"{node_id}->{successor}"] = value
    return throughput, buffers, actuators


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=400.0)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("== 4-hop chain, CBR 2 Mb/s, three control variants ==\n")
    for variant, label in (
        ("none", "standard 802.11"),
        ("cw", "EZ-flow (CWmin actuator)"),
        ("rate", "EZ-flow (pacing-rate actuator)"),
    ):
        throughput, buffers, actuators = run(variant, args.duration, args.seed)
        print(f"{label}:")
        print(f"  throughput    : {throughput:7.1f} kb/s")
        print(f"  relay buffers : {buffers}")
        if actuators:
            unit = "cw" if variant == "cw" else "pkt/s"
            print(f"  actuators ({unit}): {actuators}")
        print()
    print(
        "Both variants converge to the same stabilized operating point —\n"
        "a throttled source and near-empty relay buffers — because they\n"
        "share the BOE signal and the CAA decision logic; only the\n"
        "actuator differs (MAC contention window vs routing-layer pacing)."
    )


if __name__ == "__main__":
    main()
