#!/usr/bin/env python3
"""Mesh-backhaul uplink: compare EZ-flow against every baseline.

The paper's motivating workload (Figure 5): two 8-hop flows merge at a
gateway, as when neighbourhood access points funnel traffic to the
wired Internet. This example runs the merge topology under four
mechanisms and prints a comparison table:

* standard IEEE 802.11 (no flow control);
* EZ-flow (this paper: passive estimation, no message passing);
* the static penalty-q strategy of [9] (needs the right q per topology);
* a DiffQ-style differential-backlog controller (message passing).

Run:  python examples/mesh_backhaul.py [--time-scale 0.1]
"""

import argparse

from repro.baselines.diffq import attach_diffq
from repro.baselines.penalty import apply_penalty
from repro.core import attach_ezflow
from repro.metrics.fairness import jain_fairness_index
from repro.sim.units import seconds
from repro.topology.scenario1 import F2_START_S, F2_STOP_S, scenario1_network


def run(mechanism: str, time_scale: float, seed: int):
    network = scenario1_network(seed=seed, time_scale=time_scale)
    if mechanism == "ezflow":
        attach_ezflow(network.nodes)
    elif mechanism == "penalty":
        network.run(until_us=seconds(1))  # create MAC entities
        apply_penalty(network.nodes, sources=[11, 12], q=1 / 128)
    elif mechanism == "diffq":
        attach_diffq(network.nodes)
    elif mechanism != "802.11":
        raise ValueError(mechanism)

    stop = seconds(F2_STOP_S * time_scale)
    start = seconds(F2_START_S * time_scale)
    settled = start + (stop - start) // 3
    network.run(until_us=stop)

    flows = ("F1", "F2")
    throughput = {
        f: network.flow(f).throughput_bps(settled, stop) / 1000.0 for f in flows
    }
    delay = {f: network.flow(f).mean_path_delay_s(settled, stop) for f in flows}
    fairness = jain_fairness_index(throughput.values())
    return throughput, delay, fairness


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--time-scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    print("== two 8-hop flows merging at a gateway (both active) ==\n")
    header = f"{'mechanism':<12} {'F1 kb/s':>8} {'F2 kb/s':>8} {'sum':>8} {'FI':>5} {'d1 s':>6} {'d2 s':>6}"
    print(header)
    print("-" * len(header))
    for mechanism in ("802.11", "ezflow", "penalty", "diffq"):
        throughput, delay, fairness = run(mechanism, args.time_scale, args.seed)
        print(
            f"{mechanism:<12} {throughput['F1']:>8.1f} {throughput['F2']:>8.1f} "
            f"{sum(throughput.values()):>8.1f} {fairness:>5.2f} "
            f"{delay['F1']:>6.2f} {delay['F2']:>6.2f}"
        )
    print(
        "\nEZ-flow should match or beat the static penalty (which was"
        "\nhand-tuned for this very topology) without knowing q, and do so"
        "\nwithout DiffQ's per-packet header overhead."
    )


if __name__ == "__main__":
    main()
