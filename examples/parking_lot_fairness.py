#!/usr/bin/env python3
"""Parking-lot fairness: EZ-flow cures starvation of the long flow.

Reproduces the paper's testbed parking lot (Section 4.3 / Table 2): a
7-hop flow F1 and a 4-hop flow F2 share the tail of the chain. Under
standard 802.11 the short flow's source is so aggressive that the long
flow starves (paper: 7 vs 143 kb/s, Jain index 0.55); EZ-flow makes
both sources less aggressive and restores fairness (71 vs 110, 0.96).

Run:  python examples/parking_lot_fairness.py [--duration 400]
"""

import argparse

from repro.core import attach_ezflow
from repro.metrics.fairness import jain_fairness_index
from repro.metrics.sampling import BufferSampler
from repro.sim.units import seconds
from repro.topology.testbed import testbed_network


def run(ezflow: bool, duration_s: float, seed: int):
    network = testbed_network(seed=seed, flows=("F1", "F2"))
    controllers = attach_ezflow(network.nodes) if ezflow else {}
    sampler = BufferSampler(
        network.engine, network.trace, network.nodes, ["N1", "N2", "N4"], 1.0
    )
    sampler.start()
    network.run(until_us=seconds(duration_s))

    start, stop = seconds(duration_s * 0.25), seconds(duration_s)
    throughput = {
        f: network.flow(f).throughput_bps(start, stop) / 1000.0 for f in ("F1", "F2")
    }
    fairness = jain_fairness_index(throughput.values())
    buffers = {n: sampler.mean_occupancy(n, start, stop) for n in ("N1", "N2", "N4")}
    windows = {}
    for node_id in ("N0", "N0p"):
        controller = controllers.get(node_id)
        if controller:
            windows[node_id] = {s: c.cw for s, c in controller.caas.items()}
    return throughput, fairness, buffers, windows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=400.0)
    parser.add_argument("--seed", type=int, default=4)
    args = parser.parse_args()

    print("== testbed parking lot: 7-hop F1 vs 4-hop F2 ==\n")
    for ezflow in (False, True):
        throughput, fairness, buffers, windows = run(ezflow, args.duration, args.seed)
        label = "EZ-flow" if ezflow else "IEEE 802.11"
        print(f"{label}:")
        print(f"  F1 {throughput['F1']:6.1f} kb/s | F2 {throughput['F2']:6.1f} kb/s"
              f" | Jain FI {fairness:.2f}")
        print(f"  mean relay buffers: { {n: round(v, 1) for n, v in buffers.items()} }")
        if windows:
            print(f"  source windows: {windows}")
        print()
    print(
        "Paper (Table 2): 802.11 starves F1 (7 vs 143 kb/s, FI 0.55);\n"
        "EZ-flow revives it (71 vs 110 kb/s, FI 0.96) by throttling both\n"
        "sources — no message was ever exchanged."
    )


if __name__ == "__main__":
    main()
