#!/usr/bin/env python3
"""Inside the BOE: watch passive buffer estimation track ground truth.

Runs a 3-hop chain with a moderate CBR load and records, at every
overheard forwarding, the BOE's estimate of the successor's buffer next
to the simulator's ground truth — the estimate is exact under FIFO
(Section 3.2), with transient off-by-one around the in-flight frame.

Also demonstrates the degraded-sniffer mode: with 70% of overhearings
missed the estimator produces fewer samples but they remain correct.

Run:  python examples/passive_estimation.py
"""

import argparse

from repro.core import EZFlowController
from repro.sim.units import seconds
from repro.topology.linear import linear_chain


def trace_estimates(overhear_loss: float, duration_s: float, seed: int):
    network = linear_chain(
        hops=3, seed=seed, saturated=False, rate_bps=200_000.0
    )
    if overhear_loss:
        network.channel.set_overhear_loss(0, overhear_loss)
    controller = EZFlowController(network.nodes[0])
    samples = []

    network.run(until_us=seconds(1))
    boe = controller.boes[1]

    def record(estimate):
        truth = network.nodes[1].forwarding_occupancy()
        samples.append((network.engine.now / 1e6, estimate, truth))

    boe.sample_callbacks.append(record)
    network.run(until_us=seconds(duration_s))
    return samples, boe


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    for loss in (0.0, 0.7):
        samples, boe = trace_estimates(loss, args.duration, args.seed)
        # At the overhear instant the forwarded frame is still at the
        # head of the successor's queue (it is dequeued when its MAC
        # ACK arrives, one SIFS later), so ground truth reads exactly
        # one higher than the number of packets *behind* it — which is
        # what the BOE estimates. est == truth - 1 is a perfect match.
        exact = sum(1 for _, est, truth in samples if est == max(0, truth - 1))
        print(f"== sniffer loss {loss:.0%} ==")
        print(f"  samples produced : {len(samples)}")
        print(f"  exact matches    : {exact} ({exact / max(1, len(samples)):.0%})"
              "  (est == packets queued behind the overheard frame)")
        print(f"  unmatched frames : {boe.overheard_unmatched}")
        print("  last ten (time, estimate, truth-at-overhear):")
        for t, est, truth in samples[-10:]:
            print(f"    {t:7.2f}s  est={est:2d}  truth={truth:2d}")
        print()
    print(
        "The estimate comes purely from overheard forwardings matched\n"
        "against remembered 16-bit checksums — no queue length was ever\n"
        "transmitted. Losing overhearings thins the samples; it does not\n"
        "corrupt them."
    )


if __name__ == "__main__":
    main()
