#!/usr/bin/env python3
"""Quickstart: stabilize an unstable 4-hop 802.11 chain with EZ-flow.

Builds the smallest topology the paper proves unstable (Figure 1 /
Theorem 1), runs it with standard IEEE 802.11 and again with EZ-flow,
and prints throughput, relay buffers and the adapted contention
windows.

Run:  python examples/quickstart.py [--hops 4] [--duration 120]
"""

import argparse

from repro import attach_ezflow, linear_chain
from repro.sim.units import seconds


def run(hops: int, duration_s: float, seed: int, ezflow: bool):
    network = linear_chain(hops=hops, seed=seed)
    controllers = attach_ezflow(network.nodes) if ezflow else {}
    network.run(until_us=seconds(duration_s))

    warmup = seconds(duration_s * 0.25)
    horizon = seconds(duration_s)
    throughput = network.flow("F1").throughput_bps(warmup, horizon) / 1000.0
    buffers = [network.nodes[n].total_buffer_occupancy() for n in range(1, hops)]
    windows = {
        node_id: {succ: caa.cw for succ, caa in controller.caas.items()}
        for node_id, controller in controllers.items()
        if controller.caas
    }
    return throughput, buffers, windows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hops", type=int, default=4)
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print(f"== {args.hops}-hop chain, saturated source, {args.duration:.0f} s ==\n")
    for ezflow in (False, True):
        label = "EZ-flow" if ezflow else "standard IEEE 802.11"
        throughput, buffers, windows = run(args.hops, args.duration, args.seed, ezflow)
        print(f"{label}:")
        print(f"  end-to-end throughput : {throughput:8.1f} kb/s")
        print(f"  relay buffers (final) : {buffers}")
        if windows:
            print(f"  contention windows    : {windows}")
        print()
    print(
        "Expected shape (paper, Figure 1 + Section 5): without EZ-flow the\n"
        "first relay saturates at 50 packets; with EZ-flow the source\n"
        "throttles itself (large cw), buffers stay near zero and\n"
        "throughput rises."
    )


if __name__ == "__main__":
    main()
