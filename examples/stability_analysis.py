#!/usr/bin/env python3
"""Section 6 in action: the random walk, Table 4 and Theorem 1.

Three demonstrations of the analytical model:

1. prints Table 4 (the per-region activation distribution of a 4-hop
   chain) for a chosen contention-window assignment;
2. runs the (b, cw) random walk with standard 802.11 and with EZ-flow,
   printing buffer trajectories — instability vs stability;
3. estimates the k-step Foster-Lyapunov drift in each region outside
   the finite set S, with the k values from the proof of Theorem 1.

Run:  python examples/stability_analysis.py [--slots 100000]
"""

import argparse

from repro.analysis import (
    EZFlowRule,
    FixedCwRule,
    ModelConfig,
    SlottedChainModel,
    table4_distribution,
    verify_theorem1,
)
from repro.analysis.regions import REGIONS_4HOP


def show_table4(cw):
    print(f"== Table 4: activation distribution per region, cw={cw} ==")
    for region in sorted(REGIONS_4HOP):
        distribution = table4_distribution(region, cw)
        rows = ", ".join(
            f"z={''.join(map(str, pattern))}: {probability:.3f}"
            for pattern, probability in sorted(distribution.items())
        )
        print(f"  {region}: {rows}")
    print()


def show_walk(slots, seed):
    print(f"== random walk, {slots} slots ==")
    config = ModelConfig(hops=4)
    for rule, label in ((FixedCwRule(), "802.11"), (EZFlowRule(config), "EZ-flow")):
        model = SlottedChainModel(config, rule=rule, seed=seed)
        checkpoints = []
        step = slots // 8
        for _ in range(8):
            model.run(step)
            checkpoints.append(int(model.relay_buffers[0]))
        print(
            f"  {label:<8} b1 checkpoints: {checkpoints}  "
            f"delivered={model.delivered}  final cw={model.cw}"
        )
    print()


def show_drift(trials, seed):
    print("== Theorem 1: k-step Foster drift outside S ==")
    for report in verify_theorem1(trials=trials, seed=seed):
        status = "OK (negative)" if report.negative else "VIOLATED"
        print(
            f"  region {report.region} (k={report.k:>2}, state={report.buffers}): "
            f"drift {report.drift:+.6f}  {status}"
        )
    print()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=100_000)
    parser.add_argument("--trials", type=int, default=500)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    show_table4((16, 16, 16, 16))
    show_table4((2048, 16, 16, 16))  # EZ-flow's converged assignment
    show_walk(args.slots, args.seed)
    show_drift(args.trials, args.seed)
    print(
        "With fixed windows b1 grows without bound (the 4-hop instability\n"
        "of [9]); with EZ-flow the same walk is ergodic — every drift is\n"
        "negative, so Foster's criterion (Theorem 2) applies."
    )


if __name__ == "__main__":
    main()
