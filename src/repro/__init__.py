"""repro — a reproduction of EZ-Flow (Aziz et al., CoNEXT 2009).

EZ-flow is a distributed, message-passing-free flow-control mechanism
for IEEE 802.11 wireless mesh backhauls: each relay passively estimates
its successor's buffer occupancy by overhearing forwarded packets (BOE)
and adapts its own 802.11 ``CWmin`` accordingly (CAA).

Package layout:

* ``repro.sim`` — discrete-event engine;
* ``repro.phy`` — channel, propagation, collisions, overhearing;
* ``repro.mac`` — IEEE 802.11 DCF with per-queue contention;
* ``repro.net`` — packets, static routing, node stacks, flows;
* ``repro.traffic`` — CBR / Poisson / saturated sources;
* ``repro.core`` — EZ-flow itself (BOE + CAA);
* ``repro.baselines`` — standard 802.11, penalty-q, DiffQ-style;
* ``repro.analysis`` — the Section 6 slotted model and stability proofs;
* ``repro.metrics`` — throughput/delay/fairness/buffer metrics;
* ``repro.topology`` — every evaluated topology;
* ``repro.experiments`` — one harness per paper table/figure.

Quickstart::

    from repro.topology import linear_chain
    from repro.core import attach_ezflow
    from repro.sim.units import seconds

    net = linear_chain(hops=4, seed=1)
    attach_ezflow(net.nodes)
    net.run(until_us=seconds(120))
    print(net.flow("F1").throughput_bps(0, seconds(120)) / 1000, "kb/s")
"""

__version__ = "1.0.0"

from repro.core import EZFlowConfig, EZFlowController, attach_ezflow
from repro.topology import (
    linear_chain,
    scenario1_network,
    scenario2_network,
    testbed_network,
)

__all__ = [
    "EZFlowConfig",
    "EZFlowController",
    "attach_ezflow",
    "linear_chain",
    "testbed_network",
    "scenario1_network",
    "scenario2_network",
    "__version__",
]
