"""Section 6: the discrete-time analytical model and stability proof.

The model (from [9], reused by the paper) maps a saturated K-hop chain
onto a random walk on the positive orthant of Z^{K-1}: one slot = one
transmission pattern. Per slot:

1. backlogged nodes contend; the contention resolves through the
   recursive *winner process* of :mod:`repro.analysis.activation`
   (winner chosen with probability proportional to 1/cw; the winner's
   1-hop neighbours defer; nodes hidden from every current transmitter
   keep contending among themselves);
2. a transmission on link i -> i+1 succeeds unless node i+2 — the only
   possible transmitter adjacent to the receiver — is also transmitting;
3. buffers update by ``b_i += z_{i-1} - z_i`` and EZ-flow updates each
   cw via the threshold rule f (Eq. 2).

For K = 4 the closed forms of Table 4 are implemented verbatim in
:mod:`repro.analysis.regions` and verified (in tests) to match the
winner process exactly. :mod:`repro.analysis.lyapunov` estimates the
k-step Foster drift of Theorem 1 and checks ergodicity numerically.
"""

from repro.analysis.activation import (
    activation_distribution,
    sample_activation,
    successful_links,
)
from repro.analysis.slotted import (
    SlottedChainModel,
    EZFlowRule,
    FixedCwRule,
    ModelConfig,
)
from repro.analysis.regions import (
    REGIONS_4HOP,
    region_of,
    table4_distribution,
)
from repro.analysis.lyapunov import (
    sum_lyapunov,
    k_step_drift,
    exact_k_step_drift,
    verify_theorem1,
    DriftReport,
)
from repro.analysis.generalk import (
    SweepRow,
    empirical_drift,
    region_occupancy,
    region_signature,
    stability_sweep,
)

__all__ = [
    "activation_distribution",
    "sample_activation",
    "successful_links",
    "SlottedChainModel",
    "EZFlowRule",
    "FixedCwRule",
    "ModelConfig",
    "REGIONS_4HOP",
    "region_of",
    "table4_distribution",
    "sum_lyapunov",
    "k_step_drift",
    "exact_k_step_drift",
    "verify_theorem1",
    "DriftReport",
    "SweepRow",
    "empirical_drift",
    "region_occupancy",
    "region_signature",
    "stability_sweep",
]
