"""The per-slot contention/winner process and its exact distribution.

One slot of the slotted model resolves as follows (this is the process
whose outcome probabilities Table 4 tabulates for K = 4):

* among the current *contenders* (backlogged nodes, source always
  backlogged, destination never contends), a winner is drawn with
  probability proportional to ``1/cw`` — the node with the smallest
  expected backoff;
* the winner transmits; its 1-hop neighbours carrier-sense it and
  defer — they leave the contender set;
* every remaining contender is hidden from all transmitters so far
  (>= 2 hops away) and keeps contending: recurse on the reduced set;
* when no contenders remain, the transmitter set is fixed and link
  outcomes are computed: link i -> i+1 succeeds iff node i+2 is not
  transmitting (the only node adjacent to the receiver that can still
  be transmitting; 2-hop interferers are captured, see repro.phy).

``activation_distribution`` expands the full probability tree exactly;
``sample_activation`` draws one outcome (used by the random-walk
simulator); ``successful_links`` applies the interference rule.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.sim.slotted import sample_transmitters

Pattern = Tuple[int, ...]


def _winner_weights(contenders: Sequence[int], cw: Sequence[int]) -> List[float]:
    """Contention win weights: node i wins proportionally to 1/cw_i."""
    return [1.0 / cw[i] for i in contenders]


def _transmitter_sets(
    contenders: FrozenSet[int], cw: Sequence[int]
) -> Dict[FrozenSet[int], float]:
    """Exact distribution over final transmitter sets (probability tree)."""
    if not contenders:
        return {frozenset(): 1.0}
    result: Dict[FrozenSet[int], float] = {}
    ordered = sorted(contenders)
    weights = _winner_weights(ordered, cw)
    total = sum(weights)
    for node, weight in zip(ordered, weights):
        p_win = weight / total
        # The winner's 1-hop neighbours defer; everyone else (>= 2 hops
        # from the winner) is hidden and keeps contending.
        remaining = frozenset(
            other for other in contenders if other != node and abs(other - node) > 1
        )
        for sub, p_sub in _transmitter_sets(remaining, cw).items():
            key = sub | {node}
            result[key] = result.get(key, 0.0) + p_win * p_sub
    return result


def successful_links(transmitters: Iterable[int], hops: int) -> Pattern:
    """Apply the interference rule to a transmitter set.

    Link i (node i -> node i+1) succeeds iff node i transmits and node
    i+2 does not: the receiver's *other* potential 1-hop interferer.
    (Transmitters are >= 2 hops apart by construction of the winner
    process, so node i+1 itself never transmits concurrently.)
    """
    tx = set(transmitters)
    return tuple(
        1 if (i in tx and (i + 2) not in tx) else 0 for i in range(hops)
    )


def activation_distribution(
    buffers: Sequence[float],
    cw: Sequence[int],
    hops: int,
) -> Dict[Pattern, float]:
    """Exact distribution of the activation vector z for one slot.

    ``buffers[i]`` is node i's backlog with ``buffers[0]`` the saturated
    source (use ``float('inf')``). ``cw`` has one entry per node
    0..hops-1 (the destination never transmits). Returns a dict mapping
    activation patterns (length ``hops``) to probabilities; patterns
    with zero probability are omitted.
    """
    if len(cw) < hops:
        raise ValueError("need a cw entry for every transmitting node")
    contenders = frozenset(
        i for i in range(hops) if (i == 0 or buffers[i] > 0)
    )
    distribution: Dict[Pattern, float] = {}
    for tx_set, probability in _transmitter_sets(contenders, cw).items():
        pattern = successful_links(tx_set, hops)
        distribution[pattern] = distribution.get(pattern, 0.0) + probability
    return distribution


def sample_activation(
    buffers: Sequence[float],
    cw: Sequence[int],
    hops: int,
    rng: random.Random,
) -> Pattern:
    """Draw one activation vector by running the winner process.

    Delegates to the generalised :func:`repro.sim.slotted.sample_transmitters`
    with the chain's defer sets (``{winner-1, winner+1}``); the RNG draw
    sequence is unchanged, so pinned seeds reproduce historical samples.
    """
    contenders = set(i for i in range(hops) if (i == 0 or buffers[i] > 0))
    transmitters = sample_transmitters(
        contenders, cw, lambda winner: (winner - 1, winner + 1), rng
    )
    return successful_links(transmitters, hops)
