"""General-K stability study (Section 6's closing remark).

Theorem 1 is proved for K = 4 "and can also be extended for a general
K-hop network, with K >= 4", using the generalized Lyapunov function
``h(b) = sum_i b_i``. This module provides the numerical counterpart
for arbitrary K:

* :func:`stability_sweep` — runs the (b, cw) random walk for a range of
  K under both rules and summarises peak/final backlogs and delivery
  counts: fixed-cw walks diverge for every K >= 4 while EZ-flow walks
  stay bounded;
* :func:`region_occupancy` — empirical distribution of the walk over
  the 2^(K-1) zero/nonzero regions (the generalization of Figure 12's
  octants);
* :func:`empirical_drift` — the one-step Lyapunov drift measured along
  a trajectory, split by region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.slotted import (
    EZFlowRule,
    FixedCwRule,
    ModelConfig,
    SlottedChainModel,
)


def region_signature(relay_buffers: Sequence[float]) -> Tuple[bool, ...]:
    """Zero/nonzero signature of a relay-buffer vector (the region id).

    For K = 4 the eight signatures are the octants A..H of Figure 12.
    """
    return tuple(b > 0 for b in relay_buffers)


@dataclass
class SweepRow:
    """Summary of one (K, rule) random-walk run."""

    hops: int
    rule: str
    slots: int
    max_b1: float
    final_sum: float
    delivered: int

    @property
    def diverged(self) -> bool:
        """Heuristic divergence flag: the peak backlog left the regime
        a positive-recurrent walk ever visits (EZ-flow's stays O(10))."""
        return self.max_b1 > max(100.0, self.slots / 400.0)


def stability_sweep(
    hop_range: Sequence[int] = (3, 4, 5, 6, 7),
    slots: int = 100_000,
    seed: int = 0,
) -> List[SweepRow]:
    """Random-walk stability for each K, fixed cw vs EZ-flow."""
    rows: List[SweepRow] = []
    for hops in hop_range:
        config = ModelConfig(hops=hops)
        for rule, label in ((FixedCwRule(), "802.11"), (EZFlowRule(config), "ezflow")):
            model = SlottedChainModel(config, rule=rule, seed=seed + hops)
            max_b1 = 0.0
            for _ in range(slots):
                model.step()
                max_b1 = max(max_b1, model.buffers[1])
            rows.append(
                SweepRow(
                    hops=hops,
                    rule=label,
                    slots=slots,
                    max_b1=max_b1,
                    final_sum=model.lyapunov(),
                    delivered=model.delivered,
                )
            )
    return rows


def region_occupancy(
    hops: int = 4,
    slots: int = 100_000,
    seed: int = 0,
    rule: Optional[object] = None,
) -> Dict[Tuple[bool, ...], float]:
    """Fraction of slots the walk spends in each zero/nonzero region."""
    config = ModelConfig(hops=hops)
    model = SlottedChainModel(
        config, rule=rule if rule is not None else EZFlowRule(config), seed=seed
    )
    counts: Dict[Tuple[bool, ...], int] = {}
    for _ in range(slots):
        model.step()
        signature = region_signature(model.relay_buffers)
        counts[signature] = counts.get(signature, 0) + 1
    return {signature: count / slots for signature, count in counts.items()}


def empirical_drift(
    hops: int = 4,
    slots: int = 200_000,
    seed: int = 0,
    rule: Optional[object] = None,
) -> Dict[Tuple[bool, ...], float]:
    """Mean one-step Lyapunov drift conditioned on the region.

    For the EZ-flow walk, regions carrying probability mass must show
    non-positive drift on average — the trajectory-level face of
    Theorem 1. (One-step drift can be 0 in regions whose escape takes
    several slots; see the k-step analysis in
    :mod:`repro.analysis.lyapunov`.)
    """
    config = ModelConfig(hops=hops)
    model = SlottedChainModel(
        config, rule=rule if rule is not None else EZFlowRule(config), seed=seed
    )
    totals: Dict[Tuple[bool, ...], float] = {}
    counts: Dict[Tuple[bool, ...], int] = {}
    for _ in range(slots):
        signature = region_signature(model.relay_buffers)
        before = model.lyapunov()
        model.step()
        delta = model.lyapunov() - before
        totals[signature] = totals.get(signature, 0.0) + delta
        counts[signature] = counts.get(signature, 0) + 1
    return {
        signature: totals[signature] / counts[signature] for signature in totals
    }
