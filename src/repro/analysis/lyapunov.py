"""Foster-Lyapunov drift verification (Theorem 1).

Theorem 1 stabilises the 4-hop chain with the Lyapunov function
``h(b) = b1 + b2 + b3`` and Foster's criterion (Theorem 2 in the
appendix): outside a finite set S there is a bounded step count
``k(b)`` with ``E[h(b(n+k)) | b(n)] <= h(b(n)) - epsilon``. The paper
reports k = 1 on F and H, 2 on D and E, 3 on G, 4 on C, and 25 on B.

``k_step_drift`` estimates the k-step conditional drift by Monte Carlo
from a chosen start state (buffers and windows evolve jointly, exactly
as the walk does). ``verify_theorem1`` sweeps representative states of
every region outside S with the paper's k values and reports whether
each drift is negative — the numerical counterpart of the proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.regions import REGIONS_4HOP, region_of
from repro.analysis.slotted import EZFlowRule, ModelConfig, SlottedChainModel

#: k(b) per region, as established in the proof of Theorem 1.
THEOREM1_K: Dict[str, int] = {"B": 25, "C": 4, "D": 2, "E": 2, "F": 1, "G": 3, "H": 1}


def sum_lyapunov(relay_buffers: Sequence[float]) -> float:
    """h(b) = sum of relay buffer occupancies."""
    return float(sum(relay_buffers))


def k_step_drift(
    initial_buffers: Sequence[float],
    k: int,
    trials: int = 2000,
    config: Optional[ModelConfig] = None,
    initial_cw: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> float:
    """Monte Carlo estimate of E[h(b(n+k)) - h(b(n)) | b(n), cw(n)].

    The contention windows evolve with the walk (EZ-flow rule); when
    ``initial_cw`` is omitted the windows start at the value EZ-flow
    would have ratcheted to in a congested region: large at the nodes
    feeding an over-threshold buffer, minimal elsewhere.
    """
    cfg = config or ModelConfig(hops=4)
    if len(initial_buffers) != cfg.hops - 1:
        raise ValueError("initial_buffers must cover relays 1..K-1")
    if initial_cw is None:
        initial_cw = _congestion_adapted_cw(initial_buffers, cfg)
    h0 = sum_lyapunov(initial_buffers)
    total = 0.0
    for trial in range(trials):
        model = SlottedChainModel(
            cfg,
            rule=EZFlowRule(cfg),
            seed=seed * 1_000_003 + trial,
            initial_buffers=initial_buffers,
            initial_cw=initial_cw,
        )
        for _ in range(k):
            model.step()
        total += model.lyapunov() - h0
    return total / trials


def _congestion_adapted_cw(
    relay_buffers: Sequence[float], config: ModelConfig
) -> List[int]:
    """Windows EZ-flow has reached by the time the walk is far out.

    Far outside S a buffer above ``b_max`` has been above it for many
    slots, so its upstream node's window has saturated at ``maxcw``;
    every other node sits at ``mincw``. This mirrors the proof, which
    evaluates the drift in the regime the adaptation has produced.
    """
    cw = [config.mincw] * config.hops
    for i, b in enumerate(relay_buffers, start=1):
        if b > config.b_max:
            cw[i - 1] = config.maxcw
    return cw


def exact_k_step_drift(
    initial_buffers: Sequence[float],
    k: int,
    config: Optional[ModelConfig] = None,
    initial_cw: Optional[Sequence[int]] = None,
) -> float:
    """Exact E[h(b(n+k)) - h(b(n))] by probability-tree expansion.

    The per-slot activation distribution has at most three support
    points (Table 4), and both the buffer update and the EZ-flow cw
    update are deterministic given the drawn pattern, so the k-step
    expectation expands into a tree of at most 3^k leaves. This
    resolves the tiny drifts (O(1e-4) in regions C and G once the
    feeder window has ratcheted to maxcw) that Monte Carlo cannot.
    """
    from repro.analysis.activation import activation_distribution

    cfg = config or ModelConfig(hops=4)
    hops = cfg.hops
    if initial_cw is None:
        initial_cw = _congestion_adapted_cw(initial_buffers, cfg)

    def apply_pattern(buffers, cw, pattern):
        new_b = list(buffers)
        for i in range(1, hops):
            new_b[i] = max(0.0, new_b[i] + pattern[i - 1] - pattern[i])
        new_cw = list(cw)
        for i in range(hops):
            b_next = new_b[i + 1] if i + 1 < hops else 0.0
            if b_next > cfg.b_max:
                new_cw[i] = min(new_cw[i] * 2, cfg.maxcw)
            elif b_next < cfg.b_min:
                new_cw[i] = max(new_cw[i] // 2, cfg.mincw)
        return tuple(new_b), tuple(new_cw)

    def expected_h(buffers, cw, depth) -> float:
        if depth == 0:
            return sum(buffers[1:])
        total = 0.0
        for pattern, probability in activation_distribution(buffers, cw, hops).items():
            nb, ncw = apply_pattern(buffers, cw, pattern)
            total += probability * expected_h(nb, ncw, depth - 1)
        return total

    start = tuple([INF] + [float(b) for b in initial_buffers])
    h0 = sum(start[1:])
    return expected_h(start, tuple(initial_cw), k) - h0


INF = float("inf")


@dataclass
class DriftReport:
    """Drift estimate for one representative state."""

    region: str
    buffers: Tuple[float, ...]
    k: int
    drift: float

    @property
    def negative(self) -> bool:
        return self.drift < 0.0


def representative_state(
    region: str, high: float = 60.0, config: Optional[ModelConfig] = None
) -> Tuple[float, float, float]:
    """A state of the given region far outside S (nonzero entries = high)."""
    cfg = config or ModelConfig(hops=4)
    if high <= cfg.b_max:
        raise ValueError("representative states must exceed b_max")
    signature = REGIONS_4HOP[region]
    return tuple(high if nonzero else 0.0 for nonzero in signature)


def verify_theorem1(
    trials: int = 2000,
    high: float = 60.0,
    config: Optional[ModelConfig] = None,
    k_values: Optional[Dict[str, int]] = None,
    seed: int = 0,
    exact_max_k: int = 6,
) -> List[DriftReport]:
    """Estimate the k-step drift in every region outside S.

    Returns one :class:`DriftReport` per region B..H (region A is inside
    the finite set S). Theorem 1 holds numerically when every report's
    drift is negative. Small-k regions use exact tree expansion (their
    drifts can be O(1e-4), far below Monte Carlo resolution); region B's
    k = 25 uses Monte Carlo, where the drift is large.
    """
    cfg = config or ModelConfig(hops=4)
    ks = k_values or THEOREM1_K
    reports: List[DriftReport] = []
    for region, k in ks.items():
        buffers = representative_state(region, high, cfg)
        assert region_of(*buffers) == region
        if k <= exact_max_k:
            drift = exact_k_step_drift(buffers, k, cfg)
        else:
            drift = k_step_drift(buffers, k, trials, cfg, seed=seed)
        reports.append(DriftReport(region, buffers, k, drift))
    return reports
