"""Regions A-H of the 4-hop state space and the closed forms of Table 4.

The positive orthant of Z^3 (buffer states of relays 1..3) splits into
eight regions by which entries of (b1, b2, b3) are zero. Table 4 of the
paper lists, per region, the distribution of the activation vector
``z = (z0, z1, z2, z3)``; ``table4_distribution`` implements those
formulas verbatim. Tests verify they agree exactly with the general
winner process in :mod:`repro.analysis.activation`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

Pattern = Tuple[int, int, int, int]

#: Region name -> (b1 nonzero, b2 nonzero, b3 nonzero).
REGIONS_4HOP: Dict[str, Tuple[bool, bool, bool]] = {
    "A": (False, False, False),
    "B": (True, False, False),
    "C": (False, True, False),
    "D": (False, False, True),
    "E": (True, True, False),
    "F": (True, False, True),
    "G": (False, True, True),
    "H": (True, True, True),
}


def region_of(b1: float, b2: float, b3: float) -> str:
    """Name of the region containing relay-buffer state (b1, b2, b3)."""
    key = (b1 > 0, b2 > 0, b3 > 0)
    for name, signature in REGIONS_4HOP.items():
        if signature == key:
            return name
    raise AssertionError("unreachable")  # pragma: no cover


def table4_distribution(region: str, cw: Sequence[int]) -> Dict[Pattern, float]:
    """The activation distribution of Table 4 for a 4-hop chain.

    ``cw`` holds (cw0, cw1, cw2, cw3). Patterns absent from the dict
    have probability zero.
    """
    if len(cw) < 4:
        raise ValueError("need cw0..cw3")
    cw0, cw1, cw2, cw3 = (float(cw[i]) for i in range(4))

    if region == "A":
        return {(1, 0, 0, 0): 1.0}
    if region == "B":
        total = cw0 + cw1
        return {
            (1, 0, 0, 0): cw1 / total,
            (0, 1, 0, 0): cw0 / total,
        }
    if region == "C":
        return {(0, 0, 1, 0): 1.0}
    if region == "D":
        return {(1, 0, 0, 1): 1.0}
    if region == "E":
        denom = cw1 * cw2 + cw0 * cw2 + cw0 * cw1
        p_link1 = cw0 * cw2 / denom
        return {
            (0, 1, 0, 0): p_link1,
            (0, 0, 1, 0): 1.0 - p_link1,
        }
    if region == "F":
        denom = cw1 * cw3 + cw0 * cw3 + cw0 * cw1
        p_sink = cw0 * cw3 / denom + (cw0 * cw1 / denom) * (cw0 / (cw0 + cw1))
        p_both = cw1 * cw3 / denom + (cw0 * cw1 / denom) * (cw1 / (cw0 + cw1))
        return {
            (0, 0, 0, 1): p_sink,
            (1, 0, 0, 1): p_both,
        }
    if region == "G":
        denom = cw2 * cw3 + cw0 * cw3 + cw0 * cw2
        p_link2 = cw0 * cw3 / denom + (cw2 * cw3 / denom) * (cw3 / (cw2 + cw3))
        p_both = cw0 * cw2 / denom + (cw2 * cw3 / denom) * (cw2 / (cw2 + cw3))
        return {
            (0, 0, 1, 0): p_link2,
            (1, 0, 0, 1): p_both,
        }
    if region == "H":
        denom = (
            cw1 * cw2 * cw3
            + cw0 * cw2 * cw3
            + cw0 * cw1 * cw3
            + cw0 * cw1 * cw2
        )
        p_link2 = (
            cw0 * cw1 * cw3 / denom
            + (cw1 * cw2 * cw3 / denom) * (cw3 / (cw2 + cw3))
        )
        p_sink = (
            cw0 * cw2 * cw3 / denom
            + (cw0 * cw1 * cw2 / denom) * (cw0 / (cw0 + cw1))
        )
        p_both = (
            (cw1 * cw2 * cw3 / denom) * (cw2 / (cw2 + cw3))
            + (cw0 * cw1 * cw2 / denom) * (cw1 / (cw0 + cw1))
        )
        return {
            (0, 0, 1, 0): p_link2,
            (0, 0, 0, 1): p_sink,
            (1, 0, 0, 1): p_both,
        }
    raise ValueError(f"unknown region {region!r}")
