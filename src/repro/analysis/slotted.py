"""The slotted-time random walk: buffer and cw dynamics (Eqs. 2-4).

``SlottedChainModel`` simulates the K-hop chain at slot resolution:
each step draws an activation vector from the winner process, applies
``b_i += z_{i-1} - z_i``, and lets the contention-window rule update
``cw``. Two rules are provided:

* :class:`EZFlowRule` — the paper's f(cw_i, b_{i+1}): double above
  ``b_max``, halve below ``b_min``, clamp to [mincw, maxcw];
* :class:`FixedCwRule` — standard 802.11: windows never change.

The model exposes the state pieces the stability analysis needs: region
labels, Lyapunov values, buffer trajectories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.activation import sample_activation

INF = float("inf")


@dataclass(frozen=True)
class ModelConfig:
    """Parameters of the slotted model (paper defaults)."""

    hops: int = 4
    b_min: float = 0.05
    b_max: float = 20.0
    mincw: int = 16
    maxcw: int = 32768
    buffer_cap: Optional[int] = None  # None = infinite buffers (stability defn)

    def __post_init__(self):
        if self.hops < 2:
            raise ValueError("need at least 2 hops")
        if not 0 <= self.b_min < self.b_max:
            raise ValueError("need 0 <= b_min < b_max")


class EZFlowRule:
    """Eq. (2): cw_i(n+1) = f(cw_i(n), b_{i+1}(n))."""

    def __init__(self, config: ModelConfig):
        self.config = config

    def update(self, cw: List[int], buffers: List[float]) -> None:
        """Apply f(cw_i, b_{i+1}) to every node's window in place."""
        cfg = self.config
        hops = cfg.hops
        for i in range(hops):
            # b_{i+1}: the destination's buffer (i+1 == hops) is always 0.
            b_next = buffers[i + 1] if i + 1 < hops else 0.0
            if b_next > cfg.b_max:
                cw[i] = min(cw[i] * 2, cfg.maxcw)
            elif b_next < cfg.b_min:
                cw[i] = max(cw[i] // 2, cfg.mincw)


class FixedCwRule:
    """Standard 802.11: contention windows are never adapted."""

    def update(self, cw: List[int], buffers: List[float]) -> None:
        """No-op."""


class SlottedChainModel:
    """Random walk of (b, cw) for a saturated K-hop chain."""

    def __init__(
        self,
        config: Optional[ModelConfig] = None,
        rule=None,
        seed: int = 0,
        initial_buffers: Optional[Sequence[float]] = None,
        initial_cw: Optional[Sequence[int]] = None,
    ):
        self.config = config or ModelConfig()
        self.rule = rule if rule is not None else EZFlowRule(self.config)
        self.rng = random.Random(seed)
        hops = self.config.hops
        # buffers[0] is the saturated source; buffers[1..hops-1] relays.
        self.buffers: List[float] = [INF] + [0.0] * (hops - 1)
        if initial_buffers is not None:
            if len(initial_buffers) != hops - 1:
                raise ValueError("initial_buffers must cover relays 1..K-1")
            self.buffers[1:] = [float(b) for b in initial_buffers]
        self.cw: List[int] = [self.config.mincw] * hops
        if initial_cw is not None:
            if len(initial_cw) != hops:
                raise ValueError("initial_cw must cover nodes 0..K-1")
            self.cw = [int(c) for c in initial_cw]
        self.slot = 0
        self.delivered = 0
        self.last_pattern: Tuple[int, ...] = tuple([0] * hops)

    # -- state views ------------------------------------------------------

    @property
    def relay_buffers(self) -> Tuple[float, ...]:
        return tuple(self.buffers[1:])

    def lyapunov(self) -> float:
        """h(b) = sum of relay buffers (the Theorem 1 function)."""
        return float(sum(self.buffers[1:]))

    # -- dynamics -------------------------------------------------------------

    def step(self) -> Tuple[int, ...]:
        """Advance one slot; returns the activation vector drawn."""
        cfg = self.config
        hops = cfg.hops
        pattern = sample_activation(self.buffers, self.cw, hops, self.rng)
        # Eq. (3): b_i += z_{i-1} - z_i for the relays.
        for i in range(1, hops):
            b = self.buffers[i] + pattern[i - 1] - pattern[i]
            if cfg.buffer_cap is not None:
                b = min(b, float(cfg.buffer_cap))
            self.buffers[i] = max(0.0, b)
        if pattern[hops - 1]:
            self.delivered += 1
        # Eq. (2): windows react to the *new* buffer state.
        self.rule.update(self.cw, self.buffers)
        self.slot += 1
        self.last_pattern = pattern
        return pattern

    def run(self, slots: int, record_every: int = 0) -> List[Tuple[int, Tuple[float, ...]]]:
        """Run ``slots`` steps; optionally record relay buffers periodically."""
        trajectory: List[Tuple[int, Tuple[float, ...]]] = []
        for _ in range(slots):
            self.step()
            if record_every and self.slot % record_every == 0:
                trajectory.append((self.slot, self.relay_buffers))
        return trajectory
