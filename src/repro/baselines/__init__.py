"""Comparison mechanisms.

* standard IEEE 802.11 (no adaptation at all) — the paper's baseline;
* the static penalty-q strategy of Aziz et al. [9], which EZ-flow is
  designed to discover automatically;
* a DiffQ-style differential-backlog controller (Warrier et al.), which
  *does* use message passing — included to quantify what EZ-flow gives
  up (nothing, per the paper) by avoiding explicit queue advertisement.
"""

from repro.baselines.penalty import PenaltyStrategy, apply_penalty
from repro.baselines.diffq import DiffQController, DiffQConfig, attach_diffq

__all__ = [
    "PenaltyStrategy",
    "apply_penalty",
    "DiffQController",
    "DiffQConfig",
    "attach_diffq",
]
