"""DiffQ-style differential-backlog congestion control (Warrier et al.).

A hop-by-hop scheme that *does* modify packets: each node piggybacks its
queue length on data frames, and upstream nodes prioritise links with a
large backlog differential ``b_k - b_{k+1}`` by assigning one of four
CWmin classes (the four 802.11e MAC queues). We model the piggybacking
as a per-frame side channel carried on the frame object, costing a few
header bytes per packet — the overhead EZ-flow avoids.

This is a faithful *comparison point*, not a bit-exact DiffQ port: the
published protocol has four priority classes driven by backlog
difference thresholds, which is what we implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.mac.frames import Frame, FrameKind
from repro.net.node import NodeStack
from repro.net.packet import Packet

NodeId = Hashable

#: Extra bytes DiffQ adds to every data frame (queue-length header).
DIFFQ_HEADER_BYTES = 2


@dataclass
class DiffQConfig:
    """Thresholds mapping backlog differential to CWmin classes.

    ``classes`` are (min_differential, cwmin) pairs, evaluated from the
    largest differential down; the last entry is the default.
    """

    classes: Tuple[Tuple[int, int], ...] = ((20, 16), (10, 32), (0, 64), (-(10**9), 128))

    def cwmin_for(self, differential: int) -> int:
        """CWmin class for a backlog differential (largest threshold wins)."""
        for threshold, cwmin in self.classes:
            if differential >= threshold:
                return cwmin
        return self.classes[-1][1]


class DiffQController:
    """Differential-backlog scheduler at one node (with message passing)."""

    def __init__(self, node: NodeStack, config: Optional[DiffQConfig] = None):
        self.node = node
        self.config = config or DiffQConfig()
        # Last advertised queue length per neighbour (the piggybacked info).
        self.neighbor_backlog: Dict[NodeId, int] = {}
        self.header_overhead_bytes = 0
        node.sniffer_callbacks.append(self._on_overheard)
        self._wrap_tx_start()
        self._wrap_received()

    def _wrap_received(self) -> None:
        """Also read piggybacked backlog from frames addressed to us."""
        inner = self.node.mac.on_data_received

        def wrapper(frame: Frame, now: int) -> None:
            self._read_advertisement(frame)
            if inner is not None:
                inner(frame, now)

        self.node.mac.on_data_received = wrapper

    def _wrap_tx_start(self) -> None:
        """Stamp our queue length on every outgoing data frame."""
        inner = self.node.mac.on_tx_start

        def wrapper(entity, frame: Frame) -> None:
            # Each (re)transmission carries the header: account its cost.
            self.header_overhead_bytes += DIFFQ_HEADER_BYTES
            frame.diffq_backlog = self.node.total_buffer_occupancy()
            frame.diffq_src = self.node.node_id
            self._adapt()
            if inner is not None:
                inner(entity, frame)

        self.node.mac.on_tx_start = wrapper

    def _on_overheard(self, frame: Frame, now: int) -> None:
        self._read_advertisement(frame)

    def _read_advertisement(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.DATA:
            return
        backlog = getattr(frame, "diffq_backlog", None)
        src = getattr(frame, "diffq_src", None)
        if backlog is None or src is None:
            return
        self.neighbor_backlog[src] = backlog
        self._adapt()

    # -- scheduling ----------------------------------------------------------

    def _adapt(self) -> None:
        """Map each queue's backlog differential onto a CWmin class."""
        for (kind, successor), (queue, entity) in self.node.queues().items():
            advertised = self.neighbor_backlog.get(successor, 0)
            differential = len(queue) - advertised
            entity.set_cwmin(self.config.cwmin_for(differential))


def attach_diffq(
    nodes: Dict[NodeId, NodeStack],
    config: Optional[DiffQConfig] = None,
) -> Dict[NodeId, DiffQController]:
    """Attach a DiffQ controller to every node."""
    return {node_id: DiffQController(stack, config) for node_id, stack in nodes.items()}
