"""Static penalty strategy from Aziz et al. [9] (SECON 2009).

Stabilises a K-hop chain by throttling the *source*: with relay
contention windows at ``cw_relay``, the source uses
``cw_source = cw_relay / q`` for a throttling factor ``q in (0, 1]``.
The drawback the paper highlights is that the right ``q`` is
topology-dependent — EZ-flow exists to discover it automatically. The
simulations indeed converge to the static solution (e.g. scenario 1
single-flow: relays at 2^4, source at 2^7).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

from repro.net.node import NodeStack


class PenaltyStrategy:
    """Fixed contention-window assignment: throttled source, fast relays."""

    def __init__(self, q: float, cw_relay: int = 16, maxcw: int = 32768):
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if cw_relay < 1 or cw_relay & (cw_relay - 1):
            raise ValueError("cw_relay must be a positive power of two")
        self.q = q
        self.cw_relay = cw_relay
        self.maxcw = maxcw

    def source_cw(self) -> int:
        """Source window = cw_relay / q, rounded up to a power of two."""
        target = self.cw_relay / self.q
        cw = self.cw_relay
        while cw < target and cw < self.maxcw:
            cw *= 2
        return cw

    def apply(self, nodes: Dict[Hashable, NodeStack], sources: Iterable[Hashable]) -> None:
        """Pin CWmin at every transmit entity: sources throttled, relays not."""
        source_set = set(sources)
        source_cw = self.source_cw()
        for node_id, stack in nodes.items():
            cw = source_cw if node_id in source_set else self.cw_relay
            for entity in stack.mac.entities:
                entity.set_cwmin(cw)


def apply_penalty(
    nodes: Dict[Hashable, NodeStack],
    sources: Iterable[Hashable],
    q: float,
    cw_relay: int = 16,
) -> PenaltyStrategy:
    """Convenience wrapper: build and apply a :class:`PenaltyStrategy`."""
    strategy = PenaltyStrategy(q, cw_relay)
    strategy.apply(nodes, sources)
    return strategy
