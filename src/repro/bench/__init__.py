"""Persistent benchmark suite: the repo's measured performance trajectory.

``python -m repro.bench`` runs a *declared* suite of cases — engine
dispatch micro-benchmarks, wall time of every canned paper figure, and a
meshgen scaling curve at 16/25/49/100 nodes — and emits a sorted-keys
JSON report (events/s and wall seconds per case). Reports are committed
as ``BENCH_<tag>.json`` baselines; ``--compare old.json`` renders a
delta table against any previous report, so speed is a regression-tested
property of the repo rather than a claim in a commit message.

Cross-machine comparisons are normalised by the engine-dispatch
micro-benchmark (a hardware speed index): a case only counts as a
regression if it got slower *relative to raw dispatch throughput* on the
same machine, which makes a ~30 % CI tolerance meaningful even when the
baseline was recorded on different hardware.

Case names are stable identifiers; a case is only comparable across two
reports when both its name and its kwargs match.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.micro import MICRO_CASES
from repro.bench.storecase import STORE_CASES
from repro.bench.telemetrycase import TELEMETRY_CASES

#: Every function-backed case (kind "micro"): engine micro-benchmarks
#: plus the result-store throughput and telemetry overhead cases.
FUNCTION_CASES = {**MICRO_CASES, **STORE_CASES, **TELEMETRY_CASES}

SCHEMA = "repro.bench/1"

#: The hardware speed index case used to normalise cross-machine deltas.
INDEX_CASE = "micro.engine_post_dispatch"


@dataclass(frozen=True)
class BenchCase:
    """One declared benchmark case.

    ``kind`` is ``micro`` (a function from :mod:`repro.bench.micro`) or
    ``scenario`` (an experiment id from the scenario catalogue run with
    explicit kwargs). ``quick`` cases form the CI subset; the full suite
    runs everything.
    """

    name: str
    kind: str  # "micro" | "scenario"
    target: str  # micro case name or scenario spec id
    kwargs: Tuple[Tuple[str, object], ...] = ()
    quick: bool = False
    repeat: int = 1

    @property
    def kwargs_dict(self) -> Dict[str, object]:
        return dict(self.kwargs)


def _kw(**kwargs) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


def build_suite() -> List[BenchCase]:
    """The declared suite, in execution order (micro, figures, meshgen)."""
    cases: List[BenchCase] = []
    for name, (_, kwargs) in MICRO_CASES.items():
        cases.append(
            BenchCase(name, "micro", name, _kw(**kwargs), quick=True, repeat=3)
        )
    # Result-store throughput (insert + streaming scalars_frame/compare
    # over a synthetic store): the full 1k-run point, plus a short point
    # for the CI quick lane.
    cases.append(
        BenchCase(
            "results.store.n1000",
            "micro",
            "results.store.n1000",
            _kw(runs=1000),
            repeat=2,
        )
    )
    cases.append(
        BenchCase(
            "results.store.quick.n200",
            "micro",
            "results.store.quick.n200",
            _kw(runs=200),
            quick=True,
            repeat=2,
        )
    )
    # Telemetry plane overhead on the mid-size meshgen point: the case
    # itself runs attached and detached best-of-N and reports
    # overhead_frac (< 0.05 is the budget), so repeat stays 1 here.
    cases.append(
        BenchCase(
            "telemetry.overhead",
            "micro",
            "telemetry.overhead",
            _kw(nodes=49, density=1.5),
        )
    )
    # Every canned paper experiment at its default parameters: the
    # per-figure wall-time trajectory.
    for spec_id in (
        "fig1",
        "table1",
        "fig4",
        "table2",
        "scenario1",
        "scenario2",
        "stability",
        "loadsweep",
        "bidirectional",
    ):
        cases.append(BenchCase(f"figure.{spec_id}", "scenario", spec_id))
    # A short canned figure for the CI quick lane.
    cases.append(
        BenchCase(
            "figure.fig1.short",
            "scenario",
            "fig1",
            _kw(duration_s=60.0, warmup_s=10.0),
            quick=True,
        )
    )
    # Meshgen scaling curve: random geometric meshes at growing node
    # counts, default workload/algorithm. Density 1.5 keeps ~4.7
    # expected neighbours; at 100 nodes that is below the connectivity
    # threshold (~ln n), so the 100-node point runs at density 2.5.
    for nodes, density in ((16, 1.5), (25, 1.5), (49, 1.5), (100, 2.5)):
        cases.append(
            BenchCase(
                f"meshgen.n{nodes}",
                "scenario",
                "meshgen",
                _kw(nodes=nodes, density=density),
                repeat=2,
            )
        )
    # Short meshgen points for the CI quick lane.
    for nodes, density in ((16, 1.5), (49, 1.5)):
        cases.append(
            BenchCase(
                f"meshgen.quick.n{nodes}",
                "scenario",
                "meshgen",
                _kw(nodes=nodes, density=density, duration_s=8.0, warmup_s=2.0),
                quick=True,
                repeat=2,
            )
        )
    # The slotted fast tier on the same scaling curve: n100 mirrors the
    # event-core meshgen.n100 point (same kwargs plus fidelity), so a
    # report documents the tier speedup directly; n400 is only feasible
    # on this tier and tracks its own scaling headroom.
    cases.append(
        BenchCase(
            "meshgen.slotted.n100",
            "scenario",
            "meshgen",
            _kw(nodes=100, density=2.5, fidelity="slotted"),
            repeat=2,
        )
    )
    cases.append(
        BenchCase(
            "meshgen.slotted.n400",
            "scenario",
            "meshgen",
            _kw(nodes=400, density=2.5, fidelity="slotted"),
            repeat=2,
        )
    )
    # Dynamic link state: Gilbert-Elliott loss on every link plus a
    # churn/mobility schedule (down, move, up), so plan invalidation and
    # BFS re-routing are part of the measured trajectory.
    cases.append(
        BenchCase(
            "meshgen.churn.n25",
            "scenario",
            "meshgen",
            _kw(
                nodes=25,
                loss="ge:0.02:0.25",
                churn="down:3@6+move:5@10:150:150+up:3@14",
                duration_s=20.0,
                warmup_s=4.0,
            ),
            repeat=2,
        )
    )
    cases.append(
        BenchCase(
            "meshgen.churn.quick.n25",
            "scenario",
            "meshgen",
            _kw(
                nodes=25,
                loss="ge:0.02:0.25",
                churn="down:3@2+move:5@4:150:150+up:3@6",
                duration_s=8.0,
                warmup_s=2.0,
            ),
            quick=True,
            repeat=2,
        )
    )
    return cases


def run_case(case: BenchCase, repeat: Optional[int] = None) -> Dict[str, object]:
    """Execute one case; returns its report entry (best wall of N runs).

    Measurement hygiene: the shared testbed-run memoisation cache is
    dropped and a full garbage collection runs before every round, so a
    case's wall time does not depend on which cases ran before it.
    """
    import gc

    from repro.experiments import testbedlab

    rounds = max(1, repeat if repeat is not None else case.repeat)
    best_wall = None
    events: Optional[float] = None
    sim_ticks: Optional[float] = None
    best_scalars: Optional[Dict[str, float]] = None
    for _ in range(rounds):
        testbedlab.clear_cache()
        gc.collect()
        if case.kind == "micro":
            fn, _defaults = FUNCTION_CASES[case.target]
            started = time.perf_counter()
            stats = fn(**case.kwargs_dict)
            wall = time.perf_counter() - started
            round_events = float(stats.get("events", 0)) or None
            round_ticks = None
            # Any extra numeric keys a micro case reports (e.g. the
            # telemetry case's overhead_frac) land as scalars, the same
            # slot scenario cases use for their headline metrics.
            round_scalars = {
                key: float(value)
                for key, value in stats.items()
                if key != "events" and isinstance(value, (int, float))
            } or None
        else:
            from repro.experiments.specs import get_spec
            from repro.results import RunResult

            spec = get_spec(case.target)
            started = time.perf_counter()
            result = spec.run(**case.kwargs_dict)
            wall = time.perf_counter() - started
            round_events = result.runtime.get("events")
            round_ticks = result.runtime.get("sim_ticks")
            # Keep only the small scalar dict, never the result itself:
            # holding a full result (series, tables) across the
            # remaining rounds would defeat the per-round gc isolation.
            round_scalars = RunResult.from_result(result).numeric_scalars()
            del result
        if best_wall is None or wall < best_wall:
            best_wall = wall
            events = round_events
            sim_ticks = round_ticks
            best_scalars = round_scalars
    entry: Dict[str, object] = {
        "kind": case.kind,
        "kwargs": case.kwargs_dict,
        "wall_s": round(best_wall, 6),
        "events": None if events is None else int(events),
        "events_per_s": (
            None if not events or best_wall <= 0 else round(events / best_wall, 1)
        ),
    }
    if sim_ticks:
        entry["sim_s"] = round(sim_ticks / 1e6, 6)
    if best_scalars is not None:
        # Scenario cases also record their headline scalar metrics (via
        # the typed results layer), so a bench report documents *what*
        # was computed alongside how fast — and a perf change that
        # shifts semantics shows up in the same file. Scalars are
        # deterministic; comparisons still match cases on name+kwargs
        # only, so older baselines without the key stay comparable.
        entry["scalars"] = best_scalars
    return entry


def run_suite(
    quick: bool = False,
    only: Optional[str] = None,
    repeat: Optional[int] = None,
    progress: Optional[Callable[[str, Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Run the (filtered) suite and return the report dict."""
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "suite": "quick" if quick else "full",
        "cases": {},
    }
    for case in build_suite():
        if quick and not case.quick:
            continue
        if only and only not in case.name:
            continue
        entry = run_case(case, repeat=repeat)
        report["cases"][case.name] = entry
        if progress is not None:
            progress(case.name, entry)
    return report


def dump_report(report: Dict[str, object], path: str) -> None:
    """Write a report as deterministic JSON (sorted keys, newline-final)."""
    with open(path, "w") as handle:
        json.dump(report, handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_report(path: str) -> Dict[str, object]:
    """Read a previously written report JSON."""
    with open(path) as handle:
        return json.load(handle)


def hardware_index(old: Dict[str, object], new: Dict[str, object]) -> float:
    """Relative machine speed new/old, from the dispatch micro case.

    > 1.0 means the new machine dispatches faster. Falls back to 1.0
    when either report lacks the index case.
    """
    try:
        old_rate = old["cases"][INDEX_CASE]["events_per_s"]
        new_rate = new["cases"][INDEX_CASE]["events_per_s"]
    except (KeyError, TypeError):
        return 1.0
    if not old_rate or not new_rate:
        return 1.0
    return float(new_rate) / float(old_rate)


def compare_reports(
    old: Dict[str, object], new: Dict[str, object]
) -> List[Dict[str, object]]:
    """Per-case deltas for cases present (with equal kwargs) in both.

    ``speedup`` is raw old/new wall; ``norm_speedup`` divides out the
    hardware index (a machine running dispatch 2x slower halves every
    raw speedup for equal code, so dividing by the index restores
    ~1.0x), letting two reports from different machines compare code
    speed rather than CPU speed.
    """
    index = hardware_index(old, new)
    rows: List[Dict[str, object]] = []
    for name in sorted(set(old.get("cases", {})) & set(new.get("cases", {}))):
        old_case = old["cases"][name]
        new_case = new["cases"][name]
        if old_case.get("kwargs") != new_case.get("kwargs"):
            continue
        old_wall = float(old_case["wall_s"])
        new_wall = float(new_case["wall_s"])
        speedup = old_wall / new_wall if new_wall > 0 else float("inf")
        rows.append(
            {
                "case": name,
                "old_wall_s": old_wall,
                "new_wall_s": new_wall,
                "speedup": speedup,
                "norm_speedup": speedup / index if index > 0 else speedup,
                "old_events_per_s": old_case.get("events_per_s"),
                "new_events_per_s": new_case.get("events_per_s"),
            }
        )
    return rows


def render_comparison(rows: List[Dict[str, object]], index: float) -> str:
    """The --compare delta table as aligned monospace text."""
    lines = [
        f"hardware index (new/old dispatch rate): {index:.3f}",
        f"{'case':<32} {'old wall':>10} {'new wall':>10} {'speedup':>8} "
        f"{'norm':>8}  events/s old -> new",
    ]
    for row in rows:
        old_eps = row["old_events_per_s"]
        new_eps = row["new_events_per_s"]
        eps = (
            f"{old_eps:,.0f} -> {new_eps:,.0f}"
            if old_eps and new_eps
            else "-"
        )
        lines.append(
            f"{row['case']:<32} {row['old_wall_s']:>9.3f}s {row['new_wall_s']:>9.3f}s "
            f"{row['speedup']:>7.2f}x {row['norm_speedup']:>7.2f}x  {eps}"
        )
    return "\n".join(lines)


def regressions(
    rows: List[Dict[str, object]], tolerance: float
) -> List[Dict[str, object]]:
    """Rows whose normalised slowdown exceeds ``tolerance`` (e.g. 0.30)."""
    floor = 1.0 / (1.0 + tolerance)
    return [row for row in rows if row["norm_speedup"] < floor]
