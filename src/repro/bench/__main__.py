"""CLI: run the declared benchmark suite and compare reports.

Examples::

    python -m repro.bench                          # full suite, print report
    python -m repro.bench --out BENCH_PR3.json     # full suite, write JSON
    python -m repro.bench --quick                  # CI subset (fast cases)
    python -m repro.bench --only meshgen           # name-filtered subset
    python -m repro.bench --quick \\
        --compare BENCH_PR3.json --max-regression 0.30

``--compare OLD`` prints a delta table of every case present in both
reports (matched by name + kwargs). With ``--max-regression T`` the
process exits 1 when any shared case got slower than ``T`` (fractional,
0.30 = 30 %) after normalising by the engine-dispatch hardware index —
this is the CI perf gate. ``--compare`` without a fresh run (``--load``)
diffs two existing files.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import (
    compare_reports,
    dump_report,
    hardware_index,
    load_report,
    regressions,
    render_comparison,
    run_suite,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the repo's declared benchmark suite.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="run only the fast CI subset"
    )
    parser.add_argument(
        "--only", default=None, metavar="SUBSTR", help="run cases whose name contains SUBSTR"
    )
    parser.add_argument(
        "--repeat", type=int, default=None, help="override per-case repeat count"
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE", help="write the report JSON to FILE"
    )
    parser.add_argument(
        "--load",
        default=None,
        metavar="FILE",
        help="skip running; load an existing report as the 'new' side",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="OLD.json",
        help="print a delta table against a previous report",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FRAC",
        help="with --compare: exit 1 if any case regresses more than FRAC "
        "(normalised by the dispatch hardware index)",
    )
    args = parser.parse_args(argv)

    if args.load is not None:
        report = load_report(args.load)
    else:
        def progress(name, entry):
            eps = entry.get("events_per_s")
            rate = f"  {eps:,.0f} events/s" if eps else ""
            print(f"{name:<32} {entry['wall_s']:>9.3f}s{rate}", file=sys.stderr)

        report = run_suite(
            quick=args.quick, only=args.only, repeat=args.repeat, progress=progress
        )

    if args.out is not None:
        dump_report(report, args.out)
        print(f"wrote {args.out} ({len(report['cases'])} case(s))", file=sys.stderr)
    elif args.load is None and args.compare is None:
        json.dump(report, sys.stdout, sort_keys=True, indent=2)
        print()

    if args.compare is not None:
        old = load_report(args.compare)
        rows = compare_reports(old, report)
        if not rows:
            print("no comparable cases (names/kwargs differ)", file=sys.stderr)
            return 1
        print(render_comparison(rows, hardware_index(old, report)))
        if args.max_regression is not None:
            bad = regressions(rows, args.max_regression)
            if bad:
                for row in bad:
                    print(
                        f"REGRESSION {row['case']}: {row['norm_speedup']:.2f}x "
                        f"(tolerance {1.0 / (1.0 + args.max_regression):.2f}x)",
                        file=sys.stderr,
                    )
                return 1
            print(
                f"no regressions beyond {args.max_regression:.0%} "
                f"({len(rows)} case(s) compared)",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
