"""Engine micro-benchmarks: raw scheduling + dispatch throughput.

Each micro case is a plain function returning ``{"events": n}``; the
suite runner times it and derives events/s. They deliberately exercise
the three heap entry flavours separately — fire-and-forget posts (the
hot path of the simulator), cancellable :class:`~repro.sim.engine.Event`
objects, and a cancel-heavy churn that exercises the dead-event
bookkeeping (and, once implemented, heap compaction).
"""

from __future__ import annotations

from repro.sim.engine import Engine


def engine_post_dispatch(events: int = 200_000) -> dict:
    """Fire-and-forget posts drained by ``run()`` (the hot path)."""
    engine = Engine()
    fn = _count
    box = [0]
    for i in range(events):
        engine.post(i, fn, box)
    engine.run()
    assert box[0] == events
    return {"events": engine.processed_events}


def engine_schedule_dispatch(events: int = 100_000) -> dict:
    """Cancellable Event scheduling + dispatch (no cancellations)."""
    engine = Engine()
    fn = _count
    box = [0]
    for i in range(events):
        engine.schedule(i, fn, box)
    engine.run()
    assert box[0] == events
    return {"events": engine.processed_events}


def engine_cancel_churn(events: int = 100_000, cancel_every: int = 2) -> dict:
    """Schedule, cancel a large fraction, then drain.

    Measures how dispatch degrades when the heap carries dead events;
    with heap compaction this should cost close to the live-event count
    only. Every ``cancel_every``-th event is cancelled.
    """
    engine = Engine()
    fn = _count
    box = [0]
    handles = [engine.schedule(i, fn, box) for i in range(events)]
    cancelled = 0
    for handle in handles[::cancel_every]:
        handle.cancel()
        cancelled += 1
    engine.run()
    assert box[0] == events - cancelled
    return {"events": engine.processed_events}


def _count(box: list) -> None:
    box[0] += 1


#: name -> (callable, kwargs); names are stable identifiers in BENCH files.
MICRO_CASES = {
    "micro.engine_post_dispatch": (engine_post_dispatch, {"events": 200_000}),
    "micro.engine_schedule_dispatch": (engine_schedule_dispatch, {"events": 100_000}),
    "micro.engine_cancel_churn": (
        engine_cancel_churn,
        {"events": 100_000, "cancel_every": 2},
    ),
}
