"""Result-store benchmark: insert + streaming-aggregation throughput.

One synthetic 1k-run store, measured end to end: ``put`` every record
into a :class:`~repro.results.store.SqliteStore`, then run the two
streaming consumers the store exists for — ``scalars_frame`` (columnar,
no payload materialisation) and :func:`~repro.results.compare` — over a
lazily loaded :class:`~repro.results.ResultSet`. The run payloads are
two real (tiny) meshgen results cloned across a synthetic seed axis, so
serialisation cost is representative without simulating 1k times; the
reported ``events`` count one unit per insert and per streamed row.
"""

from __future__ import annotations

import os
import tempfile


def results_store(runs: int = 1000) -> dict:
    from repro.experiments.runner import RunRecord, RunRequest
    from repro.experiments.specs import get_spec
    from repro.results import ResultSet, compare, render_compare
    from repro.results.store import SqliteStore

    base_kwargs = {"nodes": 9, "flows": 2, "duration_s": 2.0, "warmup_s": 0.5}
    spec = get_spec("meshgen")
    templates = {
        algorithm: spec.run(algorithm=algorithm, **base_kwargs).to_dict()
        for algorithm in ("none", "ezflow")
    }
    result_type = type(spec.run(algorithm="none", **base_kwargs))

    events = 0
    with tempfile.TemporaryDirectory() as tmp:
        with SqliteStore(os.path.join(tmp, "bench.sqlite")) as store:
            for index in range(runs):
                algorithm = "none" if index % 2 == 0 else "ezflow"
                seed = 1000 + index // 2
                payload = dict(templates[algorithm])
                payload["parameters"] = dict(payload["parameters"], seed=seed)
                result = result_type.from_dict(payload)
                kwargs = dict(base_kwargs, algorithm=algorithm, seed=seed)
                request = RunRequest(
                    spec_id="meshgen",
                    kwargs=tuple(sorted(kwargs.items())),
                    run_id=f"meshgen~algorithm={algorithm}~seed={seed}",
                )
                store.put(RunRecord(request, result, wall_s=0.0))
                events += 1
            results = ResultSet.from_store(store)
            frame = results.scalars_frame()
            events += len(frame.rows)
            rendered = render_compare(compare(results))
            events += rendered.count("\n")
    return {"events": events}


#: name -> (callable, kwargs); merged into the micro-case lookup.
STORE_CASES = {
    "results.store.n1000": (results_store, {"runs": 1000}),
    "results.store.quick.n200": (results_store, {"runs": 200}),
}
