"""Telemetry overhead benchmark: attached vs detached run wall time.

The telemetry plane's contract is that it is free when nobody listens
and cheap when someone does. This case measures both sides on the same
scenario (meshgen at 49 nodes, the mid-size scaling point): a detached
run (no active probe — the production default) and an attached run with
an active :class:`~repro.telemetry.probe.ProbeSession` feeding a
counting listener at the default 1 s simulated sampling interval. Each
side is best-of-``rounds`` so scheduler noise does not masquerade as
probe cost. The reported ``overhead_frac`` is
``attached/detached - 1``; the acceptance budget is < 5 %.
"""

from __future__ import annotations


def telemetry_overhead(nodes: int = 49, density: float = 1.5, rounds: int = 3) -> dict:
    from repro.experiments import testbedlab
    from repro.experiments.specs import get_spec
    from repro.telemetry.hub import TelemetryHub
    from repro.telemetry.probe import ProbeSession, probe_scope

    import gc
    import time

    spec = get_spec("meshgen")
    kwargs = {"nodes": nodes, "density": density}

    def best_wall(run_once) -> float:
        best = None
        for _ in range(max(1, rounds)):
            testbedlab.clear_cache()
            gc.collect()
            started = time.perf_counter()
            run_once()
            wall = time.perf_counter() - started
            if best is None or wall < best:
                best = wall
        return best

    # Detached: no active probe session — the plane costs one
    # thread-local read per run.
    detached = best_wall(lambda: spec.run(**kwargs))

    # Attached: a live hub with a subscribed (counting) listener and an
    # active probe session, exactly the wiring a --live sweep gives a
    # worker.
    hub = TelemetryHub()
    seen = []
    hub.subscribe(seen.append)
    session = ProbeSession(
        emit=hub.emit, run_id="bench", sample_interval_s=hub.sample_interval_s
    )

    def attached_run():
        with probe_scope(session):
            spec.run(**kwargs)

    attached = best_wall(attached_run)

    return {
        "events": len(seen) // max(1, rounds),
        "detached_wall_s": round(detached, 6),
        "attached_wall_s": round(attached, 6),
        "overhead_frac": round(attached / detached - 1.0, 6),
    }


#: name -> (callable, kwargs); merged into the micro-case lookup.
TELEMETRY_CASES = {
    "telemetry.overhead": (telemetry_overhead, {"nodes": 49, "density": 1.5}),
}
