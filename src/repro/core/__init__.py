"""EZ-flow: the paper's primary contribution.

Two cooperating modules per (node, successor) pair:

* :class:`~repro.core.boe.BufferOccupancyEstimator` — passively infers
  the successor's buffer occupancy from overheard forwarded frames,
  without any message passing (Section 3.2).
* :class:`~repro.core.caa.ChannelAccessAdapter` — turns the averaged
  estimates into CWmin adaptations via a threshold MIMD policy with
  fairness-biased hysteresis counters (Section 3.3, Algorithm 1).

:class:`~repro.core.controller.EZFlowController` wires one (BOE, CAA)
pair onto every forwarding/source queue of a node stack.
"""

from repro.core.boe import BufferOccupancyEstimator
from repro.core.caa import CaaConfig, ChannelAccessAdapter
from repro.core.config import EZFlowConfig
from repro.core.controller import EZFlowController, attach_ezflow
from repro.core.nonfifo import NonFifoBOE
from repro.core.ratecaa import (
    RateCaa,
    RateEZFlowController,
    RateScheduler,
    attach_rate_ezflow,
)

__all__ = [
    "BufferOccupancyEstimator",
    "ChannelAccessAdapter",
    "CaaConfig",
    "EZFlowConfig",
    "EZFlowController",
    "attach_ezflow",
    "NonFifoBOE",
    "RateCaa",
    "RateEZFlowController",
    "RateScheduler",
    "attach_rate_ezflow",
]
