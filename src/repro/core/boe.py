"""Buffer Occupancy Estimator (BOE), Section 3.2 / Algorithm 1.

Node ``N_k`` remembers the identifiers (16-bit transport checksums) of
the last ``history_size`` packets it handed to its successor ``N_{k+1}``.
When the sniffer overhears ``N_{k+1}`` forwarding a packet onward to
``N_{k+2}``, FIFO queueing implies that every identifier stored *after*
the overheard one is still sitting in the successor's buffer:

    b_{k+1} = #identifiers between the overheard packet and LastPktSent.

No message is ever exchanged; the estimate is exact whenever the
overheard packet is found in the history, and the mechanism degrades
gracefully when overhearings are missed (fewer, not wrong, samples).

Identifier collisions in the 16-bit space are handled by matching the
*most recent* occurrence, which biases the estimate low by the collision
distance — rare (1/65536 per pair) and harmless, as the CAA averages 50
samples.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Hashable, List, Optional


class BufferOccupancyEstimator:
    """Passive successor-buffer estimation for one (node, successor) pair."""

    def __init__(self, successor: Hashable, history_size: int = 1000):
        if history_size < 2:
            raise ValueError("history_size must be >= 2")
        self.successor = successor
        self.history_size = history_size
        # Identifiers of packets sent to the successor, oldest first.
        self._sent: Deque[int] = deque(maxlen=history_size)
        # Subscribers receiving each new raw sample b_{k+1}.
        self.sample_callbacks: List[Callable[[int], None]] = []
        self.samples_produced = 0
        self.overheard_unmatched = 0

    # -- Algorithm 1, transmission branch ---------------------------------

    def note_sent(self, checksum: int) -> None:
        """Record the identifier of a packet handed to the successor.

        The deque's ``maxlen`` implements "overwrite oldest entry if
        needed"; the rightmost element is ``LastPktSent``.
        """
        self._sent.append(checksum & 0xFFFF)

    # -- Algorithm 1, sniffing branch -----------------------------------

    def note_overheard(self, checksum: int) -> Optional[int]:
        """Process an overheard forwarding by the successor.

        Returns the new estimate ``b_{k+1}``, or None when the identifier
        is not in the send history (e.g. packets of another flow merging
        at the successor, or history overrun).
        """
        checksum &= 0xFFFF
        # Search from the most recent entry backwards: under FIFO the
        # overheard packet is the *earliest* unforwarded one, but on
        # checksum collision the most recent match minimises error and a
        # reverse scan is O(current queue), not O(history).
        index = None
        for offset, value in enumerate(reversed(self._sent)):
            if value == checksum:
                index = len(self._sent) - 1 - offset
                break
        if index is None:
            self.overheard_unmatched += 1
            return None
        estimate = len(self._sent) - 1 - index
        # Everything up to and including the overheard packet has left
        # the successor's buffer; drop it so stale entries cannot match
        # later overhearings (retransmissions, 16-bit collisions).
        for _ in range(index + 1):
            self._sent.popleft()
        self.samples_produced += 1
        for callback in self.sample_callbacks:
            callback(estimate)
        return estimate

    @property
    def pending(self) -> int:
        """Identifiers currently believed to be queued at the successor."""
        return len(self._sent)
