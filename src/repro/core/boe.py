"""Buffer Occupancy Estimator (BOE), Section 3.2 / Algorithm 1.

Node ``N_k`` remembers the identifiers (16-bit transport checksums) of
the last ``history_size`` packets it handed to its successor ``N_{k+1}``.
When the sniffer overhears ``N_{k+1}`` forwarding a packet onward to
``N_{k+2}``, FIFO queueing implies that every identifier stored *after*
the overheard one is still sitting in the successor's buffer:

    b_{k+1} = #identifiers between the overheard packet and LastPktSent.

No message is ever exchanged; the estimate is exact whenever the
overheard packet is found in the history, and the mechanism degrades
gracefully when overhearings are missed (fewer, not wrong, samples).

Identifier collisions in the 16-bit space are handled by matching the
*most recent* occurrence, which biases the estimate low by the collision
distance — rare (1/65536 per pair) and harmless, as the CAA averages 50
samples.

The history is a deque paired with a checksum -> most-recent-position
index (positions are monotonic send counters, so pruned/evicted entries
are recognised by comparing against the head position). Lookup is O(1)
instead of the naive O(queue) reverse scan, while matching exactly the
reverse scan's most-recent-occurrence semantics; pruning stays amortised
O(1) per sent packet.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, List, Optional


class BufferOccupancyEstimator:
    """Passive successor-buffer estimation for one (node, successor) pair."""

    def __init__(self, successor: Hashable, history_size: int = 1000):
        if history_size < 2:
            raise ValueError("history_size must be >= 2")
        self.successor = successor
        self.history_size = history_size
        # Identifiers of packets sent to the successor, oldest first.
        self._sent: Deque[int] = deque()
        # Monotonic position (send counter) of the oldest deque entry.
        self._head = 0
        # checksum -> monotonic position of its most recent occurrence.
        # Entries going stale through pruning/eviction are detected by
        # position < head and cleaned up lazily.
        self._last_pos: Dict[int, int] = {}
        # Subscribers receiving each new raw sample b_{k+1}.
        self.sample_callbacks: List[Callable[[int], None]] = []
        self.samples_produced = 0
        self.overheard_unmatched = 0

    # -- Algorithm 1, transmission branch ---------------------------------

    def note_sent(self, checksum: int) -> None:
        """Record the identifier of a packet handed to the successor.

        Overwrites the oldest entry when the history is full; the
        rightmost element is ``LastPktSent``.
        """
        checksum &= 0xFFFF
        sent = self._sent
        sent.append(checksum)
        self._last_pos[checksum] = self._head + len(sent) - 1
        if len(sent) > self.history_size:
            evicted = sent.popleft()
            if self._last_pos.get(evicted) == self._head:
                del self._last_pos[evicted]
            self._head += 1

    # -- Algorithm 1, sniffing branch -----------------------------------

    def note_overheard(self, checksum: int) -> Optional[int]:
        """Process an overheard forwarding by the successor.

        Returns the new estimate ``b_{k+1}``, or None when the identifier
        is not in the send history (e.g. packets of another flow merging
        at the successor, or history overrun). On a 16-bit collision the
        most recent occurrence wins, which minimises the error.
        """
        checksum &= 0xFFFF
        position = self._last_pos.get(checksum)
        head = self._head
        if position is None or position < head:
            if position is not None:
                del self._last_pos[checksum]  # stale: pruned or evicted
            self.overheard_unmatched += 1
            return None
        sent = self._sent
        estimate = head + len(sent) - 1 - position
        # Everything up to and including the overheard packet has left
        # the successor's buffer; drop it so stale entries cannot match
        # later overhearings (retransmissions, 16-bit collisions).
        last_pos = self._last_pos
        for pos in range(head, position + 1):
            value = sent.popleft()
            if last_pos.get(value) == pos:
                del last_pos[value]
        self._head = position + 1
        self.samples_produced += 1
        for callback in self.sample_callbacks:
            callback(estimate)
        return estimate

    @property
    def pending(self) -> int:
        """Identifiers currently believed to be queued at the successor."""
        return len(self._sent)
