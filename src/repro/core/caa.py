"""Channel Access Adaptation (CAA), Section 3.3 / Algorithm 1.

Consumes raw BOE samples in batches of ``sample_window`` (50 in the
paper), averages them into ``b̄_{k+1}``, and applies the threshold policy:

* average above ``b_max``  -> overutilisation signal: bump ``countup``;
  once ``countup >= log2(cw)``, double ``cw`` (multiplicative decrease of
  channel access probability).
* average below ``b_min``  -> underutilisation signal: bump
  ``countdown``; once ``countdown >= countdown_base - log2(cw)``, halve
  ``cw``.
* in between -> desired regime: reset both counters, keep ``cw``.

The cw-dependent counter thresholds are the paper's inter-flow fairness
device: a node already using a *large* window reacts quickly to
underutilisation and sluggishly to overutilisation, and vice versa, so
contending nodes converge instead of oscillating together.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.config import EZFlowConfig


@dataclass
class CaaDecision:
    """Outcome of one 50-sample evaluation (for traces and tests)."""

    average: float
    old_cw: int
    new_cw: int
    countup: int
    countdown: int

    @property
    def changed(self) -> bool:
        return self.new_cw != self.old_cw


# Backwards-friendly alias: the adapter's config *is* the EZ-flow config.
CaaConfig = EZFlowConfig


class ChannelAccessAdapter:
    """The CAA state machine for one (node, successor) queue."""

    def __init__(
        self,
        config: EZFlowConfig,
        set_cwmin: Callable[[int], None],
        initial_cw: Optional[int] = None,
    ):
        self.config = config
        self._set_cwmin = set_cwmin
        self.cw = initial_cw if initial_cw is not None else config.mincw
        if self.cw < 1 or self.cw & (self.cw - 1):
            raise ValueError("initial cw must be a positive power of two")
        self.countup = 0
        self.countdown = 0
        self._samples: List[int] = []
        self.decisions: List[CaaDecision] = []
        self.decision_callbacks: List[Callable[[CaaDecision], None]] = []
        self._set_cwmin(self.cw)

    # -- sample intake -----------------------------------------------------

    def on_sample(self, b_successor: int) -> Optional[CaaDecision]:
        """Feed one raw BOE sample; decides after ``sample_window`` samples."""
        self._samples.append(b_successor)
        if len(self._samples) < self.config.sample_window:
            return None
        average = sum(self._samples) / len(self._samples)
        self._samples.clear()
        return self._decide(average)

    # -- Algorithm 1, CAA branch -----------------------------------------

    def _decide(self, average: float) -> CaaDecision:
        cfg = self.config
        old_cw = self.cw
        log_cw = int(math.log2(self.cw))
        if average > cfg.b_max:
            self.countdown = 0
            self.countup += 1
            if self.countup >= max(1, log_cw):
                self.cw = min(self.cw * 2, cfg.maxcw)
                self.countup = 0
        elif average < cfg.b_min:
            self.countup = 0
            self.countdown += 1
            if self.countdown >= max(1, cfg.countdown_base - log_cw):
                self.cw = max(self.cw // 2, cfg.mincw)
                self.countdown = 0
        else:
            self.countup = 0
            self.countdown = 0
        if self.cw != old_cw:
            self._set_cwmin(self.cw)
        decision = CaaDecision(
            average=average,
            old_cw=old_cw,
            new_cw=self.cw,
            countup=self.countup,
            countdown=self.countdown,
        )
        self.decisions.append(decision)
        for callback in self.decision_callbacks:
            callback(decision)
        return decision
