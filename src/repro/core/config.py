"""EZ-flow parameter set.

Defaults are the paper's simulation parameters (Section 5.1):
``b_min = 0.05``, ``b_max = 20``, ``maxcw = 2^15``, ``mincw = 2^4``,
50-sample averaging, 1000-identifier send history.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EZFlowConfig:
    """All tunables of the EZ-flow mechanism."""

    b_min: float = 0.05
    b_max: float = 20.0
    mincw: int = 16
    maxcw: int = 32768
    sample_window: int = 50
    history_size: int = 1000
    countdown_base: int = 15

    def __post_init__(self):
        if self.b_min < 0 or self.b_max <= self.b_min:
            raise ValueError("need 0 <= b_min < b_max")
        for name in ("mincw", "maxcw"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if self.maxcw < self.mincw:
            raise ValueError("maxcw must be >= mincw")
        if self.sample_window < 1:
            raise ValueError("sample_window must be >= 1")
        if self.history_size < 2:
            raise ValueError("history_size must be >= 2")
        if self.countdown_base < 1:
            raise ValueError("countdown_base must be >= 1")
