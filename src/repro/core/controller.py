"""EZFlowController: wires BOE + CAA onto a node stack.

One (BOE, CAA) pair is maintained per successor, as Section 3.1
requires. The controller subscribes to the node's sniffer and
sent-packet hooks:

* when the node's MAC hands a packet to successor ``s`` (ACKed), the
  BOE for ``s`` logs the packet identifier;
* when the sniffer overhears ``s`` forwarding a DATA frame onward, the
  BOE for ``s`` produces a buffer sample, which feeds the CAA;
* the CAA's decisions are applied to the CWmin of *every* transmit
  entity of this node pointing at ``s`` (own-traffic and forwarding
  queues share the successor's congestion state).

The controller is a pure observer of the MAC — exactly the "independent
program" deployment model of the paper.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.boe import BufferOccupancyEstimator
from repro.core.caa import ChannelAccessAdapter
from repro.core.config import EZFlowConfig
from repro.mac.dcf import TxEntity
from repro.mac.frames import Frame, FrameKind
from repro.net.node import NodeStack
from repro.net.packet import Packet
from repro.sim.tracing import TraceRecorder

NodeId = Hashable


class EZFlowController:
    """EZ-flow instance running at one node."""

    def __init__(
        self,
        node: NodeStack,
        config: Optional[EZFlowConfig] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        self.node = node
        self.config = config or EZFlowConfig()
        self.trace = trace if trace is not None else node.trace
        self.boes: Dict[NodeId, BufferOccupancyEstimator] = {}
        self.caas: Dict[NodeId, ChannelAccessAdapter] = {}
        node.sent_callbacks.append(self._on_packet_sent)
        node.sniffer_callbacks.append(self._on_overheard)

    # -- per-successor lazily created machinery ---------------------------

    def _machinery_for(self, successor: NodeId):
        if successor not in self.boes:
            boe = BufferOccupancyEstimator(successor, self.config.history_size)
            caa = ChannelAccessAdapter(
                self.config,
                set_cwmin=lambda cw, s=successor: self._apply_cwmin(s, cw),
                initial_cw=self.config.mincw,
            )
            boe.sample_callbacks.append(caa.on_sample)
            if self.trace is not None:
                caa.decision_callbacks.append(
                    lambda d, s=successor: self.trace.record(
                        f"ezflow.node{self.node.node_id}.to{s}.cw",
                        self.node.engine.now,
                        d.new_cw,
                    )
                )
            self.boes[successor] = boe
            self.caas[successor] = caa
        return self.boes[successor], self.caas[successor]

    def _entities_toward(self, successor: NodeId) -> List[TxEntity]:
        return [e for e in self.node.mac.entities if e.successor == successor]

    def _apply_cwmin(self, successor: NodeId, cw: int) -> None:
        for entity in self._entities_toward(successor):
            entity.set_cwmin(cw)

    # -- hooks ---------------------------------------------------------------

    def _on_packet_sent(self, entity: TxEntity, packet: Packet, frame: Frame, now: int) -> None:
        # Only track packets that the successor must *forward*: frames
        # whose final destination is the successor itself leave no trace
        # in its forwarding buffer.
        if packet.dst == entity.successor:
            return
        boe, _ = self._machinery_for(entity.successor)
        boe.note_sent(packet.checksum)

    def _on_overheard(self, frame: Frame, now: int) -> None:
        if frame.kind is not FrameKind.DATA or frame.packet is None:
            return
        successor = frame.src
        if successor not in self.boes:
            return  # not one of our successors
        boe = self.boes[successor]
        estimate = boe.note_overheard(frame.packet.checksum)
        if estimate is not None and self.trace is not None:
            self.trace.record(
                f"ezflow.node{self.node.node_id}.to{successor}.estimate",
                now,
                estimate,
            )

    # -- introspection ---------------------------------------------------------

    def current_cw(self, successor: NodeId) -> Optional[int]:
        """The CAA's current window toward ``successor`` (None if unknown)."""
        caa = self.caas.get(successor)
        return caa.cw if caa is not None else None


def attach_ezflow(
    nodes: Dict[NodeId, NodeStack],
    config: Optional[EZFlowConfig] = None,
    exclude: Optional[List[NodeId]] = None,
) -> Dict[NodeId, EZFlowController]:
    """Attach an EZ-flow controller to every node (incremental deploy).

    ``exclude`` supports the paper's backward-compatibility property:
    nodes without EZ-flow simply keep standard 802.11 behaviour.
    """
    excluded = set(exclude or ())
    return {
        node_id: EZFlowController(stack, config)
        for node_id, stack in nodes.items()
        if node_id not in excluded
    }
