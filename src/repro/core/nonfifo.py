"""BOE extension for non-FIFO (opportunistic) forwarding.

Section 2.3 discusses combining EZ-flow with opportunistic routing
(ExOR-style): when the successor does not forward in strict FIFO order,
the gap between an overheard packet and ``LastPktSent`` is a *noisy*
estimate of the backlog, and the paper suggests smoothing it over a
larger averaging period.

``NonFifoBOE`` implements that: on an overheard forwarding it removes
only the matched identifier (packets behind it may legitimately leave
first under opportunistic forwarding), reports the raw gap as the
sample, and exposes a windowed-median smoother the CAA can subscribe to
instead of the raw stream. Under strictly FIFO forwarding its median
output converges to the plain BOE's estimate.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Hashable, List, Optional

from repro.metrics.stats import percentile


class NonFifoBOE:
    """Passive backlog estimation tolerant to out-of-order forwarding."""

    def __init__(
        self,
        successor: Hashable,
        history_size: int = 1000,
        smoothing_window: int = 25,
    ):
        if history_size < 2:
            raise ValueError("history_size must be >= 2")
        if smoothing_window < 1:
            raise ValueError("smoothing_window must be >= 1")
        self.successor = successor
        self.history_size = history_size
        self.smoothing_window = smoothing_window
        self._sent: Deque[int] = deque(maxlen=history_size)
        self._recent: Deque[int] = deque(maxlen=smoothing_window)
        self.sample_callbacks: List[Callable[[int], None]] = []
        self.smoothed_callbacks: List[Callable[[float], None]] = []
        self.samples_produced = 0
        self.overheard_unmatched = 0

    def note_sent(self, checksum: int) -> None:
        """Record the identifier of a packet handed to the successor."""
        self._sent.append(checksum & 0xFFFF)

    def note_overheard(self, checksum: int) -> Optional[int]:
        """Process an overheard forwarding; returns the raw gap sample.

        Only the matched identifier is removed: with opportunistic
        forwarding the packets recorded *before* it may still be queued
        (they were not necessarily forwarded first), so pruning them —
        what the FIFO BOE does — would bias the estimate low.
        """
        checksum &= 0xFFFF
        index = None
        for offset, value in enumerate(reversed(self._sent)):
            if value == checksum:
                index = len(self._sent) - 1 - offset
                break
        if index is None:
            self.overheard_unmatched += 1
            return None
        gap = len(self._sent) - 1 - index
        del self._sent[index]
        self.samples_produced += 1
        self._recent.append(gap)
        for callback in self.sample_callbacks:
            callback(gap)
        smoothed = self.smoothed_estimate()
        if smoothed is not None:
            for callback in self.smoothed_callbacks:
                callback(smoothed)
        return gap

    def smoothed_estimate(self) -> Optional[float]:
        """Median of the recent gap samples (None before any sample).

        The median is robust to the occasional large gap a reordered
        forwarding produces, which is exactly the noise the paper's
        "larger averaging period" is meant to absorb.
        """
        if not self._recent:
            return None
        return percentile(list(self._recent), 50.0)

    @property
    def pending(self) -> int:
        return len(self._sent)
