"""Rate-based EZ-flow variant (the paper's conclusion, Section 7).

For deployments with more neighbours than MAC queues, the paper
proposes keeping the BOE unchanged and letting the CAA control *the
scheduling rate at which packets are delivered from a routing-layer
queue to the MAC*, instead of touching ``CWmin`` (implementable with
Click, no driver support needed).

``RateScheduler`` implements that routing-layer queue: packets destined
to one successor are held in an unbounded-capacity upper queue and
released into the (small) MAC queue on a paced clock. ``RateCaa``
adapts the pacing interval with exactly the CAA state machine —
50-sample averages, ``b_min``/``b_max`` thresholds, the cw-style
countup/countdown hysteresis — but the actuator halves/doubles the
release *rate* instead of the contention window.

``attach_rate_ezflow`` wires a (BOE, RateCaa, RateScheduler) triple per
successor onto a node stack, mirroring :func:`repro.core.controller.attach_ezflow`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List, Optional

from repro.core.boe import BufferOccupancyEstimator
from repro.core.config import EZFlowConfig
from repro.mac.frames import Frame, FrameKind
from repro.mac.queues import FifoQueue
from repro.net.node import NodeStack
from repro.net.packet import Packet
from repro.sim.engine import Engine, Event
from repro.sim.units import US_PER_S

NodeId = Hashable

#: Pacing-rate bounds in packets/second. The ratio maxrate/minrate
#: matches maxcw/mincw = 2^11, so the rate variant spans the same
#: dynamic range as the cw variant.
MIN_RATE_PPS = 0.125
MAX_RATE_PPS = 256.0


class RateScheduler:
    """Routing-layer pacer in front of one MAC queue.

    Locally generated (or forwarded) packets enter ``upper``; a timer
    releases them into the MAC queue at the current rate. The MAC queue
    is kept shallow (``mac_backlog_target``) so the pacing, not the MAC
    buffer, shapes the flow.
    """

    def __init__(
        self,
        engine: Engine,
        mac_queue: FifoQueue,
        notify_mac: Callable[[], None],
        rate_pps: float = MAX_RATE_PPS,
        mac_backlog_target: int = 2,
        upper_capacity: int = 100,
    ):
        self.engine = engine
        self.mac_queue = mac_queue
        self.notify_mac = notify_mac
        self.rate_pps = rate_pps
        self.mac_backlog_target = mac_backlog_target
        self.upper = FifoQueue("rate.upper", upper_capacity)
        self._timer: Optional[Event] = None
        self.released = 0

    def set_rate(self, rate_pps: float) -> None:
        """Change the release rate; takes effect at the next release."""
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate_pps = rate_pps

    def offer(self, packet: Packet) -> bool:
        """Accept a packet into the upper queue (False when full)."""
        accepted = self.upper.push(packet)
        if accepted:
            self._arm()
        return accepted

    def _interval_us(self) -> int:
        return max(1, int(round(US_PER_S / self.rate_pps)))

    def _arm(self) -> None:
        if self._timer is None and not self.upper.is_empty():
            self._timer = self.engine.schedule(self._interval_us(), self._release)

    def _release(self) -> None:
        self._timer = None
        if not self.upper.is_empty() and len(self.mac_queue) < self.mac_backlog_target:
            packet = self.upper.pop()
            if self.mac_queue.push(packet):
                self.released += 1
                self.notify_mac()
        self._arm()


class RateCaa:
    """The CAA state machine with a pacing-rate actuator.

    Identical thresholds and hysteresis to the cw-based CAA; the
    "aggressiveness" ladder is the release rate, so *over*utilisation
    halves the rate (≙ doubling cw) and underutilisation doubles it.
    The hysteresis counters reuse the cw ladder position: a node
    already throttled hard reacts quickly to underutilisation and
    slowly to overutilisation, preserving the fairness bias.
    """

    def __init__(
        self,
        config: EZFlowConfig,
        scheduler: RateScheduler,
        initial_rate_pps: float = MAX_RATE_PPS,
    ):
        self.config = config
        self.scheduler = scheduler
        self.rate_pps = initial_rate_pps
        self.countup = 0
        self.countdown = 0
        self._samples: List[int] = []
        scheduler.set_rate(self.rate_pps)

    def _ladder_position(self) -> int:
        """Equivalent of log2(cw): number of halvings below MAX_RATE."""
        return max(0, int(round(math.log2(MAX_RATE_PPS / self.rate_pps)))) + 4

    def on_sample(self, b_successor: int) -> Optional[float]:
        """Feed one raw BOE sample; decides per ``sample_window`` batch."""
        self._samples.append(b_successor)
        if len(self._samples) < self.config.sample_window:
            return None
        average = sum(self._samples) / len(self._samples)
        self._samples.clear()
        return self._decide(average)

    def _decide(self, average: float) -> float:
        cfg = self.config
        position = self._ladder_position()
        if average > cfg.b_max:
            self.countdown = 0
            self.countup += 1
            if self.countup >= max(1, position):
                self.rate_pps = max(self.rate_pps / 2, MIN_RATE_PPS)
                self.countup = 0
        elif average < cfg.b_min:
            self.countup = 0
            self.countdown += 1
            if self.countdown >= max(1, cfg.countdown_base - position):
                self.rate_pps = min(self.rate_pps * 2, MAX_RATE_PPS)
                self.countdown = 0
        else:
            self.countup = 0
            self.countdown = 0
        self.scheduler.set_rate(self.rate_pps)
        return average


class RateEZFlowController:
    """Rate-variant EZ-flow at one node: BOE + RateCaa per successor."""

    def __init__(self, node: NodeStack, config: Optional[EZFlowConfig] = None):
        self.node = node
        self.config = config or EZFlowConfig()
        self.boes: Dict[NodeId, BufferOccupancyEstimator] = {}
        self.caas: Dict[NodeId, RateCaa] = {}
        self.schedulers: Dict[NodeId, RateScheduler] = {}
        node.sent_callbacks.append(self._on_packet_sent)
        node.sniffer_callbacks.append(self._on_overheard)
        self._wrap_queues()

    def _wrap_queues(self) -> None:
        """Divert the node's send path through pacers (lazily built)."""
        original_send = self.node.send

        def paced_send(packet: Packet) -> bool:
            next_hop = self.node.routing.next_hop(self.node.node_id, packet.dst)
            return self._scheduler_for(next_hop).offer(packet)

        self.node.send = paced_send
        original_received = self.node.mac.on_data_received

        def paced_receive(frame: Frame, now: int) -> None:
            packet: Packet = frame.packet
            if packet.dst == self.node.node_id:
                original_received(frame, now)
                return
            packet.hops += 1
            next_hop = self.node.routing.next_hop(self.node.node_id, packet.dst)
            if not self._scheduler_for(next_hop).offer(packet):
                self.node.relay_drops += 1

        self.node.mac.on_data_received = paced_receive

    def _scheduler_for(self, successor: NodeId) -> RateScheduler:
        if successor not in self.schedulers:
            queue, entity = self.node.queue_for("fwd", successor)
            scheduler = RateScheduler(
                self.node.engine, queue, entity.notify_enqueue
            )
            boe = BufferOccupancyEstimator(successor, self.config.history_size)
            caa = RateCaa(self.config, scheduler)
            boe.sample_callbacks.append(caa.on_sample)
            self.schedulers[successor] = scheduler
            self.boes[successor] = boe
            self.caas[successor] = caa
        return self.schedulers[successor]

    def _on_packet_sent(self, entity, packet: Packet, frame: Frame, now: int) -> None:
        if packet.dst == entity.successor:
            return
        # Machinery exists for any successor we pace toward; packets on
        # unpaced queues (none, in practice) are ignored.
        boe = self.boes.get(entity.successor)
        if boe is not None:
            boe.note_sent(packet.checksum)

    def _on_overheard(self, frame: Frame, now: int) -> None:
        if frame.kind is not FrameKind.DATA or frame.packet is None:
            return
        boe = self.boes.get(frame.src)
        if boe is not None:
            boe.note_overheard(frame.packet.checksum)

    def current_rate(self, successor: NodeId) -> Optional[float]:
        """Current pacing rate toward ``successor`` in pkt/s (None if unknown)."""
        caa = self.caas.get(successor)
        return caa.rate_pps if caa is not None else None


def attach_rate_ezflow(
    nodes: Dict[NodeId, NodeStack],
    config: Optional[EZFlowConfig] = None,
) -> Dict[NodeId, RateEZFlowController]:
    """Attach the rate-based EZ-flow variant to every node."""
    return {
        node_id: RateEZFlowController(stack, config) for node_id, stack in nodes.items()
    }
