"""Experiment harnesses: one module per paper table/figure.

Registry mapping experiment ids to their ``run`` callables; the CLI
(``python -m repro.experiments <id>``) and the benchmarks both resolve
experiments through :func:`get_experiment`.

| id        | paper content                                   |
|-----------|--------------------------------------------------|
| fig1      | 3- vs 4-hop buffer evolution (Figure 1)          |
| table1    | testbed link capacities (Table 1)                |
| fig4      | testbed buffer evolution ± EZ-flow (Figure 4)    |
| table2    | testbed throughput/fairness (Table 2)            |
| scenario1 | merge topology, Figures 6, 7, 8                  |
| scenario2 | three-flow topology, Figures 10, 11, Table 3     |
| stability | Table 4 + Theorem 1 + random-walk contrast       |
"""

from typing import Callable, Dict

from repro.experiments import (
    bidirectional,
    fig1,
    fig4,
    loadsweep,
    scenario1,
    scenario2,
    stability,
    table1,
    table2,
)
from repro.experiments.common import ExperimentResult, Table

_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1.run,
    "table1": table1.run,
    "fig4": fig4.run,
    "table2": table2.run,
    "scenario1": scenario1.run,
    "fig6": scenario1.run,
    "fig7": scenario1.run,
    "fig8": scenario1.run,
    "scenario2": scenario2.run,
    "fig10": scenario2.run,
    "fig11": scenario2.run,
    "table3": scenario2.run,
    "stability": stability.run,
    "table4": stability.run,
    "loadsweep": loadsweep.run,
    "bidirectional": bidirectional.run,
}


def experiment_ids():
    """All registered experiment ids."""
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Resolve an experiment id (figure aliases included) to its runner."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(experiment_ids())}"
        ) from None


__all__ = ["ExperimentResult", "Table", "experiment_ids", "get_experiment"]
