"""Experiment harnesses: one module per paper table/figure.

The catalogue lives in :mod:`repro.experiments.specs` as declarative
:class:`~repro.experiments.specs.ScenarioSpec`s (id, entry point,
parameter schema); :mod:`repro.experiments.runner` fans batches of runs
out over processes. The CLI (``python -m repro.experiments``) and the
benchmarks both resolve experiments through :func:`get_experiment`.

| id        | paper content                                   |
|-----------|--------------------------------------------------|
| fig1      | 3- vs 4-hop buffer evolution (Figure 1)          |
| table1    | testbed link capacities (Table 1)                |
| fig4      | testbed buffer evolution ± EZ-flow (Figure 4)    |
| table2    | testbed throughput/fairness (Table 2)            |
| scenario1 | merge topology, Figures 6, 7, 8                  |
| scenario2 | three-flow topology, Figures 10, 11, Table 3     |
| stability | Table 4 + Theorem 1 + random-walk contrast       |
| loadsweep | offered-load sweep ± EZ-flow                     |
| meshgen   | generated mesh/grid/tree topologies ± baselines  |
| bidirectional | transport window sweep on the chain          |

Harness modules stay importable directly (``from repro.experiments
import fig1``); the registry resolves them lazily so ``list`` and spec
validation never pay harness import cost.
"""

from typing import Callable

from repro.experiments.common import ExperimentResult, Table
from repro.experiments.specs import get_spec, spec_ids


def experiment_ids():
    """All registered experiment ids (figure/table aliases included)."""
    return spec_ids()


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Resolve an experiment id (figure aliases included) to its runner."""
    return get_spec(experiment_id).resolve()


__all__ = ["ExperimentResult", "Table", "experiment_ids", "get_experiment"]
