"""CLI: regenerate paper tables/figures, run sweeps, compare algorithms.

Subcommands::

    list [--json]             catalogue of scenarios and their parameters
    run <ids...|all>          run one, several, or all experiments
    sweep <id> --grid k=v,..  cartesian parameter-grid sweep of one scenario
    compare <id|dir>          cross-run delta table vs. a baseline variant
    validate-fidelity         event-vs-slotted engine-tier agreement report

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig1
    python -m repro.experiments run all --jobs 4 --out results/
    python -m repro.experiments run table2 --duration 1800
    python -m repro.experiments sweep loadsweep --grid hops=2,3,4 \\
        --grid seed=1,2,3 --jobs 4 --out results/
    python -m repro.experiments sweep stability --grid cw=8,8,8,8;16,16,16,16 \\
        --replicates 3 --base-seed 9
    python -m repro.experiments sweep meshgen --set nodes=16,25 \\
        --set algorithm=none,ezflow,diffq --jobs 2 --out results/meshgen
    python -m repro.experiments compare meshgen --set nodes=16 \\
        --set algorithm=none,ezflow,diffq --baseline algorithm=none --jobs 2
    python -m repro.experiments compare results/meshgen   # previously exported

``sweep`` accepts ``--set`` as an alias of ``--grid``; scenarios may
declare default sweep axes (meshgen expands over every topology kind
unless ``--set topology=...`` pins one).

``compare`` renders the algorithm-delta table (goodput/fairness/delivery
vs. ``--baseline algorithm=none`` by default) either from a live sweep
(first argument is a scenario id) or from a previously exported ``--out``
directory (first argument is a directory). The table is byte-identical
in both modes and at any ``--jobs`` count. These subcommands are thin
shells over the stable programmatic API in :mod:`repro.results`
(``Study`` / ``ResultSet`` / ``compare``).

``validate-fidelity`` sweeps the cross-tier matrix (topologies x
algorithms x both engine tiers) — or loads a previously exported one —
pairs each event run with its slotted twin, and checks the headline
metric deltas against the calibrated tolerances in
:mod:`repro.results.validation`. Exit status 1 means at least one
tolerance was violated (the CI ``fidelity-smoke`` job gates on this).

Legacy spelling (``python -m repro.experiments fig1 --seed 2``) still
works: a first argument that is not a subcommand is treated as ``run``.

``run ... --jobs N`` fans independent experiments out over N worker
processes; ``--jobs 0`` uses every available core. Results are printed
— and exported with ``--out`` — in deterministic order, byte-identical
whatever N is. ``--out DIR`` writes per-run ``result.json`` + series
CSVs + ``tables.md``, a ``manifest.json``, and an ``EXPERIMENTS.md``
index rendering every table and series.

Option values are validated against each scenario's declared parameter
schema before anything runs: a typo'd or unsupported option is reported
as such (exit 2), and genuine errors inside an experiment propagate as
themselves instead of being mislabelled "unknown option".

``run`` and ``sweep`` execute fault-tolerantly on request:
``--on-error continue`` records failing runs as typed failure records
(exported as ``failures.json``, checkpointed into ``--store``) instead
of aborting, ``--on-error retry:N`` retries with capped exponential
backoff first, and ``--run-timeout SECONDS`` kills any single run
exceeding that wall time. ``--fault-plan`` injects deterministic chaos
for testing (see :mod:`repro.experiments.faults`).

Exit codes: 0 success; 1 a run timed out or crashed its worker under
``--on-error fail``; 2 invalid CLI input; 3 the test-only injected
sweep kill; 4 the batch completed under ``--on-error continue`` but
some runs failed; 130 interrupted (Ctrl-C).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.experiments.faults import FaultPlan
from repro.experiments.runner import (
    ErrorPolicy,
    InjectedSweepFault,
    RunRecord,
    RunTimeoutError,
    WorkerCrashError,
    catalogue_requests,
    request_for,
)
from repro.experiments.specs import (
    ParameterValueError,
    ScenarioSpec,
    UnknownExperimentError,
    UnknownParameterError,
    catalogue,
    get_spec,
    spec_ids,
    SPECS,
)
from repro.results import (
    ComparisonError,
    ResultLoadError,
    ResultSet,
    Study,
    compare,
    execute_requests,
    open_store,
    render_compare,
)

SUBCOMMANDS = ("run", "sweep", "list", "compare", "validate-fidelity")


def _add_jobs_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = all available cores; default 1)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="export results (JSON/CSV/markdown + EXPERIMENTS.md) to DIR",
    )


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help="checkpoint runs into a result store and skip runs already "
        "present: sqlite:PATH | dir:PATH, or a bare path dispatched on "
        "suffix (.sqlite/.db = sqlite backend, anything else = an "
        "export-tree directory); an interrupted sweep re-issued "
        "against the same store resumes instead of restarting",
    )


def _add_fault_opts(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--on-error",
        default="fail",
        metavar="POLICY",
        help="what a failing run does to the batch: 'fail' aborts "
        "(default), 'continue' records a typed failure and keeps going "
        "(exit 4, failures.json exported), 'retry:N' retries with capped "
        "exponential backoff first",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill any single run exceeding this wall time (counts as a "
        "failure under the --on-error policy)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="inject deterministic faults into chosen runs, e.g. "
        "'2=raise+5=crash+8=hang:60' (testing/CI; see "
        "repro.experiments.faults; env: REPRO_FAULT_PLAN)",
    )


def _add_overrides(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    parser.add_argument(
        "--duration", type=float, default=None, help="run duration in seconds"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="schedule compression for scenario experiments (1.0 = paper)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="assignments",
        help="set any declared parameter (repeatable), e.g. --set hops=6",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the EZ-flow paper's tables/figures and run sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one, several, or all experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help=f"experiment ids or 'all'; known: {', '.join(spec_ids())}",
    )
    _add_overrides(run)
    _add_jobs_out(run)
    _add_store(run)
    _add_fault_opts(run)

    sweep = sub.add_parser("sweep", help="parameter-grid sweep of one scenario")
    sweep.add_argument("experiment", metavar="ID", help="scenario id to sweep")
    sweep.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        dest="grid_axes",
        help="one grid axis (repeatable); ';' separates sequence values",
    )
    sweep.add_argument(
        "--set",
        action="append",
        metavar="KEY=V1,V2,...",
        dest="grid_axes",
        help="alias of --grid (matches the run subcommand's spelling)",
    )
    sweep.add_argument(
        "--replicates", type=int, default=1, help="runs per grid point (default 1)"
    )
    sweep.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="derive a distinct seed per run from this base",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from --store (requires --store; "
        "already-checkpointed runs are reported as cache hits)",
    )
    sweep.add_argument(
        "--live",
        action="store_true",
        help="render an in-place live progress table on stderr "
        "(replaces the per-run completion lines)",
    )
    sweep.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="record telemetry events to per-run JSONL sidecars under DIR",
    )
    sweep.add_argument(
        "--telemetry-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="telemetry sampling interval in simulated seconds (default 1.0)",
    )
    _add_jobs_out(sweep)
    _add_store(sweep)
    _add_fault_opts(sweep)

    cmp = sub.add_parser(
        "compare", help="cross-run delta table vs. a baseline variant"
    )
    cmp.add_argument(
        "target",
        metavar="ID|DIR",
        help="scenario id to sweep live, or an exported --out directory to load",
    )
    cmp.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        dest="grid_axes",
        help="one grid axis for a live sweep (repeatable)",
    )
    cmp.add_argument(
        "--set",
        action="append",
        metavar="KEY=V1,V2,...",
        dest="grid_axes",
        help="alias of --grid",
    )
    cmp.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="baseline variant filter (repeatable; default algorithm=none)",
    )
    cmp.add_argument(
        "--metrics",
        default=None,
        metavar="M1,M2,...",
        help="scalar metrics to compare (default: goodput/fairness/delivery)",
    )
    cmp.add_argument(
        "--align",
        default=None,
        metavar="K1,K2,...",
        help="parameters identifying an aligned layout "
        "(default: every varying non-baseline parameter)",
    )
    cmp.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="seed-axis size: every grid point runs the same derived "
        "seed set, so replicate k aligns across variants (default 1)",
    )
    cmp.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="base for the derived seed axis (default: the scenario's "
        "declared default seed)",
    )
    _add_jobs_out(cmp)
    _add_store(cmp)

    validate = sub.add_parser(
        "validate-fidelity",
        help="event-vs-slotted engine-tier agreement report",
    )
    validate.add_argument(
        "--from",
        dest="load_dir",
        default=None,
        metavar="DIR",
        help="validate a previously exported sweep instead of running one",
    )
    validate.add_argument(
        "--topologies",
        default="mesh,grid",
        metavar="T1,T2,...",
        help="topology kinds for the live matrix (default mesh,grid)",
    )
    validate.add_argument(
        "--algorithms",
        default="none,ezflow,diffq",
        metavar="A1,A2,...",
        help="algorithms for the live matrix (default none,ezflow,diffq)",
    )
    validate.add_argument(
        "--nodes", type=int, default=16, help="node count (default 16)"
    )
    validate.add_argument(
        "--duration", type=float, default=30.0, help="run duration in seconds"
    )
    validate.add_argument("--seed", type=int, default=11, help="master RNG seed")
    validate.add_argument(
        "--static-only",
        action="store_true",
        help="skip the dynamic link-state cases (one loss pair, one "
        "churn pair) and validate the static matrix only",
    )
    _add_jobs_out(validate)
    _add_store(validate)

    lst = sub.add_parser("list", help="print the scenario catalogue")
    lst.add_argument(
        "--json",
        action="store_true",
        help="machine-readable catalogue (ids, params, defaults, sweep axes)",
    )
    return parser


def _collect_overrides(args) -> Dict[str, object]:
    """Merge --seed/--duration/--time-scale with --set assignments."""
    overrides: Dict[str, object] = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.time_scale is not None:
        overrides["time_scale"] = args.time_scale
    for assignment in args.assignments:
        key, sep, value = assignment.partition("=")
        if not sep or not key:
            raise ParameterValueError(f"--set expects KEY=VALUE, got {assignment!r}")
        overrides[key.strip()] = value.strip()
    return overrides


def _parse_grid(axes: List[str], spec: ScenarioSpec) -> Dict[str, List[str]]:
    """Parse repeated ``--grid key=v1,v2`` options into a grid mapping.

    Scalar-kind axes split on ','. Sequence-kind parameters (e.g.
    ``cw``) split on ';' so each value can itself contain commas:
    ``--grid cw=8,8,8,8`` is ONE four-element value and
    ``--grid cw=8,8,8,8;16,16,16,16`` is two grid values.
    """
    grid: Dict[str, List[str]] = {}
    for axis in axes:
        key, sep, values = axis.partition("=")
        if not sep or not key or not values:
            raise ParameterValueError(f"--grid expects KEY=V1,V2,..., got {axis!r}")
        key = key.strip()
        param = spec.param(key)  # unknown axis -> UnknownParameterError
        sep_char = ";" if param.kind in ("ints", "floats") else ","
        grid[key] = [v.strip() for v in values.split(sep_char) if v.strip()]
        if not grid[key]:
            raise ParameterValueError(f"--grid {key}: no values given")
    return grid


def _print_record(record: RunRecord) -> None:
    if record.failure is not None:
        failure = record.failure
        print(
            f"{failure.run_id}: FAILED [{failure.kind}] "
            f"{failure.error}: {failure.message} "
            f"({failure.attempts} attempt(s))"
        )
        print()
        return
    print(record.result.render())
    if record.cached:
        print(f"(cache hit; originally {record.wall_s:.1f} s)")
    else:
        print(f"(wall time {record.wall_s:.1f} s)")
    print()


def _fault_options(args):
    """Parse --on-error/--run-timeout/--fault-plan into runner inputs."""
    try:
        policy = ErrorPolicy.parse(getattr(args, "on_error", "fail"))
    except ValueError as error:
        raise ParameterValueError(str(error)) from None
    run_timeout = getattr(args, "run_timeout", None)
    if run_timeout is not None and run_timeout <= 0:
        raise ParameterValueError("--run-timeout must be positive")
    plan_spec = getattr(args, "fault_plan", None)
    faults = FaultPlan.parse(plan_spec) if plan_spec else None
    return policy, run_timeout, faults


def _report_failures(results: ResultSet) -> None:
    """Summarise a fault-tolerant batch's failures on stderr."""
    if not results.failures:
        return
    print(
        f"{len(results.failures)} run(s) failed "
        f"({len(results)} survived):",
        file=sys.stderr,
    )
    for failure in results.failures:
        print(
            f"  {failure.run_id}: [{failure.kind}] {failure.error}: "
            f"{failure.message} ({failure.attempts} attempt(s))",
            file=sys.stderr,
        )


def _run_batch(
    requests,
    jobs: int,
    out: Optional[str],
    store_path: Optional[str] = None,
    on_error=None,
    run_timeout: Optional[float] = None,
    faults=None,
    live: bool = False,
    telemetry_dir: Optional[str] = None,
    telemetry_interval: float = 1.0,
) -> ResultSet:
    if jobs < 0:
        raise ParameterValueError("--jobs must be >= 0 (0 = all available cores)")
    store = open_store(store_path) if store_path else None
    hits = [0]

    hub = None
    recorder = None
    table = None
    if live or telemetry_dir is not None:
        from repro.telemetry import LiveTable, TelemetryHub, TelemetryRecorder

        if telemetry_interval <= 0:
            raise ParameterValueError("--telemetry-interval must be positive")
        hub = TelemetryHub(sample_interval_s=telemetry_interval)
        if telemetry_dir is not None:
            recorder = hub.subscribe(TelemetryRecorder(telemetry_dir))
        if live:
            table = hub.subscribe(LiveTable(len(requests)))

    def on_record(record: RunRecord) -> None:
        hits[0] += record.cached
        # The live table renders progress in place; interleaving the
        # per-run completion lines would shred it.
        if table is None:
            _print_record(record)

    try:
        results = execute_requests(
            requests,
            jobs=jobs,
            on_record=on_record,
            store=store,
            on_error=on_error,
            run_timeout=run_timeout,
            faults=faults,
            telemetry=hub,
        )
        if store is not None:
            print(
                f"store {store_path}: {hits[0]} cache hit(s), "
                f"{len(results) + len(results.failures) - hits[0]} executed",
                file=sys.stderr,
            )
    finally:
        if table is not None:
            table.finish()
        if recorder is not None:
            recorder.close()
            print(f"telemetry recorded under {telemetry_dir}", file=sys.stderr)
        if store is not None:
            store.close()
    if out is not None:
        results.save(out)
        print(f"exported {len(results)} run(s) to {out}", file=sys.stderr)
    _report_failures(results)
    return results


def cmd_list(args) -> int:
    if args.json:
        json.dump(catalogue(), sys.stdout, sort_keys=True, indent=2)
        print()
        return 0
    for spec in SPECS:
        aliases = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"{spec.id}: {spec.description}{aliases}")
        for param in spec.params:
            help_text = f"  — {param.help}" if param.help else ""
            print(f"    {param.name} ({param.kind}, default {param.default!r}){help_text}")
        for name, values in spec.sweep_defaults:
            rendered = ",".join(str(v) for v in values)
            print(f"    [sweep default axis] {name}={rendered}")
    return 0


def cmd_run(args) -> int:
    overrides = _collect_overrides(args)
    ids = list(args.experiments)
    if "all" in ids:
        ids = spec_ids(include_aliases=False)
        requests, warnings = catalogue_requests(ids, overrides, strict=False)
        for warning in warnings:
            print(warning, file=sys.stderr)
    else:
        requests = [
            request_for(get_spec(experiment_id).id, overrides) for experiment_id in ids
        ]
        # Collapse figure aliases so e.g. 'fig6 fig7' runs the shared
        # harness once; dedup keeps first occurrence order.
        seen = set()
        requests = [
            r for r in requests if not (r.run_id in seen or seen.add(r.run_id))
        ]
    policy, run_timeout, faults = _fault_options(args)
    results = _run_batch(
        requests,
        args.jobs,
        args.out,
        store_path=args.store,
        on_error=policy,
        run_timeout=run_timeout,
        faults=faults,
    )
    return 4 if results.failures else 0


def _build_study(spec: ScenarioSpec, args, aligned_seeds: bool = False) -> Study:
    """A Study from parsed CLI axes + replicate options.

    ``sweep`` keeps the legacy replicate semantics (a distinct seed per
    global run index, ``--replicates > 1`` requiring ``--base-seed`` or
    a seed axis). ``compare`` passes ``aligned_seeds=True``: replicates
    become a shared seed *axis* (:meth:`Study.seeds`), because
    per-run-index seeds would give baseline and variant runs different
    layouts and no aligned group would ever pair them.
    """
    study = Study(spec.id)
    for name, values in _parse_grid(args.grid_axes, spec).items():
        study.grid(**{name: list(values)})
    if aligned_seeds:
        if args.replicates < 1:
            raise ParameterValueError("--replicates must be >= 1")
        if args.replicates > 1 or args.base_seed is not None:
            study.seeds(args.replicates, base=args.base_seed)
    else:
        study.replicates(args.replicates, base_seed=args.base_seed)
    return study


def cmd_sweep(args) -> int:
    spec = get_spec(args.experiment)
    if args.resume and not args.store:
        raise ParameterValueError("--resume requires --store PATH")
    # Scenario default axes (e.g. meshgen's topology kinds) expand
    # unless the CLI pinned them — the Study builder applies that rule.
    study = _build_study(spec, args)
    requests = study.requests()
    print(
        f"sweep {spec.id}: {len(requests)} run(s) "
        f"({len(study.axes())} axis/axes, {args.replicates} replicate(s))"
        + (" [resuming]" if args.resume else ""),
        file=sys.stderr,
    )
    policy, run_timeout, faults = _fault_options(args)
    results = _run_batch(
        requests,
        args.jobs,
        args.out,
        store_path=args.store,
        on_error=policy,
        run_timeout=run_timeout,
        faults=faults,
        live=args.live,
        telemetry_dir=args.telemetry,
        telemetry_interval=args.telemetry_interval,
    )
    return 4 if results.failures else 0


def _parse_baseline(assignments: List[str]) -> Optional[Dict[str, str]]:
    baseline: Dict[str, str] = {}
    for assignment in assignments:
        key, sep, value = assignment.partition("=")
        if not sep or not key:
            raise ParameterValueError(
                f"--baseline expects KEY=VALUE, got {assignment!r}"
            )
        baseline[key.strip()] = value.strip()
    return baseline or None  # None -> the default baseline (algorithm=none)


def cmd_compare(args) -> int:
    if args.jobs < 0:
        raise ParameterValueError("--jobs must be >= 0 (0 = all available cores)")
    baseline = _parse_baseline(args.baseline)
    metrics = (
        [m.strip() for m in args.metrics.split(",") if m.strip()]
        if args.metrics is not None
        else None
    )
    align = (
        [k.strip() for k in args.align.split(",") if k.strip()]
        if args.align is not None
        else None
    )
    # A bare scenario id always means a live sweep, even if a directory
    # of the same name happens to exist; spell directories with a path
    # separator (results/meshgen, ./meshgen) to load an export instead.
    # A file target is a sqlite result store and loads the same way.
    is_spec_id = os.sep not in args.target and args.target in spec_ids()
    if not is_spec_id and (os.path.isdir(args.target) or os.path.isfile(args.target)):
        if args.grid_axes or args.replicates != 1 or args.base_seed is not None:
            raise ParameterValueError(
                "--set/--grid/--replicates/--base-seed only apply to live "
                "sweeps, not directory or store targets"
            )
        if os.path.isfile(args.target):
            with open_store(args.target) as store:
                results = ResultSet.from_store(store)
                # Materialise within the context: lazy loaders hold the
                # store connection, and rendering needs only scalars
                # anyway, but --out re-exports want full payloads.
                if args.out is not None:
                    for run in results:
                        run.result
            print(
                f"loaded {len(results)} run(s) from store {args.target}",
                file=sys.stderr,
            )
        else:
            results = ResultSet.load(args.target)
            print(f"loaded {len(results)} run(s) from {args.target}", file=sys.stderr)
        if args.out is not None:
            results.save(args.out)
            print(f"exported {len(results)} run(s) to {args.out}", file=sys.stderr)
    else:
        spec = get_spec(args.target)
        requests = _build_study(spec, args, aligned_seeds=True).requests()
        print(f"compare {spec.id}: sweeping {len(requests)} run(s)", file=sys.stderr)

        def progress(record: RunRecord) -> None:
            cached = " [cache hit]" if record.cached else ""
            print(
                f"  {record.request.run_id} ({record.wall_s:.1f} s){cached}",
                file=sys.stderr,
            )

        store = open_store(args.store) if args.store else None
        try:
            results = execute_requests(
                requests, jobs=args.jobs, on_record=progress, store=store
            )
        finally:
            if store is not None:
                store.close()
        if args.out is not None:
            results.save(args.out)
            print(f"exported {len(results)} run(s) to {args.out}", file=sys.stderr)
    try:
        table = compare(results, baseline=baseline, metrics=metrics, align=align)
    except ComparisonError as error:
        print(error, file=sys.stderr)
        return 2
    rendered = render_compare(table)
    print(rendered)
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, "compare.md"), "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {os.path.join(args.out, 'compare.md')}", file=sys.stderr)
    return 0


def cmd_validate_fidelity(args) -> int:
    from repro.results.validation import (
        DYNAMIC_CASES,
        ValidationError,
        validate_fidelity,
        validation_study,
    )

    if args.jobs < 0:
        raise ParameterValueError("--jobs must be >= 0 (0 = all available cores)")
    if args.load_dir is not None:
        results = ResultSet.load(args.load_dir)
        print(f"loaded {len(results)} run(s) from {args.load_dir}", file=sys.stderr)
    else:
        topologies = [t.strip() for t in args.topologies.split(",") if t.strip()]
        algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
        if not topologies or not algorithms:
            raise ParameterValueError(
                "--topologies and --algorithms each need at least one value"
            )
        dynamic_cases = () if args.static_only else DYNAMIC_CASES
        matrix = (len(topologies) * len(algorithms) + len(dynamic_cases)) * 2
        print(
            f"validate-fidelity: {len(topologies)} topolog(ies) x "
            f"{len(algorithms)} algorithm(s) + {len(dynamic_cases)} dynamic "
            f"case(s), x 2 tiers = {matrix} run(s)",
            file=sys.stderr,
        )
        store = open_store(args.store) if args.store else None
        try:
            results = validation_study(
                topologies=topologies,
                algorithms=algorithms,
                nodes=args.nodes,
                duration_s=args.duration,
                seed=args.seed,
                jobs=args.jobs,
                dynamic_cases=dynamic_cases,
                store=store,
            )
        finally:
            if store is not None:
                store.close()
        if args.out is not None:
            results.save(args.out)
            print(f"exported {len(results)} run(s) to {args.out}", file=sys.stderr)
    try:
        report = validate_fidelity(results)
    except ValidationError as error:
        print(error, file=sys.stderr)
        return 2
    from repro.experiments.export import table_to_markdown

    rendered = table_to_markdown(report.table())
    print(rendered)
    for run_id in report.unpaired:
        print(f"unpaired run (no twin on the other tier): {run_id}", file=sys.stderr)
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, "validation.md"), "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {os.path.join(args.out, 'validation.md')}", file=sys.stderr)
    if not report.ok:
        violations = report.violations
        print(
            f"FIDELITY VALIDATION FAILED: {len(violations)} of "
            f"{len(report.rows)} check(s) outside tolerance",
            file=sys.stderr,
        )
        for row in violations:
            scenario = ",".join(f"{k}={v}" for k, v in row.scenario)
            print(
                f"  {scenario} {row.metric}: event={row.baseline} "
                f"slotted={row.candidate} (Δabs={row.abs_delta:.4f}, "
                f"Δrel={row.rel_delta:.4f}, limit {row.limit})",
                file=sys.stderr,
            )
        return 1
    print(
        f"fidelity validation OK: {len(report.rows)} check(s) over "
        f"{report.pair_count} scenario pair(s)",
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy spelling: `python -m repro.experiments fig1 ...` == `run fig1 ...`.
    if argv and argv[0] not in SUBCOMMANDS and not argv[0].startswith("-"):
        argv.insert(0, "run")
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return cmd_list(args)
        if args.command == "run":
            return cmd_run(args)
        if args.command == "compare":
            return cmd_compare(args)
        if args.command == "validate-fidelity":
            return cmd_validate_fidelity(args)
        return cmd_sweep(args)
    except InjectedSweepFault as error:
        # Test-only fault injection (REPRO_SWEEP_FAULT_AFTER): the sweep
        # died mid-flight on purpose; the store keeps what completed.
        print(error, file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        # The runner's cleanup path has already terminated the worker
        # pool; exit with the conventional SIGINT status.
        print("interrupted", file=sys.stderr)
        return 130
    except (RunTimeoutError, WorkerCrashError) as error:
        # A timed-out or worker-killing run under --on-error fail: the
        # batch aborted; a store keeps everything completed before it.
        print(error, file=sys.stderr)
        return 1
    except (
        UnknownParameterError,
        ParameterValueError,
        UnknownExperimentError,
        ResultLoadError,
    ) as error:
        # Only CLI-input errors are caught; errors raised inside an
        # experiment harness (including KeyErrors) propagate as-is.
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
