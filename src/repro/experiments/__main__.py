"""CLI: regenerate paper tables/figures and run parameter sweeps.

Subcommands::

    list                      catalogue of scenarios and their parameters
    run <ids...|all>          run one, several, or all experiments
    sweep <id> --grid k=v,..  cartesian parameter-grid sweep of one scenario

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig1
    python -m repro.experiments run all --jobs 4 --out results/
    python -m repro.experiments run table2 --duration 1800
    python -m repro.experiments sweep loadsweep --grid hops=2,3,4 \\
        --grid seed=1,2,3 --jobs 4 --out results/
    python -m repro.experiments sweep stability --grid cw=8,8,8,8;16,16,16,16 \\
        --replicates 3 --base-seed 9
    python -m repro.experiments sweep meshgen --set nodes=16,25 \\
        --set algorithm=none,ezflow,diffq --jobs 2 --out results/meshgen

``sweep`` accepts ``--set`` as an alias of ``--grid``; scenarios may
declare default sweep axes (meshgen expands over every topology kind
unless ``--set topology=...`` pins one).

Legacy spelling (``python -m repro.experiments fig1 --seed 2``) still
works: a first argument that is not a subcommand is treated as ``run``.

``run ... --jobs N`` fans independent experiments out over N worker
processes; ``--jobs 0`` uses every available core. Results are printed
— and exported with ``--out`` — in deterministic order, byte-identical
whatever N is. ``--out DIR`` writes per-run ``result.json`` + series
CSVs + ``tables.md``, a ``manifest.json``, and an ``EXPERIMENTS.md``
index rendering every table and series.

Option values are validated against each scenario's declared parameter
schema before anything runs: a typo'd or unsupported option is reported
as such (exit 2), and genuine errors inside an experiment propagate as
themselves instead of being mislabelled "unknown option".
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.experiments.runner import (
    RunRecord,
    SweepRunner,
    catalogue_requests,
    default_jobs,
    grid_requests,
    request_for,
)
from repro.experiments.specs import (
    ParameterValueError,
    ScenarioSpec,
    UnknownExperimentError,
    UnknownParameterError,
    get_spec,
    spec_ids,
    SPECS,
)

SUBCOMMANDS = ("run", "sweep", "list")


def _add_jobs_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = all available cores; default 1)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="export results (JSON/CSV/markdown + EXPERIMENTS.md) to DIR",
    )


def _add_overrides(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    parser.add_argument(
        "--duration", type=float, default=None, help="run duration in seconds"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="schedule compression for scenario experiments (1.0 = paper)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="assignments",
        help="set any declared parameter (repeatable), e.g. --set hops=6",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the EZ-flow paper's tables/figures and run sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one, several, or all experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help=f"experiment ids or 'all'; known: {', '.join(spec_ids())}",
    )
    _add_overrides(run)
    _add_jobs_out(run)

    sweep = sub.add_parser("sweep", help="parameter-grid sweep of one scenario")
    sweep.add_argument("experiment", metavar="ID", help="scenario id to sweep")
    sweep.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        dest="grid_axes",
        help="one grid axis (repeatable); ';' separates sequence values",
    )
    sweep.add_argument(
        "--set",
        action="append",
        metavar="KEY=V1,V2,...",
        dest="grid_axes",
        help="alias of --grid (matches the run subcommand's spelling)",
    )
    sweep.add_argument(
        "--replicates", type=int, default=1, help="runs per grid point (default 1)"
    )
    sweep.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="derive a distinct seed per run from this base",
    )
    _add_jobs_out(sweep)

    sub.add_parser("list", help="print the scenario catalogue")
    return parser


def _collect_overrides(args) -> Dict[str, object]:
    """Merge --seed/--duration/--time-scale with --set assignments."""
    overrides: Dict[str, object] = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.time_scale is not None:
        overrides["time_scale"] = args.time_scale
    for assignment in args.assignments:
        key, sep, value = assignment.partition("=")
        if not sep or not key:
            raise ParameterValueError(f"--set expects KEY=VALUE, got {assignment!r}")
        overrides[key.strip()] = value.strip()
    return overrides


def _parse_grid(axes: List[str], spec: ScenarioSpec) -> Dict[str, List[str]]:
    """Parse repeated ``--grid key=v1,v2`` options into a grid mapping.

    Scalar-kind axes split on ','. Sequence-kind parameters (e.g.
    ``cw``) split on ';' so each value can itself contain commas:
    ``--grid cw=8,8,8,8`` is ONE four-element value and
    ``--grid cw=8,8,8,8;16,16,16,16`` is two grid values.
    """
    grid: Dict[str, List[str]] = {}
    for axis in axes:
        key, sep, values = axis.partition("=")
        if not sep or not key or not values:
            raise ParameterValueError(f"--grid expects KEY=V1,V2,..., got {axis!r}")
        key = key.strip()
        param = spec.param(key)  # unknown axis -> UnknownParameterError
        sep_char = ";" if param.kind in ("ints", "floats") else ","
        grid[key] = [v.strip() for v in values.split(sep_char) if v.strip()]
        if not grid[key]:
            raise ParameterValueError(f"--grid {key}: no values given")
    return grid


def _print_record(record: RunRecord) -> None:
    print(record.result.render())
    print(f"(wall time {record.wall_s:.1f} s)")
    print()


def _run_batch(requests, jobs: int, out: Optional[str]) -> None:
    if jobs < 0:
        raise ParameterValueError("--jobs must be >= 0 (0 = all available cores)")
    with SweepRunner(jobs=default_jobs() if jobs == 0 else jobs) as runner:
        records = runner.run(requests, on_record=_print_record)
    if out is not None:
        from repro.experiments.export import export_records

        export_records(records, out)
        print(f"exported {len(records)} run(s) to {out}", file=sys.stderr)


def cmd_list() -> int:
    for spec in SPECS:
        aliases = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"{spec.id}: {spec.description}{aliases}")
        for param in spec.params:
            help_text = f"  — {param.help}" if param.help else ""
            print(f"    {param.name} ({param.kind}, default {param.default!r}){help_text}")
        for name, values in spec.sweep_defaults:
            rendered = ",".join(str(v) for v in values)
            print(f"    [sweep default axis] {name}={rendered}")
    return 0


def cmd_run(args) -> int:
    overrides = _collect_overrides(args)
    ids = list(args.experiments)
    if "all" in ids:
        ids = spec_ids(include_aliases=False)
        requests, warnings = catalogue_requests(ids, overrides, strict=False)
        for warning in warnings:
            print(warning, file=sys.stderr)
    else:
        requests = [
            request_for(get_spec(experiment_id).id, overrides) for experiment_id in ids
        ]
        # Collapse figure aliases so e.g. 'fig6 fig7' runs the shared
        # harness once; dedup keeps first occurrence order.
        seen = set()
        requests = [
            r for r in requests if not (r.run_id in seen or seen.add(r.run_id))
        ]
    _run_batch(requests, args.jobs, args.out)
    return 0


def cmd_sweep(args) -> int:
    spec = get_spec(args.experiment)
    grid = _parse_grid(args.grid_axes, spec)
    # Axes the scenario sweeps by default unless the CLI pinned them
    # (e.g. meshgen expands over every topology kind).
    for name, values in spec.sweep_defaults:
        if name not in grid:
            grid[name] = list(values)
    requests = grid_requests(
        spec.id, grid, base_seed=args.base_seed, replicates=args.replicates
    )
    print(
        f"sweep {spec.id}: {len(requests)} run(s) "
        f"({len(grid)} axis/axes, {args.replicates} replicate(s))",
        file=sys.stderr,
    )
    _run_batch(requests, args.jobs, args.out)
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy spelling: `python -m repro.experiments fig1 ...` == `run fig1 ...`.
    if argv and argv[0] not in SUBCOMMANDS and not argv[0].startswith("-"):
        argv.insert(0, "run")
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return cmd_list()
        if args.command == "run":
            return cmd_run(args)
        return cmd_sweep(args)
    except (UnknownParameterError, ParameterValueError, UnknownExperimentError) as error:
        # Only CLI-input errors are caught; errors raised inside an
        # experiment harness (including KeyErrors) propagate as-is.
        message = error.args[0] if error.args else error
        print(message, file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
