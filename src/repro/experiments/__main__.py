"""CLI: regenerate any paper table or figure.

Examples::

    python -m repro.experiments fig1
    python -m repro.experiments table2 --duration 1800
    python -m repro.experiments scenario1 --time-scale 1.0
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import experiment_ids, get_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the EZ-flow paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id or 'all'; known: {', '.join(experiment_ids())}",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    parser.add_argument(
        "--duration", type=float, default=None, help="run duration in seconds"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="schedule compression for scenario experiments (1.0 = paper)",
    )
    args = parser.parse_args(argv)

    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    # Collapse figure aliases so 'all' does not rerun shared harnesses.
    seen = set()
    for experiment_id in ids:
        runner = get_experiment(experiment_id)
        if runner in seen:
            continue
        seen.add(runner)
        kwargs = {}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.duration is not None:
            kwargs["duration_s"] = args.duration
        if args.time_scale is not None:
            kwargs["time_scale"] = args.time_scale
        started = time.time()
        try:
            result = runner(**kwargs)
        except TypeError as error:
            print(f"{experiment_id}: {error}", file=sys.stderr)
            return 2
        print(result.render())
        print(f"(wall time {time.time() - started:.1f} s)")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
