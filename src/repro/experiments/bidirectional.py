"""Bidirectional (TCP-like) traffic over the chain, ± EZ-flow.

Section 2.3 claims EZ-flow, acting at the MAC layer, handles
bidirectional traffic the same way it handles one-way UDP. This harness
runs a sliding-window reliable transport (data forward, cumulative ACKs
backward over the same nodes) across the 4-hop chain for a sweep of
window sizes, with and without EZ-flow.

Expected shape: small windows are self-clocking (no difference); for
windows large enough to congest the relays, EZ-flow trims path delay
and retransmissions without costing goodput — and the unrestricted UDP
row (from the load sweep) shows the full EZ-flow gain for traffic that
has no end-to-end feedback at all, which is the paper's main argument
for acting below the transport layer.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import attach_ezflow
from repro.experiments.common import ExperimentResult
from repro.net.flow import Flow
from repro.sim.units import seconds
from repro.topology.linear import linear_chain
from repro.transport import TransportConfig, WindowedSender, install_reverse_routes

DEFAULT_WINDOWS = (4, 16, 64)


def run(
    duration_s: float = 200.0,
    seed: int = 3,
    warmup_s: float = 60.0,
    hops: int = 4,
    windows: Iterable[int] = DEFAULT_WINDOWS,
) -> ExperimentResult:
    """Window sweep of the reliable transport on the K-hop chain."""
    result = ExperimentResult(
        "bidirectional",
        f"window transport over the {hops}-hop chain (TCP-like workload)",
        parameters={"duration_s": duration_s, "seed": seed, "hops": hops},
    )
    table = result.table(
        "Bidirectional transport",
        [
            "window",
            "ezflow",
            "goodput_kbps",
            "path_delay_s",
            "retransmissions",
            "acks",
        ],
    )
    start, end = seconds(warmup_s), seconds(duration_s)
    for window in windows:
        for ezflow in (False, True):
            network = linear_chain(
                hops=hops, seed=seed, saturated=False, rate_bps=1000
            )
            network.sources.clear()
            install_reverse_routes(network.routing, list(range(hops + 1)))
            flow = Flow("T1", src=0, dst=hops)
            network.flows["T1"] = flow
            network.nodes[hops].register_flow(flow)
            sender = WindowedSender(
                network.engine,
                network.nodes[0],
                network.nodes[hops],
                flow,
                TransportConfig(window=window),
            )
            if ezflow:
                attach_ezflow(network.nodes)
            sender.start()
            network.engine.run(until=seconds(duration_s))
            result.note_runtime(network.engine)
            table.add(
                window,
                "on" if ezflow else "off",
                flow.throughput_bps(start, end) / 1000.0,
                flow.mean_path_delay_s(start, end),
                sender.retransmissions,
                sender.acks_received,
            )
    result.notes.append(
        "paper claim (Section 2.3): a MAC-layer mechanism serves "
        "bidirectional and feedback-free traffic alike; window-limited "
        "transports self-clock, so gains concentrate at large windows "
        "and are largest for unrestricted UDP (see loadsweep)"
    )
    return result
