"""Shared experiment infrastructure.

Every experiment module exposes ``run(...) -> ExperimentResult``. The
result bundles named tables (rows of labelled values) and named series
(time series for the paper's figures) plus the paper's reference
numbers, so EXPERIMENTS.md can be generated mechanically and benches
can assert on shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple  # noqa: F401


@dataclass
class Table:
    """A named table: column headers plus labelled rows."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add(self, *values: object) -> None:
        """Append one row (width-checked against the columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != column count {len(self.columns)}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Format the table as aligned monospace text."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        widths = [len(c) for c in self.columns]
        body = [[fmt(v) for v in row] for row in self.rows]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        lines.append("  " + " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  " + "-+-".join("-" * w for w in widths))
        for row in body:
            lines.append("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_json_dict(self) -> Dict[str, object]:
        """The table's JSON body: title, columns, rows.

        This is the single serialised form of a table — the export
        layer embeds it in ``result.json`` (via
        :meth:`ExperimentResult.to_dict`) and the sweep service returns
        it in HTTP responses, so the two can never drift. Schema
        versioning happens at the enclosing envelope (``result.json``'s
        layout, the service's ``repro.results/...`` documents), not per
        table, which keeps today's export bytes unchanged.
        """
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
        }


@dataclass
class ExperimentResult:
    """Everything one experiment produces."""

    experiment: str
    description: str
    parameters: Dict[str, object] = field(default_factory=dict)
    tables: List[Table] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Execution statistics (engine event counts, simulated seconds...)
    #: for benchmarking and sweep-manifest timing. Deliberately EXCLUDED
    #: from :meth:`to_dict`, so exported artefacts stay byte-identical
    #: across machines, worker counts and code-speed changes.
    runtime: Dict[str, float] = field(default_factory=dict)

    def note_runtime(self, engine, extra: Optional[Dict[str, float]] = None) -> None:
        """Accumulate engine statistics into :attr:`runtime`.

        Harnesses that run several engines (schedules, sweeps over
        internal networks) call this once per engine; event counts add
        up. ``extra`` merges additional keyed numbers verbatim.
        """
        self.runtime["events"] = self.runtime.get("events", 0.0) + float(
            engine.processed_events
        )
        self.runtime["sim_ticks"] = self.runtime.get("sim_ticks", 0.0) + float(
            engine.now
        )
        if extra:
            self.runtime.update(extra)

    def table(self, title: str, columns: Sequence[str]) -> Table:
        """Create, register and return a new table."""
        table = Table(title, list(columns))
        self.tables.append(table)
        return table

    def find_table(self, title_fragment: str) -> Table:
        """First table whose title contains the fragment (KeyError if none)."""
        for table in self.tables:
            if title_fragment in table.title:
                return table
        raise KeyError(f"no table matching {title_fragment!r}")

    def scalars(self) -> Dict[str, object]:
        """Flatten every single-row table into named scalar metrics.

        A table with exactly one row is a scalar summary (meshgen's
        ``Summary``, the ``Topology`` shape table, ...): each column
        becomes one named value. Column names unique across the
        single-row tables map bare; a name used by several tables is
        prefixed with its table title (lowercased, spaces to ``_``) so
        nothing is silently shadowed. Purely derived — never serialized
        by :meth:`to_dict` — so exposing scalars cannot change exported
        bytes.
        """
        single = [t for t in self.tables if len(t.rows) == 1]
        counts: Dict[str, int] = {}
        for table in single:
            for column in table.columns:
                counts[column] = counts.get(column, 0) + 1
        scalars: Dict[str, object] = {}
        for table in single:
            prefix = table.title.strip().lower().replace(" ", "_")
            for column, value in zip(table.columns, table.rows[0]):
                name = column if counts[column] == 1 else f"{prefix}.{column}"
                scalars[name] = value
        return scalars

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-safe given JSON-safe cell values).

        Deterministic: key order is fixed by construction order and the
        export layer dumps with sorted keys, so identical results always
        serialize to identical bytes (the sweep-runner guarantee).
        """
        return {
            "experiment": self.experiment,
            "description": self.description,
            "parameters": dict(self.parameters),
            "tables": [t.to_json_dict() for t in self.tables],
            "series": {name: [list(p) for p in points] for name, points in self.series.items()},
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (series points become tuples).

        Sequence-valued parameters come back as tuples: the declared
        sequence parameter kinds (``ints``/``floats``) always coerce to
        tuples in memory, JSON just cannot spell them — restoring the
        tuple makes a loaded result render (and re-export) exactly like
        the in-memory original.
        """
        result = cls(
            experiment=data["experiment"],
            description=data["description"],
            parameters={
                key: tuple(value) if isinstance(value, list) else value
                for key, value in dict(data.get("parameters", {})).items()
            },
            notes=list(data.get("notes", [])),
        )
        for t in data.get("tables", []):
            table = result.table(t["title"], t["columns"])
            for row in t["rows"]:
                table.add(*row)
        for name, points in data.get("series", {}).items():
            result.series[name] = [tuple(p) for p in points]
        return result

    def render(self) -> str:
        """Human-readable rendering of all tables, series and notes."""
        lines = [f"=== {self.experiment}: {self.description} ==="]
        if self.parameters:
            params = ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items()))
            lines.append(f"parameters: {params}")
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        for name, points in self.series.items():
            lines.append("")
            lines.append(f"series {name}: {len(points)} points " + sparkline(points))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def sparkline(points: Sequence[Tuple[float, float]], width: int = 60) -> str:
    """Compact unicode rendering of a series for terminal output."""
    if not points:
        return "(empty)"
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return f"(constant {lo:.2f})"
    blocks = "▁▂▃▄▅▆▇█"
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    chars = [blocks[int((v - lo) / (hi - lo) * (len(blocks) - 1))] for v in sampled]
    return f"[{lo:.2f}..{hi:.2f}] " + "".join(chars)


def throughput_gain(before: float, after: float) -> float:
    """Relative gain in percent (0.0 when before is 0)."""
    if before <= 0:
        return 0.0
    return (after - before) / before * 100.0
