"""Export experiment results to files (CSV series + markdown tables).

A reproduction is most useful when its figure data can be replotted:
``export_result`` writes every series of an
:class:`~repro.experiments.common.ExperimentResult` as a two-column CSV
and every table as GitHub-flavoured markdown, under a directory named
after the experiment.

CLI::

    python -m repro.experiments.export fig1 --out results/
"""

from __future__ import annotations

import argparse
import csv
import os
import time
from typing import Optional

from repro.experiments import get_experiment
from repro.experiments.common import ExperimentResult, Table


def table_to_markdown(table: Table) -> str:
    """Render a result table as GitHub-flavoured markdown."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def export_result(result: ExperimentResult, out_dir: str) -> str:
    """Write all series (CSV) and tables (markdown) of one result.

    Returns the directory the files were written into.
    """
    target = os.path.join(out_dir, result.experiment)
    os.makedirs(target, exist_ok=True)

    for name, points in result.series.items():
        safe = name.replace("/", "_")
        with open(os.path.join(target, f"{safe}.csv"), "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["x", "y"])
            writer.writerows(points)

    sections = [f"# {result.experiment}: {result.description}", ""]
    if result.parameters:
        params = ", ".join(f"{k}={v}" for k, v in sorted(result.parameters.items()))
        sections.append(f"Parameters: {params}")
        sections.append("")
    for table in result.tables:
        sections.append(table_to_markdown(table))
        sections.append("")
    for note in result.notes:
        sections.append(f"> {note}")
    with open(os.path.join(target, "tables.md"), "w") as handle:
        handle.write("\n".join(sections) + "\n")
    return target


def main(argv=None) -> int:
    """CLI entry point: run one experiment and export its artefacts."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.export",
        description="Run an experiment and export its series/tables to files.",
    )
    parser.add_argument("experiment", help="experiment id (see repro.experiments)")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--time-scale", type=float, default=None)
    args = parser.parse_args(argv)

    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    if args.time_scale is not None:
        kwargs["time_scale"] = args.time_scale
    started = time.time()
    result = get_experiment(args.experiment)(**kwargs)
    target = export_result(result, args.out)
    print(f"wrote {target} ({len(result.series)} series, "
          f"{len(result.tables)} tables, {time.time() - started:.1f} s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
