"""Export experiment results to files (CSV series + markdown tables).

A reproduction is most useful when its figure data can be replotted:
``export_result`` writes every series of an
:class:`~repro.experiments.common.ExperimentResult` as a two-column CSV
and every table as GitHub-flavoured markdown, under a directory named
after the experiment.

To run an experiment *and* export it, use the package CLI::

    python -m repro.experiments run fig1 --out results/
"""

from __future__ import annotations

import csv
import json
import os
from typing import Iterable, List, Optional

from repro.experiments.common import ExperimentResult, Table, sparkline


def table_to_markdown(table: Table) -> str:
    """Render a result table as GitHub-flavoured markdown."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def export_json(result: ExperimentResult, path: str) -> None:
    """Write one result as deterministic JSON (sorted keys, no timing).

    Serialises through :func:`repro.results.canonical_result_dict` —
    the same document the sweep service returns over HTTP — so exported
    bytes and served bytes come from one code path. (The JSON round
    trip inside ``canonical_result_dict`` is byte-neutral here: sorted
    keys make ordering moot and tuples render as lists either way.)
    """
    from repro.results.types import canonical_result_dict

    with open(path, "w") as handle:
        json.dump(canonical_result_dict(result), handle, sort_keys=True, indent=2)
        handle.write("\n")


def export_result(
    result: ExperimentResult, out_dir: str, dir_name: Optional[str] = None
) -> str:
    """Write series (CSV), tables (markdown) and JSON of one result.

    Files land under ``out_dir/dir_name`` (default: the experiment id;
    sweeps pass the run id so grid points do not overwrite each other).
    Returns the directory the files were written into. Nothing written
    here may depend on wall-clock time: parallel and serial sweeps must
    export byte-identical artefacts.
    """
    target = os.path.join(out_dir, dir_name or result.experiment)
    os.makedirs(target, exist_ok=True)
    export_json(result, os.path.join(target, "result.json"))

    for name, points in result.series.items():
        safe = name.replace("/", "_")
        with open(os.path.join(target, f"{safe}.csv"), "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["x", "y"])
            writer.writerows(points)

    sections = [f"# {result.experiment}: {result.description}", ""]
    if result.parameters:
        params = ", ".join(f"{k}={v}" for k, v in sorted(result.parameters.items()))
        sections.append(f"Parameters: {params}")
        sections.append("")
    for table in result.tables:
        sections.append(table_to_markdown(table))
        sections.append("")
    for note in result.notes:
        sections.append(f"> {note}")
    with open(os.path.join(target, "tables.md"), "w") as handle:
        handle.write("\n".join(sections) + "\n")
    return target


def result_to_markdown(result: ExperimentResult, heading: str) -> str:
    """Markdown section for one result: parameters, tables, series, notes."""
    lines = [f"## {heading}", "", result.description, ""]
    if result.parameters:
        params = ", ".join(f"`{k}={v}`" for k, v in sorted(result.parameters.items()))
        lines.append(f"Parameters: {params}")
        lines.append("")
    for table in result.tables:
        lines.append(table_to_markdown(table))
        lines.append("")
    for name, points in result.series.items():
        lines.append(f"- series `{name}`: {len(points)} points {sparkline(points)}")
    if result.series:
        lines.append("")
    for note in result.notes:
        lines.append(f"> {note}")
    if result.notes:
        lines.append("")
    return "\n".join(lines)


def export_records(records: Iterable, out_dir: str) -> List[str]:
    """Export a batch of sweep records: per-run artefacts + manifest + index.

    ``records`` are :class:`~repro.experiments.runner.RunRecord`s (typed
    loosely to keep this module import-light). Writes, deterministically:

    * ``<out>/<run_id>/`` — ``result.json``, ``tables.md``, series CSVs,
    * ``<out>/manifest.json`` — run ids, spec ids and parameters, plus a
      ``timing`` section (per-run wall seconds, engine event counts and
      events/s, and batch totals),
    * ``<out>/EXPERIMENTS.md`` — every result rendered to markdown.

    The per-run artefacts and the index never contain timestamps or wall
    times — they are byte-identical whatever the worker count or machine
    speed. Timing lives *only* in the manifest's ``timing`` key, so
    comparing two sweeps for determinism means comparing everything else
    byte-for-byte and the manifest with ``timing`` removed (see
    ``tests/test_runner.py`` and the CI meshgen smoke job).
    """
    # Failure records (fault-tolerant sweeps) have no result payload to
    # export and never enter the manifest; export_failures writes them.
    records = [r for r in records if getattr(r, "failure", None) is None]
    targets = []
    timing = {"runs": {}}
    total_wall = 0.0
    total_events = 0.0
    manifest = {
        "experiments": sorted({r.request.spec_id for r in records}),
        "runs": [],
        "timing": timing,
    }
    sections = [
        "# Experiment results",
        "",
        "Generated by `python -m repro.experiments` (see `--out`). "
        "Each section mirrors one run directory; series CSVs and "
        "`result.json` live next to the `tables.md` referenced here.",
        "",
    ]
    for record in records:
        targets.append(export_result(record.result, out_dir, record.request.run_id))
        manifest["runs"].append(
            {
                "run_id": record.request.run_id,
                "experiment": record.request.spec_id,
                "kwargs": record.request.kwargs_dict,
                "parameters": dict(record.result.parameters),
            }
        )
        events = record.result.runtime.get("events")
        wall_s = round(record.wall_s, 6)
        timing["runs"][record.request.run_id] = {
            "wall_s": wall_s,
            "events": None if events is None else int(events),
            "events_per_s": (
                None
                if not events or record.wall_s <= 0
                else round(events / record.wall_s, 1)
            ),
        }
        total_wall += record.wall_s
        total_events += events or 0.0
        sections.append(result_to_markdown(record.result, record.request.run_id))
    timing["total_wall_s"] = round(total_wall, 6)
    timing["total_events"] = int(total_events)
    with open(os.path.join(out_dir, "manifest.json"), "w") as handle:
        json.dump(manifest, handle, sort_keys=True, indent=2)
        handle.write("\n")
    with open(os.path.join(out_dir, "EXPERIMENTS.md"), "w") as handle:
        handle.write("\n".join(sections).rstrip() + "\n")
    return targets


def export_failures(failures: Iterable, out_dir: str) -> Optional[str]:
    """Write a batch's failure records as ``<out>/failures.json``.

    ``failures`` are :class:`~repro.experiments.runner.RunFailure`\\ s
    (typed loosely, like :func:`export_records`). The file is
    deterministic — records sorted by run id, wall seconds omitted (see
    ``RunFailure.to_dict``) — so it is byte-identical at any ``--jobs``
    count. With no failures, a stale ``failures.json`` from an earlier
    partial sweep is *removed*: a resumed-then-completed export tree is
    byte-identical to an uninterrupted one. Returns the file path, or
    None when nothing was written.
    """
    path = os.path.join(out_dir, "failures.json")
    failures = sorted(failures, key=lambda f: f.run_id)
    if not failures:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        return None
    os.makedirs(out_dir, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(
            {"failures": [failure.to_dict() for failure in failures]},
            handle,
            sort_keys=True,
            indent=2,
        )
        handle.write("\n")
    return path


if __name__ == "__main__":
    # The standalone CLI that used to live here (run one experiment and
    # export it) was a deprecated shim for one release and is gone.
    print(
        "the repro.experiments.export CLI has been removed; use\n"
        "  python -m repro.experiments run <id> --out DIR"
    )
    raise SystemExit(2)
