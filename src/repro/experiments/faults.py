"""Deterministic chaos harness for sweep execution.

A :class:`FaultPlan` makes chosen runs of a sweep misbehave on purpose —
raise, sleep past the run timeout, or hard-crash the worker process —
so every failure mode the fault-tolerant runner handles is reproducible
in tests and CI. Plans are pure data: which runs fire is a deterministic
function of the plan spec and each run's identity, never of wall-clock
time or worker scheduling, so a chaos sweep is as replayable as a clean
one.

Plan grammar (CLI ``--fault-plan`` or the :data:`FAULT_PLAN_ENV` env
var)::

    PLAN     := CLAUSE ( '+' CLAUSE )*
    CLAUSE   := SELECTOR '=' ACTION
    SELECTOR := '*'                  every run
              | <int>                the N-th request of the batch (0-based,
                                     cache hits included)
              | sample:P:SEED        each run fires with probability P,
                                     hashed from (SEED, run id) — seeded,
                                     so the same runs fire every time
              | <text>               any run whose run id contains <text>
    ACTION   := raise                raise InjectedFault inside the run
              | hang[:SECONDS]       sleep before running (default 3600 s)
              | crash[:CODE]         os._exit(CODE) the worker (default 1)
    ACTION   may carry a '/N' suffix: fire on the first N attempts only,
    so a retried run succeeds afterwards (e.g. ``3=hang:30/1``).

The first matching clause wins. Example: ``2=raise+5=crash+8=hang:60``
injects one raising run, one worker crash and one hang into a batch.

This generalises the single-purpose ``REPRO_SWEEP_FAULT_AFTER`` kill
hook (still supported — see :data:`repro.experiments.runner.FAULT_ENV`),
which kills the *whole sweep* after N runs; a fault plan instead breaks
*individual runs* so the per-run error policy can be exercised.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.specs import ParameterValueError

#: Environment variable carrying a fault-plan spec; the CLI's
#: ``--fault-plan`` takes precedence when both are given.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Default sleep for a bare ``hang`` action: effectively forever, so an
#: unparameterised hang always trips any sane ``--run-timeout``.
DEFAULT_HANG_S = 3600.0

#: Default exit code for a bare ``crash`` action.
DEFAULT_CRASH_CODE = 1


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault action injects into a run."""


@dataclass(frozen=True)
class FaultAction:
    """What a matched run does: ``raise``, ``hang`` or ``crash``.

    ``param`` is the hang duration (seconds) or the crash exit code;
    ``times`` caps the action to the first N attempts (None = every
    attempt), which lets retry tests inject a fault that goes away.
    """

    kind: str
    param: float = 0.0
    times: Optional[int] = None

    @classmethod
    def parse(cls, text: str) -> "FaultAction":
        body, slash, times_text = text.partition("/")
        times: Optional[int] = None
        if slash:
            try:
                times = int(times_text)
            except ValueError:
                times = 0
            if times < 1:
                raise ParameterValueError(
                    f"fault action {text!r}: '/N' needs a positive attempt count"
                )
        kind, colon, param_text = body.partition(":")
        kind = kind.strip()
        if kind == "raise":
            if colon:
                raise ParameterValueError(
                    f"fault action {text!r}: 'raise' takes no parameter"
                )
            return cls("raise", 0.0, times)
        if kind == "hang":
            try:
                param = float(param_text) if colon else DEFAULT_HANG_S
            except ValueError:
                raise ParameterValueError(
                    f"fault action {text!r}: hang seconds must be a number"
                ) from None
            if param < 0:
                raise ParameterValueError(
                    f"fault action {text!r}: hang seconds must be >= 0"
                )
            return cls("hang", param, times)
        if kind == "crash":
            try:
                param = int(param_text) if colon else DEFAULT_CRASH_CODE
            except ValueError:
                raise ParameterValueError(
                    f"fault action {text!r}: crash exit code must be an integer"
                ) from None
            return cls("crash", float(param), times)
        raise ParameterValueError(
            f"fault action {text!r}: expected raise, hang[:SECONDS] or "
            f"crash[:CODE]"
        )

    def trigger(self, run_id: str, attempt: int) -> None:
        """Fire the fault (or not, if this attempt is past ``times``).

        Called inside the run attempt — in the worker process for pooled
        execution — so ``crash`` takes the worker down exactly the way a
        segfault or OOM kill would.
        """
        if self.times is not None and attempt > self.times:
            return
        if self.kind == "raise":
            # No attempt number in the message: the recorded failure must
            # be byte-identical at any --jobs count and retry budget.
            raise InjectedFault(f"injected fault: run {run_id!r} raised")
        if self.kind == "hang":
            time.sleep(self.param)
        elif self.kind == "crash":
            os._exit(int(self.param))


@dataclass(frozen=True)
class FaultClause:
    """One ``SELECTOR=ACTION`` pair of a plan."""

    selector: str
    action: FaultAction

    def matches(self, run_id: str, index: int) -> bool:
        """Whether this clause selects the run at batch position ``index``."""
        if self.selector == "*":
            return True
        if self.selector.isdigit():
            return index == int(self.selector)
        if self.selector.startswith("sample:"):
            _, p_text, seed = self.selector.split(":", 2)
            return random.Random(f"{seed}:{run_id}").random() < float(p_text)
        return self.selector in run_id


@dataclass(frozen=True)
class FaultPlan:
    """A parsed chaos plan: ordered clauses, first match wins."""

    clauses: Tuple[FaultClause, ...]
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        text = (spec or "").strip()
        if not text:
            raise ParameterValueError("fault plan: empty spec")
        clauses = []
        for chunk in text.split("+"):
            chunk = chunk.strip()
            selector, sep, action_text = chunk.rpartition("=")
            if not sep or not selector.strip() or not action_text.strip():
                raise ParameterValueError(
                    f"fault clause {chunk!r}: expected SELECTOR=ACTION"
                )
            selector = selector.strip()
            if selector.startswith("sample:"):
                parts = selector.split(":")
                try:
                    ok = len(parts) == 3 and 0.0 <= float(parts[1]) <= 1.0
                except ValueError:
                    ok = False
                if not ok:
                    raise ParameterValueError(
                        f"fault selector {selector!r}: expected sample:P:SEED "
                        f"with P in [0, 1]"
                    )
            clauses.append(
                FaultClause(selector, FaultAction.parse(action_text.strip()))
            )
        return cls(tuple(clauses), text)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan from :data:`FAULT_PLAN_ENV`, or None when unset."""
        spec = os.environ.get(FAULT_PLAN_ENV, "").strip()
        return cls.parse(spec) if spec else None

    def action_for(self, run_id: str, index: int) -> Optional[FaultAction]:
        """The action for one run (first matching clause), or None."""
        for clause in self.clauses:
            if clause.matches(run_id, index):
                return clause.action
        return None

    @property
    def needs_worker(self) -> bool:
        """Whether the plan can kill a process (forces pooled execution)."""
        return any(clause.action.kind == "crash" for clause in self.clauses)
