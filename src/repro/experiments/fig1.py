"""Figure 1: buffer evolution of relay nodes, 3-hop vs 4-hop chains.

The paper's opening experiment: under standard IEEE 802.11 with a
greedy source, a 3-hop chain keeps relay buffers in check while a
4-hop chain's first relay builds up until saturation, with roughly
half the end-to-end throughput. We run both chains in the 1-hop
sensing regime (the testbed regime, see DESIGN.md) and report buffer
traces, mean occupancies and throughputs.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.metrics.sampling import BufferSampler
from repro.sim.units import seconds
from repro.topology.linear import linear_chain

#: Sensing radius giving the 1-hop sensing regime at 200 m spacing.
TESTBED_SENSE_M = 350.0

PAPER_NOTE = (
    "paper: 3-hop stable (low relay buffers), 4-hop first relay saturates; "
    "4-hop end-to-end throughput almost twice smaller than 3-hop"
)


def run(
    duration_s: float = 300.0,
    seed: int = 1,
    warmup_s: float = 30.0,
    sample_interval_s: float = 1.0,
) -> ExperimentResult:
    """Reproduce Figure 1 (scaled duration; paper runs ~1800 s)."""
    result = ExperimentResult(
        "fig1",
        "buffer evolution in 3- and 4-hop chains under standard 802.11",
        parameters={"duration_s": duration_s, "seed": seed},
    )
    summary = result.table(
        "Figure 1 summary",
        ["hops", "throughput_kbps", "relay", "mean_buffer", "final_buffer", "share_time_saturated"],
    )
    throughputs = {}
    for hops in (3, 4):
        network = linear_chain(hops=hops, seed=seed, sense_range_m=TESTBED_SENSE_M)
        relays = list(range(1, hops))
        sampler = BufferSampler(
            network.engine, network.trace, network.nodes, relays, sample_interval_s
        )
        sampler.start()
        network.run(until_us=seconds(duration_s))
        result.note_runtime(network.engine)
        start, end = seconds(warmup_s), seconds(duration_s)
        throughput = network.flow("F1").throughput_bps(start, end) / 1000.0
        throughputs[hops] = throughput
        for relay in relays:
            series = sampler.series_for(relay)
            window = series.window(start, end)
            saturated = sum(1 for v in window.values if v >= 45) / max(1, len(window))
            summary.add(
                hops,
                throughput,
                f"node{relay}",
                window.mean(),
                window.values[-1] if len(window) else 0.0,
                saturated,
            )
            result.series[f"{hops}hop.node{relay}.buffer"] = [
                (t / 1e6, v) for t, v in series
            ]
    ratio = throughputs[3] / throughputs[4] if throughputs[4] else float("inf")
    result.notes.append(PAPER_NOTE)
    result.notes.append(f"measured 3-hop/4-hop throughput ratio: {ratio:.2f}x")
    return result
