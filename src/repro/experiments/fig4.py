"""Figure 4: testbed buffer evolution of F1 and F2 relays, ± EZ-flow.

Two single-flow runs on the 9-node testbed (F1 alone: 7 hops over the
lossy chain with the l2 bottleneck; F2 alone: the 4-hop tail flow) with
standard 802.11 and with EZ-flow. The paper's caption numbers: without
EZ-flow the mean buffers are 41.6 (N1), 43.1 (N2) and 43.7 (N4); with
EZ-flow 29.5 (N1, blocked by the 2^10 hardware cw cap), 5.2 (N2) and
5.3 (N4), everything else negligible.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.testbedlab import testbed_simulation
from repro.sim.units import seconds

#: Paper caption reference, (flow, node) -> mean buffer.
PAPER_MEANS = {
    ("F1", "N1", False): 41.6,
    ("F1", "N2", False): 43.1,
    ("F2", "N4", False): 43.7,
    ("F1", "N1", True): 29.5,
    ("F1", "N2", True): 5.2,
    ("F2", "N4", True): 5.3,
}

WATCHED = {"F1": ("N1", "N2", "N3"), "F2": ("N4", "N5", "N6")}


def run(
    duration_s: float = 400.0,
    seed: int = 4,
    warmup_s: float = 60.0,
    sample_interval_s: float = 1.0,
) -> ExperimentResult:
    """Reproduce Figure 4 (scaled duration; paper runs 2000 s)."""
    result = ExperimentResult(
        "fig4",
        "testbed relay buffer evolution with and without EZ-flow",
        parameters={"duration_s": duration_s, "seed": seed},
    )
    table = result.table(
        "Figure 4: mean relay buffer occupancy",
        ["flow", "ezflow", "node", "paper_mean", "measured_mean", "final"],
    )
    for flow_id in ("F1", "F2"):
        for ezflow in (False, True):
            # The simulation is shared with Table 2 (same seed/duration):
            # testbedlab memoises it, so `all` runs it once.
            run_handle = testbed_simulation(
                seed, (flow_id,), duration_s, ezflow, sample_interval_s
            )
            result.note_runtime(run_handle.network.engine)
            sampler = run_handle.sampler
            start, end = seconds(warmup_s), seconds(duration_s)
            for node in WATCHED[flow_id]:
                series = sampler.series_for(node)
                window = series.window(start, end)
                paper = PAPER_MEANS.get((flow_id, node, ezflow), 0.0)
                table.add(
                    flow_id,
                    "on" if ezflow else "off",
                    node,
                    paper,
                    window.mean(),
                    window.values[-1] if len(window) else 0.0,
                )
                label = f"{flow_id}.{'ez' if ezflow else 'std'}.{node}.buffer"
                result.series[label] = [(t / 1e6, v) for t, v in series]
    result.notes.append(
        "shape check: saturated pre-bottleneck relays without EZ-flow; "
        "all buffers small with EZ-flow (N1 partially limited by hw cw cap)"
    )
    return result
