"""Scenario intermediate representation for the generated-topology family.

*What* a scenario is — topology recipe, sampled flows, workload,
algorithm, dynamics schedule — is a pure description; *how* it executes
(event core vs slot-synchronous fast tier) is an engine-tier concern
(:mod:`repro.sim.tiers`). This module is the boundary object between
the two: :func:`build_ir` validates raw harness keywords exactly the
way the historical ``meshgen.run`` signature did (same checks, same
order, same exception types) and freezes them into a
:class:`MeshScenarioIR`; tiers consume the IR without re-parsing
anything.

Shared scenario semantics that must not drift between tiers also live
here: flow-source sampling (:func:`sample_flow_sources`, a pure
function of the master seed through the registry's named streams) and
the exported-parameter envelope (:func:`base_parameters`, which keeps
the byte-identity rule: dynamic axes — and the ``fidelity`` axis —
appear only when set off their defaults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.phy.linkstate import LossSpec, parse_loss_spec
from repro.topology.churn import ChurnSchedule, parse_churn_spec
from repro.topology.meshgen import MeshSpec, MeshTopology

ALGORITHMS = ("none", "ezflow", "diffq", "penalty")

#: Static-penalty throttling factor (scenario 1's converged setting:
#: relays at 2^4, sources at 2^7).
PENALTY_Q = 0.125

#: The engine tier the family historically ran on — the default whose
#: exports must stay byte-identical.
DEFAULT_FIDELITY = "event"


@dataclass(frozen=True)
class MeshScenarioIR:
    """One validated generated-topology scenario, execution-agnostic.

    Raw axis values are kept verbatim (they are what gets exported);
    the parsed forms (``mesh_spec``, ``loss_spec``, ``churn_schedule``)
    ride along so tiers never re-parse. ``fidelity`` names the engine
    tier that will execute the scenario.
    """

    topology: str
    nodes: int
    density: float
    gateways: int
    flows: int
    workload: str
    algorithm: str
    rate_kbps: float
    duration_s: float
    warmup_s: float
    seed: int
    loss: str
    churn: str
    fidelity: str
    mesh_spec: MeshSpec
    loss_spec: Optional[LossSpec]
    churn_schedule: Optional[ChurnSchedule]

    def describe(self) -> str:
        """The harness description line (tier-independent)."""
        return (
            f"generated {self.topology} ({self.nodes} nodes) under "
            f"{self.workload} workload, algorithm {self.algorithm}"
        )


def build_ir(
    topology: str = "mesh",
    nodes: int = 16,
    density: float = 1.5,
    gateways: int = 2,
    flows: int = 4,
    workload: str = "cbr",
    algorithm: str = "none",
    rate_kbps: float = 400.0,
    duration_s: float = 30.0,
    warmup_s: float = 5.0,
    seed: int = 11,
    loss: str = "",
    churn: str = "",
    fidelity: str = DEFAULT_FIDELITY,
) -> MeshScenarioIR:
    """Validate one scenario's axes and freeze them into an IR.

    Checks run in the order the event harness historically applied
    them — algorithm, loss spec, churn spec, topology spec — so every
    existing error message and exception type is preserved.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {', '.join(ALGORITHMS)}"
        )
    loss_spec = parse_loss_spec(loss) if loss else None
    churn_schedule = parse_churn_spec(churn) if churn else None
    mesh_spec = MeshSpec(
        kind=topology, nodes=nodes, density=density, gateways=gateways, seed=seed
    )
    return MeshScenarioIR(
        topology=topology,
        nodes=nodes,
        density=density,
        gateways=gateways,
        flows=flows,
        workload=workload,
        algorithm=algorithm,
        rate_kbps=rate_kbps,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        loss=loss,
        churn=churn,
        fidelity=fidelity,
        mesh_spec=mesh_spec,
        loss_spec=loss_spec,
        churn_schedule=churn_schedule,
    )


def sample_flow_sources(topology: MeshTopology, count: int, rng) -> List[Hashable]:
    """Pick ``count`` distinct non-gateway source nodes, seeded.

    ``rng`` is any :class:`~repro.sim.rng.RngRegistry` carrying the
    scenario's master seed: the ``meshgen.flows`` stream is a pure
    function of (seed, name), so both tiers — and anything else holding
    a registry on the same seed — sample the same sources.
    """
    candidates = sorted(n for n in topology.positions if n not in topology.gateways)
    stream = rng.stream("meshgen.flows")
    if count >= len(candidates):
        return candidates
    return stream.sample(candidates, count)


def base_parameters(ir: MeshScenarioIR, flow_count: int) -> Dict[str, object]:
    """The exported ``parameters`` envelope shared by every tier.

    Dynamic axes only appear when set, and ``fidelity`` only when it is
    not the event default — so every pre-existing static event run
    keeps its byte-identical artefacts.
    """
    parameters: Dict[str, object] = {
        "topology": ir.topology,
        "nodes": ir.nodes,
        "density": ir.density,
        "gateways": ir.gateways,
        "flows": flow_count,
        "workload": ir.workload,
        "algorithm": ir.algorithm,
        "rate_kbps": ir.rate_kbps,
        "duration_s": ir.duration_s,
        "seed": ir.seed,
    }
    if ir.loss:
        parameters["loss"] = ir.loss
    if ir.churn:
        parameters["churn"] = ir.churn
    if ir.fidelity != DEFAULT_FIDELITY:
        parameters["fidelity"] = ir.fidelity
    return parameters
