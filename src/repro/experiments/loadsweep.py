"""Offered-load sweep: throughput and delay vs source rate, ± EZ-flow.

Not a numbered figure in the paper, but the natural extension of its
evaluation (and the standard way to present a flow-control mechanism):
sweep the CBR offered load on the 4-hop chain from well below to well
above capacity and record goodput, relay backlog and path delay. The
expected shape: below capacity the two MACs coincide; past the knee,
standard 802.11 collapses into the turbulent regime while EZ-flow holds
its peak goodput and keeps delay flat.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core import attach_ezflow
from repro.experiments.common import ExperimentResult
from repro.sim.units import seconds
from repro.topology.linear import linear_chain

DEFAULT_LOADS_KBPS = (50.0, 100.0, 150.0, 250.0, 500.0, 1000.0, 2000.0)


def run(
    duration_s: float = 200.0,
    seed: int = 3,
    warmup_s: float = 60.0,
    hops: int = 4,
    loads_kbps: Iterable[float] = DEFAULT_LOADS_KBPS,
) -> ExperimentResult:
    """Sweep offered load on the K-hop chain with and without EZ-flow."""
    result = ExperimentResult(
        "loadsweep",
        f"offered-load sweep on the {hops}-hop chain",
        parameters={"duration_s": duration_s, "seed": seed, "hops": hops},
    )
    table = result.table(
        "Load sweep",
        ["offered_kbps", "ezflow", "goodput_kbps", "path_delay_s", "relay1_buffer"],
    )
    start, end = seconds(warmup_s), seconds(duration_s)
    for load in loads_kbps:
        for ezflow in (False, True):
            network = linear_chain(
                hops=hops,
                seed=seed,
                saturated=False,
                rate_bps=load * 1000.0,
            )
            if ezflow:
                attach_ezflow(network.nodes)
            network.run(until_us=seconds(duration_s))
            result.note_runtime(network.engine)
            flow = network.flow("F1")
            table.add(
                load,
                "on" if ezflow else "off",
                flow.throughput_bps(start, end) / 1000.0,
                flow.mean_path_delay_s(start, end),
                network.nodes[1].total_buffer_occupancy(),
            )
            series_key = f"goodput.{'ez' if ezflow else 'std'}"
            result.series.setdefault(series_key, []).append(
                (load, flow.throughput_bps(start, end) / 1000.0)
            )
    result.notes.append(
        "expected shape: identical below the knee; past it EZ-flow holds "
        "peak goodput and flat delay while standard 802.11 collapses"
    )
    return result
