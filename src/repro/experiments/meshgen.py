"""Generated-topology sweep family: EZ-flow vs baselines at scale.

The paper evaluates on four hand-built layouts; this harness runs one
*generated* topology per invocation — random geometric mesh, grid, or
multi-gateway tree (:mod:`repro.topology.meshgen`) — under a chosen
workload mix (:mod:`repro.traffic.workloads`) and congestion-control
algorithm, and reports the metrics the paper cares about: per-flow and
aggregate goodput, Jain's fairness index, and queue backlog by hop
ring. Swept over nodes x topology x workload x algorithm x seed — plus
the dynamic ``loss`` (per-link Bernoulli / Gilbert-Elliott erasures)
and ``churn`` (node down/up, waypoint mobility) axes — by the sweep
runner, it turns the evaluation into a hundreds-of-scenarios
regression surface.

Algorithms: ``none`` (standard 802.11), ``ezflow`` (the paper),
``diffq`` (differential backlog with message passing), ``penalty``
(static source throttling, q = 1/8 as in scenario 1).

Execution is tiered: :func:`run` freezes its keywords into a scenario
IR (:mod:`repro.experiments.ir`) and dispatches on the ``fidelity``
axis through the engine-tier registry (:mod:`repro.sim.tiers`) —
``event`` is the per-frame core whose exports are the family's
byte-stable artefacts, ``slotted`` the slot-synchronous fast tier
(:mod:`repro.experiments.tiers`). Cross-tier agreement is measured,
not assumed: see :mod:`repro.results.validation`.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.ir import ALGORITHMS, PENALTY_Q, build_ir
from repro.sim.tiers import get_tier, register_tier_entry

__all__ = ["ALGORITHMS", "PENALTY_Q", "FIDELITIES", "run"]

#: The engine tiers this family runs on (the ``fidelity`` axis values).
FIDELITIES = ("event", "slotted")

# Lazy entry points: resolving happens on the first run() of each
# fidelity, so importing this module (e.g. to list the catalogue) never
# drags in either execution back end.
register_tier_entry("event", "repro.experiments.tiers:EVENT_TIER")
register_tier_entry("slotted", "repro.experiments.tiers:SLOTTED_TIER")


def run(
    topology: str = "mesh",
    nodes: int = 16,
    density: float = 1.5,
    gateways: int = 2,
    flows: int = 4,
    workload: str = "cbr",
    algorithm: str = "none",
    rate_kbps: float = 400.0,
    duration_s: float = 30.0,
    warmup_s: float = 5.0,
    seed: int = 11,
    loss: str = "",
    churn: str = "",
    fidelity: str = "event",
) -> ExperimentResult:
    """Run one generated topology under one workload and algorithm.

    ``loss`` and ``churn`` open the dynamic-link-state workload class:
    ``loss`` installs a seeded per-link loss model on every reception
    edge (``iid:P`` or ``ge:PGB:PBG[:PBAD[:PGOOD]]``, see
    :mod:`repro.phy.linkstate`); ``churn`` schedules node down/up and
    waypoint mobility events (``down:N@T+up:N@T+move:N@T:X:Y``, see
    :mod:`repro.topology.churn`), each of which invalidates the
    channel's delivery plans and re-runs BFS routing against the
    mutated map. Both default to off, in which case the run — and its
    exported bytes — is identical to the static harness. Hop counts and
    occupancy rings are reported against the *initial* layout.

    ``fidelity`` selects the engine tier: ``event`` (default — the
    per-frame core, byte-identical artefacts) or ``slotted`` (the
    slot-synchronous fast tier, same scenario and metrics surface at a
    fraction of the cost). Like the dynamic axes, a non-default
    ``fidelity`` is recorded in the exported parameters.
    """
    ir = build_ir(
        topology=topology,
        nodes=nodes,
        density=density,
        gateways=gateways,
        flows=flows,
        workload=workload,
        algorithm=algorithm,
        rate_kbps=rate_kbps,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        loss=loss,
        churn=churn,
        fidelity=fidelity,
    )
    return get_tier(ir.fidelity).run_scenario(ir)
