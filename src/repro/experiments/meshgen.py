"""Generated-topology sweep family: EZ-flow vs baselines at scale.

The paper evaluates on four hand-built layouts; this harness runs one
*generated* topology per invocation — random geometric mesh, grid, or
multi-gateway tree (:mod:`repro.topology.meshgen`) — under a chosen
workload mix (:mod:`repro.traffic.workloads`) and congestion-control
algorithm, and reports the metrics the paper cares about: per-flow and
aggregate goodput, Jain's fairness index, and queue backlog by hop
ring. Swept over nodes x topology x workload x algorithm x seed — plus
the dynamic ``loss`` (per-link Bernoulli / Gilbert-Elliott erasures)
and ``churn`` (node down/up, waypoint mobility) axes — by the sweep
runner, it turns the evaluation into a hundreds-of-scenarios
regression surface.

Algorithms: ``none`` (standard 802.11), ``ezflow`` (the paper),
``diffq`` (differential backlog with message passing), ``penalty``
(static source throttling, q = 1/8 as in scenario 1).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.baselines.diffq import attach_diffq
from repro.baselines.penalty import apply_penalty
from repro.core import attach_ezflow
from repro.experiments.common import ExperimentResult
from repro.metrics.fairness import jain_fairness_index
from repro.metrics.occupancy import group_mean_series, mean_occupancy_by_group
from repro.metrics.sampling import BufferSampler
from repro.net.node import FWD, OWN
from repro.phy.linkstate import apply_loss_models, parse_loss_spec
from repro.results.metrics import MESHGEN_SUMMARY_COLUMNS
from repro.sim.units import seconds
from repro.topology.churn import ChurnDriver, parse_churn_spec
from repro.topology.meshgen import MeshSpec, build_mesh_network, mean_degree
from repro.traffic.workloads import WorkloadSpec, attach_workload

ALGORITHMS = ("none", "ezflow", "diffq", "penalty")

#: Static-penalty throttling factor (scenario 1's converged setting:
#: relays at 2^4, sources at 2^7).
PENALTY_Q = 0.125


def _sample_flows(topology, count: int, network) -> List[Hashable]:
    """Pick ``count`` distinct non-gateway source nodes, seeded."""
    candidates = sorted(n for n in topology.positions if n not in topology.gateways)
    stream = network.rng.stream("meshgen.flows")
    if count >= len(candidates):
        return candidates
    return stream.sample(candidates, count)


def _materialise_queues(network, topo, attached) -> None:
    """Create every MAC queue/entity a flow's path will use, up front.

    Node stacks create transmit entities lazily on first packet, so a
    static strategy applied before traffic starts (penalty pins CWmin on
    existing entities) would otherwise see an empty MAC and silently do
    nothing. Windowed flows also need their reverse-path queues for the
    ACK stream.
    """
    for item in attached:
        flow = item.flow
        paths = [topo.route_to_gateway(flow.src, flow.dst)]
        if item.kind == "windowed":
            paths.append(list(reversed(paths[0])))
        for path in paths:
            network.nodes[path[0]].queue_for(OWN, path[1])
            for here, nxt in zip(path[1:], path[2:]):
                network.nodes[here].queue_for(FWD, nxt)


def run(
    topology: str = "mesh",
    nodes: int = 16,
    density: float = 1.5,
    gateways: int = 2,
    flows: int = 4,
    workload: str = "cbr",
    algorithm: str = "none",
    rate_kbps: float = 400.0,
    duration_s: float = 30.0,
    warmup_s: float = 5.0,
    seed: int = 11,
    loss: str = "",
    churn: str = "",
) -> ExperimentResult:
    """Run one generated topology under one workload and algorithm.

    ``loss`` and ``churn`` open the dynamic-link-state workload class:
    ``loss`` installs a seeded per-link loss model on every reception
    edge (``iid:P`` or ``ge:PGB:PBG[:PBAD[:PGOOD]]``, see
    :mod:`repro.phy.linkstate`); ``churn`` schedules node down/up and
    waypoint mobility events (``down:N@T+up:N@T+move:N@T:X:Y``, see
    :mod:`repro.topology.churn`), each of which invalidates the
    channel's delivery plans and re-runs BFS routing against the
    mutated map. Both default to off, in which case the run — and its
    exported bytes — is identical to the static harness. Hop counts and
    occupancy rings are reported against the *initial* layout.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {', '.join(ALGORITHMS)}"
        )
    loss_spec = parse_loss_spec(loss) if loss else None
    churn_schedule = parse_churn_spec(churn) if churn else None
    spec = MeshSpec(
        kind=topology, nodes=nodes, density=density, gateways=gateways, seed=seed
    )
    # This harness only reads the buffer sampler's series; declaring
    # that collapses every other counter/series (per-queue occupancy,
    # MAC/PHY counters, controller telemetry) to recording no-ops —
    # tracing is write-only, so exports stay byte-identical.
    network, topo = build_mesh_network(spec, trace_exports=("buffer.",))
    sources = _sample_flows(topo, flows, network)
    endpoints = [(src, topo.nearest[src]) for src in sources]
    attached = attach_workload(
        network,
        endpoints,
        WorkloadSpec(kind=workload, rate_bps=rate_kbps * 1000.0),
        flow_prefix="M",
    )

    _materialise_queues(network, topo, attached)
    if algorithm == "ezflow":
        attach_ezflow(network.nodes)
    elif algorithm == "diffq":
        attach_diffq(network.nodes)
    elif algorithm == "penalty":
        apply_penalty(network.nodes, sources=set(sources), q=PENALTY_Q)

    if loss_spec is not None:
        apply_loss_models(network, loss_spec)
    churn_driver = None
    if churn_schedule is not None:
        # The driver carries the loss spec so reception edges created by
        # mobility/up events become lossy the moment they appear.
        churn_driver = ChurnDriver(network, churn_schedule, loss_spec=loss_spec)
        churn_driver.install()

    sampler = BufferSampler(network.engine, network.trace, network.nodes)
    sampler.start()
    network.run(until_us=seconds(duration_s))
    start, end = seconds(warmup_s), seconds(duration_s)

    parameters = {
        "topology": topology,
        "nodes": nodes,
        "density": density,
        "gateways": gateways,
        "flows": len(endpoints),
        "workload": workload,
        "algorithm": algorithm,
        "rate_kbps": rate_kbps,
        "duration_s": duration_s,
        "seed": seed,
    }
    # Dynamic axes only appear in the exported parameters when set, so
    # every static run keeps its pre-existing byte-identical artefacts.
    if loss:
        parameters["loss"] = loss
    if churn:
        parameters["churn"] = churn
    result = ExperimentResult(
        "meshgen",
        f"generated {topology} ({nodes} nodes) under {workload} workload, "
        f"algorithm {algorithm}",
        parameters=parameters,
    )
    result.note_runtime(network.engine)

    shape = result.table(
        "Topology",
        ["kind", "nodes", "gateways", "mean_degree", "resample_attempts", "connected"],
    )
    shape.add(
        topology,
        nodes,
        len(topo.gateways),
        mean_degree(network.connectivity),
        topo.attempts,
        "yes",  # build_mesh_network validates; reaching here proves it
    )

    if loss or churn_driver is not None:
        dynamics = result.table(
            "Dynamic link state", ["loss_model", "lossy_links", "churn_events_applied"]
        )
        dynamics.add(
            loss or "none",
            # Final count: includes links churn created during the run.
            network.channel.link_model_count(),
            0 if churn_driver is None else len(churn_driver.applied),
        )

    per_flow = result.table(
        "Per-flow goodput",
        ["flow", "kind", "src", "gateway", "hops", "goodput_kbps", "path_delay_s"],
    )
    throughputs = []
    generated_total = 0
    delivered_total = 0
    for item in attached:
        flow = item.flow
        hops = topo.depths[flow.dst][flow.src]
        goodput = flow.throughput_bps(start, end) / 1000.0
        generated = flow.generated
        delivered = flow.delivered
        if item.kind == "windowed":
            # Go-back-N duplicates reach the gateway and are counted by
            # the flow's delivery accounting; only in-order progress is
            # goodput. Scale by the unique fraction and charge
            # retransmissions as generations so the ratio stays honest.
            unique = item.driver.delivered_in_order / max(1, delivered)
            goodput *= unique
            delivered = item.driver.delivered_in_order
            generated += item.driver.retransmissions
        throughputs.append(goodput)
        generated_total += generated
        delivered_total += delivered
        per_flow.add(
            str(flow.flow_id),
            item.kind,
            flow.src,
            flow.dst,
            hops,
            goodput,
            flow.mean_path_delay_s(start, end),
        )

    # Column names are the canonical scalar-metric names the results
    # layer (repro.results) compares across runs; the constant keeps
    # harness, compare tables and docs in sync without changing bytes.
    summary = result.table("Summary", list(MESHGEN_SUMMARY_COLUMNS))
    relays = sorted(n for n in topo.positions if n not in topo.gateways)
    relay_backlog = sum(network.nodes[n].total_buffer_occupancy() for n in relays)
    summary.add(
        jain_fairness_index(throughputs),
        sum(throughputs),
        delivered_total / generated_total if generated_total else 0.0,
        relay_backlog,
    )

    # Queue backlog by hop ring: every node grouped by BFS distance to
    # its nearest gateway (gateways are ring 0).
    rings: Dict[int, List[Hashable]] = {}
    for node in sorted(topo.positions):
        if node in topo.gateways:
            rings.setdefault(0, []).append(node)
        else:
            gw = topo.nearest[node]
            rings.setdefault(topo.depths[gw][node], []).append(node)
    ring_table = result.table(
        "Queue occupancy by hop", ["hop", "nodes", "mean_buffer_pkts"]
    )
    for hop, count, mean_buffer in mean_occupancy_by_group(sampler, rings, start, end):
        ring_table.add(hop, count, mean_buffer)
        result.series[f"occupancy.hop{hop}"] = group_mean_series(sampler, rings[hop])

    result.notes.append(
        "expected shape: ezflow holds fairness and aggregate goodput with "
        "near-empty relay rings; none lets rings closest to the gateways "
        "build backlog; diffq pays header overhead; penalty depends on "
        "whether q=1/8 suits the generated depth"
    )
    return result
