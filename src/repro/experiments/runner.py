"""Fault-tolerant parallel scenario-sweep runner.

``SweepRunner`` executes :class:`RunRequest` batches — single paper
experiments, the whole catalogue, or cartesian parameter grids — either
inline or fanned out over worker processes. Results come back in request
order regardless of worker count, and every run's seed is derived from
the request alone, so a parallel sweep is byte-identical to the same
sweep run serially (``tests/test_runner.py`` locks this in).

Execution is supervised: a worker raising, hanging past ``run_timeout``,
or dying outright (segfault, OOM kill, ``os._exit``) is detected,
attributed to the run that caused it, and handled per the
:class:`ErrorPolicy` — abort the batch (``fail``, the default), record a
typed :class:`RunFailure` and keep going (``continue``), or retry with
capped exponential backoff first (``retry:N``). A run that crashes its
worker while others share the pool is re-run alone in a one-worker
quarantine lane so the poison run is identified exactly and innocent
runs are never charged for its crash.

Design rules that keep the determinism guarantee cheap:

* a request is a pure function of (spec id, kwargs): workers share no
  state and records are always *released* in request order, whatever
  order completions arrive in;
* inline and pooled execution catch errors at the same stack depth
  (:func:`_attempt`), so recorded failure tracebacks are byte-identical
  at any ``--jobs`` count;
* exported artefacts never contain wall-clock times or timestamps —
  timing is reported on stdout only;
* worker processes re-resolve the entry point from the spec's
  ``module:function`` string, so requests pickle trivially under both
  fork and spawn start methods.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor, CancelledError
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.faults import FaultAction, FaultPlan
from repro.experiments.specs import ScenarioSpec, get_spec
from repro.telemetry.channel import WorkerPublisher, drain_channel
from repro.telemetry.events import RunFailed, RunFinished, RunStarted
from repro.telemetry.hub import RunEventGate
from repro.telemetry.probe import ProbeSession, activate_probe


@dataclass(frozen=True)
class RunRequest:
    """One unit of work: a scenario plus its (validated) kwargs.

    ``run_id`` names the run everywhere — progress lines, export
    directories, manifest entries. It must be unique within a batch and
    filesystem-safe; :func:`request_for` builds canonical ones.
    """

    spec_id: str
    kwargs: Tuple[Tuple[str, object], ...]  # sorted items, hashable/picklable
    run_id: str

    @property
    def kwargs_dict(self) -> Dict[str, object]:
        return dict(self.kwargs)


#: Schema tag of the failure wire form (:meth:`RunFailure.to_json_dict`).
RUN_FAILURE_SCHEMA = "repro.results/failure/1"


@dataclass
class RunFailure:
    """One run's typed failure record.

    ``kind`` classifies the failure mode: ``exception`` (the run
    raised), ``timeout`` (it exceeded the per-run timeout and its worker
    was killed), or ``worker-crash`` (the worker process died under it —
    segfault, OOM kill, ``os._exit``). ``attempts`` counts executions
    including retries. ``wall_s`` is in-memory bookkeeping only;
    :meth:`to_dict` (the exported/stored form) omits it so failure
    records stay deterministic at any ``--jobs`` count.
    """

    run_id: str
    spec_id: str
    kwargs: Dict[str, object] = field(default_factory=dict)
    kind: str = "exception"
    error: str = ""
    message: str = ""
    traceback: Optional[str] = None
    attempts: int = 1
    wall_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """The deterministic (timestamp- and timing-free) export form."""
        return {
            "run_id": self.run_id,
            "spec_id": self.spec_id,
            "kwargs": self.kwargs,
            "kind": self.kind,
            "error": self.error,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }

    def to_json_dict(self) -> Dict[str, object]:
        """The schema-versioned wire form (HTTP responses).

        The body is exactly :meth:`to_dict` — the same dict
        ``failures.json`` exports — wrapped with a ``schema`` tag at the
        envelope so clients can detect layout changes; export bytes
        carry no tag and stay unchanged.
        """
        return {"schema": RUN_FAILURE_SCHEMA, **self.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunFailure":
        return cls(
            run_id=data["run_id"],
            spec_id=data["spec_id"],
            kwargs=dict(data.get("kwargs", {})),
            kind=data.get("kind", "exception"),
            error=data.get("error", ""),
            message=data.get("message", ""),
            traceback=data.get("traceback"),
            attempts=int(data.get("attempts", 1)),
            wall_s=float(data.get("wall_s", 0.0)),
        )


@dataclass
class RunRecord:
    """The outcome of one request.

    ``cached`` is True when the record came out of a
    :class:`~repro.results.store.ResultStore` instead of being executed
    (a checkpoint/dedupe hit); ``wall_s`` then reports the originally
    measured wall seconds. Under ``--on-error continue`` a failed run
    yields a record with ``failure`` set and ``result`` None.
    """

    request: RunRequest
    result: Optional[ExperimentResult]
    wall_s: float
    cached: bool = False
    failure: Optional[RunFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass(frozen=True)
class ErrorPolicy:
    """What :meth:`SweepRunner.run` does when a run fails.

    ``fail`` aborts the batch on the first failure (the error propagates
    as itself — the historical behaviour and still the default).
    ``continue`` records a :class:`RunFailure` and keeps going.
    ``retries`` re-executes a failed run up to N extra times, sleeping
    ``min(backoff_cap_s, backoff_base_s * 2**(attempt-1))`` between
    attempts, before the mode applies; :meth:`parse` spells this
    ``retry:N`` (retry, then record and continue).
    """

    mode: str = "fail"
    retries: int = 0
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 2.0

    def __post_init__(self):
        if self.mode not in ("fail", "continue"):
            raise ValueError(f"error policy mode {self.mode!r}: expected "
                             f"'fail' or 'continue'")
        if self.retries < 0:
            raise ValueError("error policy retries must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "ErrorPolicy":
        """Parse the CLI spelling: ``fail`` | ``continue`` | ``retry:N``."""
        text = (spec or "").strip()
        if text == "fail":
            return cls("fail")
        if text == "continue":
            return cls("continue")
        if text.startswith("retry:"):
            try:
                retries = int(text[len("retry:"):])
            except ValueError:
                retries = 0
            if retries < 1:
                raise ValueError(
                    f"error policy {spec!r}: retry:N needs a positive N"
                )
            return cls("continue", retries=retries)
        raise ValueError(
            f"error policy {spec!r}: expected 'fail', 'continue' or 'retry:N'"
        )

    def backoff_s(self, attempt: int) -> float:
        """Sleep before re-executing after the ``attempt``-th failure."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))


class RunTimeoutError(RuntimeError):
    """A run exceeded the per-run timeout and its worker was killed."""


class WorkerCrashError(RuntimeError):
    """A worker process died (segfault, OOM kill, ``os._exit``)."""


class WorkerRunError(RuntimeError):
    """A worker's exception could not be pickled back; carries its text."""


class InjectedSweepFault(RuntimeError):
    """The test-only fault raised by the :data:`FAULT_ENV` kill hook."""


#: Setting this env var to N makes :meth:`SweepRunner.run` raise
#: :class:`InjectedSweepFault` right after the N-th *executed* (non-
#: cached) run has been completed, reported and checkpointed — the CI
#: ``resume-smoke`` job uses it to kill a sweep mid-flight
#: deterministically and then resume it against the same store. It kills
#: the whole sweep; to break individual runs instead, use a
#: :class:`~repro.experiments.faults.FaultPlan`.
FAULT_ENV = "REPRO_SWEEP_FAULT_AFTER"


def _slug(value: object) -> str:
    """Filesystem-safe rendering of one kwarg value."""
    if isinstance(value, (tuple, list)):
        return "+".join(_slug(v) for v in value)
    return str(value).replace("/", "_").replace(" ", "")


def make_run_id(spec_id: str, kwargs: Mapping[str, object]) -> str:
    """Canonical run id: the spec id plus sorted ``key=value`` parts."""
    parts = [spec_id]
    for key in sorted(kwargs):
        parts.append(f"{key}={_slug(kwargs[key])}")
    return "~".join(parts)


def request_for(
    spec_id: str,
    kwargs: Optional[Mapping[str, object]] = None,
    run_id: Optional[str] = None,
) -> RunRequest:
    """Build a validated request for one scenario run."""
    spec = get_spec(spec_id)
    validated = spec.validate(kwargs or {})
    items = tuple(sorted(validated.items()))
    return RunRequest(
        spec_id=spec.id,
        kwargs=items,
        run_id=run_id or (spec.id if not items else make_run_id(spec.id, validated)),
    )


def expand_grid(grid: Mapping[str, Sequence[object]]) -> List[Dict[str, object]]:
    """Cartesian product of a parameter grid, in deterministic order.

    Keys are iterated sorted; values in the order given. ``{}`` yields
    one empty point (the scenario's defaults).
    """
    keys = sorted(grid)
    combos = itertools.product(*(tuple(grid[k]) for k in keys))
    return [dict(zip(keys, combo)) for combo in combos]


def _grid_requests(
    spec_id: str,
    grid: Mapping[str, Sequence[object]],
    base_seed: Optional[int] = None,
    replicates: int = 1,
) -> List[RunRequest]:
    """Requests for every grid point (× replicates) of one scenario.

    With ``base_seed`` set, each run gets ``seed`` derived from
    (base_seed, spec id, run index) via :meth:`ScenarioSpec.derive_seed`;
    a ``seed`` axis in the grid itself wins over derivation. Without
    ``base_seed`` and without a seed axis, every replicate runs the
    scenario's default seed (replicates > 1 then only make sense for
    timing, so ``replicates`` requires one of the two).

    Internal: :class:`repro.results.Study` is the public way to build
    grid sweeps.
    """
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    spec = get_spec(spec_id)
    if replicates > 1 and base_seed is None and "seed" not in grid:
        raise ValueError("replicates > 1 needs base_seed or a seed axis")
    requests: List[RunRequest] = []
    index = 0
    for point in expand_grid(grid):
        for replicate in range(replicates):
            kwargs = dict(point)
            derived = base_seed is not None and "seed" not in point
            if derived:
                kwargs["seed"] = spec.derive_seed(base_seed, index)
            run_id = make_run_id(spec.id, kwargs)
            # Without a derived per-index seed, replicates of a point
            # share identical kwargs; the suffix keeps run ids unique.
            if replicates > 1 and not derived:
                run_id = f"{run_id}~r{replicate}"
            requests.append(request_for(spec.id, kwargs, run_id=run_id))
            index += 1
    return requests


def catalogue_requests(
    spec_ids: Iterable[str],
    overrides: Optional[Mapping[str, object]] = None,
    strict: bool = True,
) -> Tuple[List[RunRequest], List[str]]:
    """Requests for a list of scenario ids with shared kwarg overrides.

    Aliases collapse onto their primary spec (each harness runs once).
    In ``strict`` mode an override a scenario does not declare raises
    :class:`~repro.experiments.specs.UnknownParameterError`; otherwise it
    is skipped for that scenario and reported in the returned warning
    list (the ``all`` behaviour: ``--duration`` applies where it means
    something).
    """
    overrides = dict(overrides or {})
    requests: List[RunRequest] = []
    warnings: List[str] = []
    seen = set()
    for spec_id in spec_ids:
        spec = get_spec(spec_id)
        if spec.id in seen:
            continue
        seen.add(spec.id)
        kwargs = {}
        for key, value in overrides.items():
            if any(p.name == key for p in spec.params):
                kwargs[key] = value
            elif strict:
                spec.param(key)  # raises UnknownParameterError
            else:
                warnings.append(f"{spec.id}: ignoring undeclared option {key!r}")
        requests.append(request_for(spec.id, kwargs, run_id=spec.id))
    return requests, warnings


def execute_request(request: RunRequest) -> RunRecord:
    """Run one request in this process (no supervision, errors propagate)."""
    spec = get_spec(request.spec_id)
    started = time.perf_counter()
    result = spec.run(**request.kwargs_dict)
    return RunRecord(request, result, time.perf_counter() - started)


#: Pool-worker telemetry channel, installed by the executor initializer.
_WORKER_CHANNEL = None


def _worker_channel_init(channel) -> None:
    """Executor ``initializer``: remember the worker→parent channel."""
    global _WORKER_CHANNEL
    _WORKER_CHANNEL = channel


#: Inline-execution telemetry sink (the serial paths run in the parent;
#: thread-local so a threaded driver's sweeps don't cross-talk).
_INLINE = threading.local()


@dataclass(frozen=True)
class _TelemetryTask:
    """The picklable telemetry slice of a task tuple (probe config)."""

    sample_interval_s: float = 1.0


class _InlinePublisher:
    """Publisher shim for inline attempts: emit straight to the sink."""

    __slots__ = ("emit",)

    def __init__(self, emit):
        self.emit = emit

    def take_residual(self):
        return ()


def _publisher_for():
    """The attempt's event publisher: pool channel, inline sink, or None."""
    if _WORKER_CHANNEL is not None:
        return WorkerPublisher(_WORKER_CHANNEL)
    sink = getattr(_INLINE, "sink", None)
    if sink is not None:
        return _InlinePublisher(sink)
    return None


def _attempt(task: Tuple[RunRequest, Optional[FaultAction], int, Optional[_TelemetryTask]]):
    """One supervised run attempt (also the pooled worker entry point).

    Returns a plain payload tuple instead of raising, catching at one
    fixed stack depth whether called inline or in a worker — which is
    what makes recorded failure tracebacks byte-identical at any
    ``--jobs`` count:

    * ``("ok", result, wall_s, residual)`` on success;
    * ``("error", class_name, message, traceback_text, pickle_blob,
      wall_s, residual)`` when the run raised. ``pickle_blob`` is the
      exception itself when it round-trips through pickle (so the
      ``fail`` policy can re-raise the original), else None.

    ``residual`` (always the last element) is the tail of the run's
    telemetry stream that was still buffered at run end: carrying it in
    the payload — which travels on the executor's result queue — means
    it can never lose the race against the run being settled, which
    events still in flight on the side channel can.

    ``telem`` activates the run's telemetry probe: ``RunStarted`` is
    published on the first attempt and a :class:`ProbeSession` is
    installed for the spec's duration (terminal events are the
    *parent's* to emit — only it knows when a run is finally settled).
    """
    request, action, attempt, telem = task
    publisher = _publisher_for() if telem is not None else None
    previous = None
    if publisher is not None:
        if attempt == 1:
            publisher.emit(
                RunStarted(run_id=request.run_id, spec_id=request.spec_id)
            )
        previous = activate_probe(
            ProbeSession(publisher.emit, request.run_id, telem.sample_interval_s)
        )
    started = time.perf_counter()
    try:
        try:
            if action is not None:
                action.trigger(request.run_id, attempt)
            spec = get_spec(request.spec_id)
            result = spec.run(**request.kwargs_dict)
        except Exception as exc:
            wall_s = time.perf_counter() - started
            text = "".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            )
            blob = None
            try:
                blob = pickle.dumps(exc)
                pickle.loads(blob)
            except Exception:
                blob = None
            payload = ("error", type(exc).__name__, str(exc), text, blob, wall_s)
        else:
            payload = ("ok", result, time.perf_counter() - started)
    finally:
        if publisher is not None:
            activate_probe(previous)
    residual = publisher.take_residual() if publisher is not None else ()
    return payload + (residual,)


def _reraise_worker_error(error: str, message: str, tb: Optional[str], blob):
    """Re-raise a worker-captured exception as itself where possible."""
    if blob is not None:
        try:
            exc = pickle.loads(blob)
        except Exception:  # pragma: no cover - defensive
            exc = None
        if isinstance(exc, BaseException):
            raise exc
    raise WorkerRunError(f"{error}: {message}\n{tb or ''}".rstrip())


class _Fatal:
    """A failure parked until the release cursor reaches it (fail mode).

    Failures can complete out of request order under pooled execution;
    the ``fail`` policy still raises at the failed run's *position* in
    the batch — the same place the old order-preserving ``imap`` loop
    raised — so earlier runs release normally first.
    """

    __slots__ = ("kind", "error", "message", "traceback", "blob", "run_id")

    def __init__(self, kind, error, message, tb, blob, run_id):
        self.kind = kind
        self.error = error
        self.message = message
        self.traceback = tb
        self.blob = blob
        self.run_id = run_id

    def reraise(self):
        if self.kind == "timeout":
            raise RunTimeoutError(f"run {self.run_id!r}: {self.message}")
        if self.kind == "worker-crash":
            raise WorkerCrashError(f"run {self.run_id!r}: {self.message}")
        _reraise_worker_error(self.error, self.message, self.traceback, self.blob)


class _TaskState:
    """Supervisor-side bookkeeping for one pending request."""

    __slots__ = ("attempt", "action", "started", "timed_out")

    def __init__(self, action: Optional[FaultAction]):
        self.attempt = 1
        self.action = action
        self.started: Optional[float] = None  # monotonic, first seen running
        self.timed_out = False  # we killed its lane on purpose


class _Lane:
    """One executor plus the futures currently living in it."""

    __slots__ = ("executor", "workers", "tasks")

    def __init__(self, executor: ProcessPoolExecutor, workers: int):
        self.executor = executor
        self.workers = workers
        # future -> pending index; insertion order is submission order,
        # which is the order the executor dispatches tasks to workers.
        self.tasks: Dict[object, int] = {}


#: Supervisor poll granularity (seconds): an upper bound on how long a
#: completion, crash or timeout goes unnoticed, not a scheduling unit —
#: ``wait`` returns the moment a future resolves.
_POLL_S = 0.05


class SweepRunner:
    """Fan a batch of requests out over processes, deterministically.

    ``jobs=1`` runs inline (no pool, no pickling) unless supervision
    needs a separate process (a ``run_timeout``, or a fault plan that
    can crash the worker); ``jobs>1`` uses a supervised
    ``ProcessPoolExecutor`` dispatch loop. Completions may arrive in any
    order, but records are *released* — and ``on_record`` fired — in
    request order, so progress reporting and exports stay deterministic.

    The executor is created on first parallel use and *reused* across
    ``run()`` calls, so a driver issuing several sweeps (the benchmark
    suite, test batteries, future schedulers) pays process spin-up once
    instead of per batch. Workers spawn lazily up to ``jobs``, so small
    batches never fork processes that would sit idle. Close the runner
    (context manager or :meth:`close`) to release the workers; a
    garbage-collected runner terminates them as a fallback.

    Supervision: a worker death breaks the whole executor
    (``BrokenProcessPool``), so the supervisor rebuilds it and sorts the
    in-flight runs — when exactly one was running, that run is charged
    with the crash; when several were (the ambiguous case), each suspect
    re-runs alone in a one-worker *quarantine lane*, where sole
    occupancy attributes the next crash exactly. Queued, never-started
    runs are resubmitted without being charged. ``run_timeout`` is
    enforced the same way: the overdue run's lane is killed deliberately
    and only the overdue run is charged; timed-out and crashing runs
    retry in the quarantine lane so they cannot take the main pool down
    repeatedly.
    """

    def __init__(self, jobs: int = 1, mp_context: Optional[str] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        # Worker→parent telemetry channel; created with the first
        # executor (initargs are fixed at pool construction) and shared
        # by every lane, so late-attached telemetry still has transport.
        self._channel = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC fallback
        # May run during interpreter shutdown, where even the machinery
        # this method needs (module globals, exception classes) can be
        # half torn down — swallow absolutely everything.
        try:
            self.close()
        except BaseException:
            pass

    @staticmethod
    def _kill_workers(executor) -> None:
        """Terminate an executor's worker processes (never raises)."""
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead / shutdown
                pass

    def close(self) -> None:
        """Terminate the persistent worker pool (idempotent).

        Safe to call from ``__del__`` at interpreter shutdown: a runner
        collected that late may find the executor machinery's module
        globals already set to ``None``, which surfaces as
        ``AttributeError``/``TypeError`` from ``shutdown`` — the
        executor is dropped regardless and the OS reaps the workers.
        """
        executor = getattr(self, "_executor", None)
        self._executor = None
        if executor is not None:
            try:
                self._kill_workers(executor)
                executor.shutdown(wait=False, cancel_futures=True)
            except (AttributeError, TypeError):  # pragma: no cover - shutdown races
                pass
        channel = getattr(self, "_channel", None)
        self._channel = None
        if channel is not None:
            try:
                channel.cancel_join_thread()
                channel.close()
            except Exception:  # pragma: no cover - shutdown races
                pass

    def _ensure_channel(self):
        """The shared telemetry channel (created with the first executor).

        Bounded so a stalled parent can never make workers accumulate
        unbounded queue memory; the publisher side drops oldest
        droppable events instead of blocking when it fills.
        """
        if self._channel is None:
            context = multiprocessing.get_context(self.mp_context)
            self._channel = context.Queue(256)
        return self._channel

    def _make_executor(self, workers: int) -> ProcessPoolExecutor:
        context = multiprocessing.get_context(self.mp_context)
        # The channel rides along unconditionally: initargs are fixed at
        # pool construction, and the persistent executor must serve
        # later run() calls that do attach telemetry. Workers only touch
        # it when a task carries a telemetry slice.
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_channel_init,
            initargs=(self._ensure_channel(),),
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        """The persistent main-lane executor (workers spawn on demand)."""
        if self._executor is None:
            self._executor = self._make_executor(self.jobs)
        return self._executor

    def _discard_executor(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - already broken
                pass

    # -- execution paths ----------------------------------------------

    def _direct_outcomes(self, pending, actions, checkpoint, telem=None, gate=None):
        """The legacy inline path: no supervision, errors propagate raw.

        Taken for ``fail``-with-no-retries at ``jobs=1`` so a raising
        experiment keeps its genuine traceback (the "errors propagate as
        themselves" CLI contract), exactly as before this layer existed.
        """
        for request, action in zip(pending, actions):
            started = time.perf_counter()
            previous = None
            if gate is not None:
                gate.emit(RunStarted(run_id=request.run_id, spec_id=request.spec_id))
                previous = activate_probe(
                    ProbeSession(gate.emit, request.run_id, telem.sample_interval_s)
                )
            try:
                if action is not None:
                    action.trigger(request.run_id, 1)
                spec = get_spec(request.spec_id)
                result = spec.run(**request.kwargs_dict)
            except BaseException as exc:
                if gate is not None:
                    gate.emit(
                        RunFailed(
                            run_id=request.run_id,
                            error=type(exc).__name__,
                            message=str(exc),
                        )
                    )
                raise
            finally:
                if gate is not None:
                    activate_probe(previous)
            record = RunRecord(request, result, time.perf_counter() - started)
            checkpoint(request, record)
            if gate is not None:
                gate.emit(RunFinished(run_id=request.run_id))
            yield record

    def _serial_outcomes(self, pending, actions, policy, checkpoint, telem=None, gate=None):
        """Inline execution with failure isolation and retries."""
        if gate is not None:
            _INLINE.sink = gate.emit
        try:
            for index, request in enumerate(pending):
                attempt = 1
                while True:
                    payload = _attempt((request, actions[index], attempt, telem))
                    if payload[0] == "ok":
                        outcome = RunRecord(request, payload[1], payload[2])
                        break
                    _, error, message, tb, blob, wall_s = payload[:6]
                    if attempt <= policy.retries:
                        delay = policy.backoff_s(attempt)
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        continue
                    if policy.mode == "fail":
                        if gate is not None:
                            gate.emit(
                                RunFailed(
                                    run_id=request.run_id,
                                    error=error,
                                    message=message,
                                )
                            )
                        _reraise_worker_error(error, message, tb, blob)
                    outcome = RunFailure(
                        run_id=request.run_id,
                        spec_id=request.spec_id,
                        kwargs=request.kwargs_dict,
                        kind="exception",
                        error=error,
                        message=message,
                        traceback=tb,
                        attempts=attempt,
                        wall_s=wall_s,
                    )
                    break
                checkpoint(request, outcome)
                if gate is not None:
                    if isinstance(outcome, RunFailure):
                        gate.emit(
                            RunFailed(
                                run_id=request.run_id,
                                error=outcome.error,
                                message=outcome.message,
                            )
                        )
                    else:
                        gate.emit(RunFinished(run_id=request.run_id))
                yield outcome
        finally:
            if gate is not None:
                _INLINE.sink = None

    def _supervised_outcomes(
        self, pending, actions, policy, run_timeout, checkpoint, telem=None, gate=None
    ):
        """Pooled execution under supervision; yields outcomes in order.

        Outcomes (``RunRecord`` or ``RunFailure``) are buffered as
        completions arrive and yielded strictly in ``pending`` order;
        checkpointing happens at completion time so a kill loses at most
        the in-flight runs. The ``finally`` block tears down in-flight
        work when the generator exits early (an error released to the
        caller, ``KeyboardInterrupt``, or the caller closing us), so no
        worker is left computing a discarded run.
        """
        n = len(pending)
        states = [_TaskState(action) for action in actions]
        ready: Dict[int, object] = {}  # index -> RunRecord | RunFailure | _Fatal
        backlog: List[Tuple[float, int, str]] = []  # (due, index, lane name)
        lanes: Dict[str, _Lane] = {}
        completed = False

        def drain_telemetry(grace: bool = False):
            # Pull whatever the workers have published so far through
            # the gate. Called opportunistically every poll and — with
            # ``grace`` — decisively before a terminal event seals a
            # run's stream: a batch the worker flushed just before
            # returning can still sit in the channel's feeder thread
            # when the result future completes, so wait a beat and
            # drain once more before closing the door on it.
            if gate is not None and self._channel is not None:
                drain_channel(self._channel, gate.emit)
                if grace:
                    time.sleep(0.002)
                    drain_channel(self._channel, gate.emit)

        def settle(index, payload):
            request = pending[index]
            if gate is not None:
                # Older events first (the side channel), then the tail
                # the worker carried home inside the payload itself.
                drain_telemetry(grace=True)
                for event in payload[-1]:
                    gate.emit(event)
            if payload[0] == "ok":
                record = RunRecord(request, payload[1], payload[2])
                checkpoint(request, record)
                if gate is not None:
                    gate.emit(RunFinished(run_id=request.run_id))
                ready[index] = record
            else:
                _, error, message, tb, blob, wall_s = payload[:6]
                charge(index, "exception", error, message, tb, blob, wall_s)

        def charge(index, kind, error, message, tb, blob, wall_s):
            state = states[index]
            if state.attempt <= policy.retries:
                delay = policy.backoff_s(state.attempt)
                state.attempt += 1
                # Exception retries go back to the main lane; timeout and
                # crash retries run quarantined so a persistently poison
                # run cannot keep taking the shared pool down.
                lane_name = "main" if kind == "exception" else "quarantine"
                backlog.append((time.monotonic() + delay, index, lane_name))
                return
            request = pending[index]
            if gate is not None:
                drain_telemetry(grace=True)
                gate.emit(
                    RunFailed(
                        run_id=request.run_id,
                        failure_kind=kind,
                        error=error,
                        message=message,
                    )
                )
            if policy.mode == "fail":
                ready[index] = _Fatal(kind, error, message, tb, blob, request.run_id)
                return
            failure = RunFailure(
                run_id=request.run_id,
                spec_id=request.spec_id,
                kwargs=request.kwargs_dict,
                kind=kind,
                error=error,
                message=message,
                traceback=tb,
                attempts=state.attempt,
                wall_s=wall_s or 0.0,
            )
            checkpoint(request, failure)
            ready[index] = failure

        def handle_break(lane_name):
            lane = lanes.pop(lane_name, None)
            if lane is None:  # pragma: no cover - already handled
                return
            if lane.executor is self._executor:
                self._executor = None
            # Give the executor's manager thread a moment to resolve
            # every pending future, then harvest results that landed
            # before the break — they are genuine completions.
            wait(list(lane.tasks), timeout=5.0)
            try:
                lane.executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - already torn down
                pass
            crashed: List[int] = []  # submission order
            for future, index in list(lane.tasks.items()):
                try:
                    payload = future.result(timeout=0)
                except BaseException:
                    crashed.append(index)
                else:
                    settle(index, payload)
            lane.tasks.clear()
            now = time.monotonic()
            deliberate = any(states[i].timed_out for i in crashed)
            if deliberate:
                # We killed this lane to enforce run_timeout: charge the
                # overdue run(s); co-running and queued runs are innocent
                # and simply resubmit.
                for index in crashed:
                    state = states[index]
                    if state.timed_out:
                        state.timed_out = False
                        charge(
                            index,
                            "timeout",
                            "RunTimeoutError",
                            f"run exceeded the per-run timeout "
                            f"({run_timeout:g} s)",
                            None,
                            None,
                            run_timeout or 0.0,
                        )
                    else:
                        backlog.append((0.0, index, lane_name))
                return
            suspects = [i for i in crashed if states[i].started is not None]
            if not suspects and crashed:
                # A fast crash can break the pool before any poll ever
                # observes the run in flight. The executor dispatches
                # submissions FIFO, so the earliest-submitted unfinished
                # task(s) — at most one per worker — were the ones a
                # worker had picked up.
                suspects = crashed[: lane.workers]
            queued = [i for i in crashed if i not in suspects]
            if len(suspects) == 1:
                index = suspects[0]
                wall_s = now - (states[index].started or now)
                charge(
                    index,
                    "worker-crash",
                    "WorkerCrashError",
                    "worker process died (segfault, OOM kill, or os._exit)",
                    None,
                    None,
                    wall_s,
                )
            else:
                # Ambiguous: several runs were in flight when the pool
                # broke. Re-run each alone in the quarantine lane, where
                # sole occupancy attributes the next crash exactly —
                # innocents complete there without ever being charged.
                for index in suspects:
                    backlog.append((0.0, index, "quarantine"))
            for index in queued:
                backlog.append((0.0, index, lane_name))

        def submit(lane_name, index):
            for _ in range(2):
                lane = lanes.get(lane_name)
                if lane is None:
                    if lane_name == "main":
                        lane = _Lane(self._ensure_executor(), self.jobs)
                    else:
                        lane = _Lane(self._make_executor(1), 1)
                    lanes[lane_name] = lane
                state = states[index]
                state.started = None
                state.timed_out = False
                try:
                    future = lane.executor.submit(
                        _attempt, (pending[index], state.action, state.attempt, telem)
                    )
                except BrokenExecutor:
                    # A worker died while idle; rebuild the lane once.
                    handle_break(lane_name)
                    continue
                lane.tasks[future] = index
                return
            raise WorkerCrashError(  # pragma: no cover - two breaks in a row
                "worker pool repeatedly broken on submit"
            )

        next_index = 0
        try:
            for index in range(n):
                submit("main", index)
            while next_index < n:
                while next_index in ready:
                    outcome = ready.pop(next_index)
                    if isinstance(outcome, _Fatal):
                        outcome.reraise()
                    next_index += 1
                    yield outcome
                if next_index >= n:
                    break
                now = time.monotonic()
                due = [entry for entry in backlog if entry[0] <= now]
                if due:
                    backlog[:] = [e for e in backlog if e[0] > now]
                    for _, index, lane_name in sorted(due, key=lambda e: e[1]):
                        submit(lane_name, index)
                futures = [f for lane in lanes.values() for f in lane.tasks]
                if not futures:
                    if backlog:
                        next_due = min(entry[0] for entry in backlog)
                        time.sleep(min(_POLL_S, max(0.0, next_due - now)))
                        continue
                    if ready:
                        continue
                    raise RuntimeError(  # pragma: no cover - invariant
                        "sweep supervisor stalled with no work in flight"
                    )
                done, _ = wait(futures, timeout=_POLL_S, return_when=FIRST_COMPLETED)
                drain_telemetry()
                now = time.monotonic()
                for lane in lanes.values():
                    # The executor dispatches FIFO, so the earliest
                    # unfinished submissions — at most one per worker —
                    # are the runs actually on a worker right now. (A
                    # future's own running() flag over-reports: it flips
                    # as soon as the task enters the call queue.)
                    in_flight = [f for f in lane.tasks if not f.done()]
                    for future in in_flight[: lane.workers]:
                        state = states[lane.tasks[future]]
                        if state.started is None:
                            state.started = now
                broken: List[str] = []
                for lane_name in list(lanes):
                    lane = lanes.get(lane_name)
                    if lane is None:
                        continue
                    for future in [f for f in done if f in lane.tasks]:
                        try:
                            payload = future.result()
                        except (BrokenExecutor, CancelledError, OSError):
                            broken.append(lane_name)
                            break
                        index = lane.tasks.pop(future)
                        settle(index, payload)
                for lane_name in broken:
                    handle_break(lane_name)
                if run_timeout is not None:
                    now = time.monotonic()
                    for lane_name, lane in list(lanes.items()):
                        overdue = [
                            index
                            for index in lane.tasks.values()
                            if states[index].started is not None
                            and not states[index].timed_out
                            and now - states[index].started > run_timeout
                        ]
                        if overdue:
                            for index in overdue:
                                states[index].timed_out = True
                            # Killing the lane breaks it; the next loop
                            # iteration routes it through handle_break,
                            # which charges only the overdue run(s).
                            self._kill_workers(lane.executor)
            completed = True
        finally:
            quarantine = lanes.pop("quarantine", None)
            if quarantine is not None:
                if not completed:
                    self._kill_workers(quarantine.executor)
                try:
                    quarantine.executor.shutdown(
                        wait=completed, cancel_futures=True
                    )
                except Exception:  # pragma: no cover - already torn down
                    pass
            if not completed:
                main = lanes.pop("main", None)
                if main is not None:
                    if main.executor is self._executor:
                        self._executor = None
                    self._kill_workers(main.executor)
                    try:
                        main.executor.shutdown(wait=False, cancel_futures=True)
                    except Exception:  # pragma: no cover - already torn down
                        pass

    @staticmethod
    def _checkpoint(store) -> Callable[[RunRequest, object], None]:
        if store is None:
            return lambda request, outcome: None

        def checkpoint(request, outcome):
            if isinstance(outcome, RunFailure):
                store.put_failure(request, outcome)
            else:
                store.put(outcome)

        return checkpoint

    def run(
        self,
        requests: Sequence[RunRequest],
        on_record: Optional[Callable[[RunRecord], None]] = None,
        store=None,
        policy: Optional[object] = None,
        run_timeout: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        telemetry=None,
    ) -> List[RunRecord]:
        """Execute ``requests`` and return their records, in request order.

        With ``store`` (a :class:`~repro.results.store.ResultStore`),
        requests whose content key is already present come back as cache
        hits (``record.cached``) without executing, every freshly
        executed run is checkpointed into the store the moment it
        finishes, and a fully completed batch is finalized — so a killed
        sweep re-issued against the same store resumes instead of
        restarting, with artefacts byte-identical to an uninterrupted
        run (runs are pure functions of their requests). ``on_record``
        still fires in request order, for hits and fresh runs alike.

        ``policy`` (an :class:`ErrorPolicy` or its string spelling)
        governs failures; failed runs under ``continue`` come back as
        records with ``record.failure`` set and are checkpointed into
        the store as failure records, so a resume retries exactly the
        failed/missing runs. ``run_timeout`` kills any single run
        exceeding that many wall seconds (forces pooled execution even
        at ``jobs=1``). ``faults`` injects a deterministic
        :class:`~repro.experiments.faults.FaultPlan` (default: the
        :data:`~repro.experiments.faults.FAULT_PLAN_ENV` env var).

        ``telemetry`` (a :class:`~repro.telemetry.hub.TelemetryHub` with
        at least one listener) streams live run events through a
        :class:`~repro.telemetry.hub.RunEventGate`, so every run in the
        batch — cached hits included — produces exactly
        ``RunStarted (RunProgress|MetricSample)* (RunFinished|RunFailed)``.
        Telemetry is strictly off the export path: records, stores and
        exported bytes are identical with it on or off.
        """
        if isinstance(policy, str):
            policy = ErrorPolicy.parse(policy)
        if policy is None:
            policy = ErrorPolicy()
        if run_timeout is not None and run_timeout <= 0:
            raise ValueError("run_timeout must be positive")
        if faults is None:
            faults = FaultPlan.from_env()
        run_ids = [r.run_id for r in requests]
        if len(set(run_ids)) != len(run_ids):
            seen, dupes = set(), []
            for run_id in run_ids:
                if run_id in seen and run_id not in dupes:
                    dupes.append(run_id)
                seen.add(run_id)
            raise ValueError(
                "duplicate run ids in batch: " + ", ".join(sorted(dupes))
            )
        fault_after = int(os.environ.get(FAULT_ENV, "0") or 0)
        gate = None
        telem = None
        if telemetry is not None and telemetry.attached:
            gate = RunEventGate(telemetry.emit)
            telem = _TelemetryTask(sample_interval_s=telemetry.sample_interval_s)
        if self._channel is not None:
            # Discard stragglers a previous (aborted) batch left queued;
            # their runs' gates are gone and their ids would pollute
            # this batch's streams.
            drain_channel(self._channel, lambda event: None)
        cached: Dict[str, RunRecord] = {}
        pending: List[RunRequest] = []
        actions: List[Optional[FaultAction]] = []
        for index, request in enumerate(requests):
            hit = store.get(request) if store is not None else None
            if hit is not None:
                cached[request.run_id] = hit
            else:
                pending.append(request)
                actions.append(
                    faults.action_for(request.run_id, index) if faults else None
                )
        checkpoint = self._checkpoint(store)
        needs_worker = run_timeout is not None or any(
            action is not None and action.kind == "crash" for action in actions
        )
        if not pending:
            outcomes = iter(())
        elif (self.jobs == 1 or len(pending) <= 1) and not needs_worker:
            if policy.mode == "fail" and policy.retries == 0:
                outcomes = self._direct_outcomes(
                    pending, actions, checkpoint, telem=telem, gate=gate
                )
            else:
                outcomes = self._serial_outcomes(
                    pending, actions, policy, checkpoint, telem=telem, gate=gate
                )
        else:
            outcomes = self._supervised_outcomes(
                pending, actions, policy, run_timeout, checkpoint,
                telem=telem, gate=gate,
            )
        records: List[RunRecord] = []
        executed = 0
        try:
            for request in requests:
                record = cached.get(request.run_id)
                if record is None:
                    outcome = next(outcomes)
                    if isinstance(outcome, RunFailure):
                        record = RunRecord(
                            request, None, outcome.wall_s, failure=outcome
                        )
                    else:
                        record = outcome
                    executed += 1
                elif gate is not None:
                    # A cache hit never executes: its stream is the
                    # immediate two-event form, emitted at release time.
                    gate.emit(
                        RunStarted(run_id=request.run_id, spec_id=request.spec_id)
                    )
                    gate.emit(RunFinished(run_id=request.run_id, cached=True))
                if on_record is not None:
                    on_record(record)
                records.append(record)
                if not record.cached and fault_after and executed >= fault_after:
                    raise InjectedSweepFault(
                        f"injected fault after {executed} executed run(s) "
                        f"({FAULT_ENV}={fault_after})"
                    )
        except BaseException:
            # Error path (including KeyboardInterrupt and the legacy
            # injected kill hook): terminate the in-flight batch so no
            # worker is left computing runs nobody will collect.
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
            raise
        if store is not None:
            store.finalize(records)
        return records


def default_jobs() -> int:
    """Worker count for ``--jobs 0``: every core the container grants."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1
