"""Parallel scenario-sweep runner.

``SweepRunner`` executes :class:`RunRequest` batches — single paper
experiments, the whole catalogue, or cartesian parameter grids — either
inline or fanned out over ``multiprocessing`` workers. Results come back
in request order regardless of worker count, and every run's seed is
derived from the request alone, so a parallel sweep is byte-identical to
the same sweep run serially (``tests/test_runner.py`` locks this in).

Design rules that keep the guarantee cheap:

* a request is a pure function of (spec id, kwargs): workers share no
  state and results are collected with order-preserving ``imap``;
* exported artefacts never contain wall-clock times or timestamps —
  timing is reported on stdout only;
* worker processes re-resolve the entry point from the spec's
  ``module:function`` string, so requests pickle trivially under both
  fork and spawn start methods.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.specs import ScenarioSpec, get_spec


@dataclass(frozen=True)
class RunRequest:
    """One unit of work: a scenario plus its (validated) kwargs.

    ``run_id`` names the run everywhere — progress lines, export
    directories, manifest entries. It must be unique within a batch and
    filesystem-safe; :func:`request_for` builds canonical ones.
    """

    spec_id: str
    kwargs: Tuple[Tuple[str, object], ...]  # sorted items, hashable/picklable
    run_id: str

    @property
    def kwargs_dict(self) -> Dict[str, object]:
        return dict(self.kwargs)


@dataclass
class RunRecord:
    """The outcome of one request.

    ``cached`` is True when the record came out of a
    :class:`~repro.results.store.ResultStore` instead of being executed
    (a checkpoint/dedupe hit); ``wall_s`` then reports the originally
    measured wall seconds.
    """

    request: RunRequest
    result: ExperimentResult
    wall_s: float
    cached: bool = False


class InjectedSweepFault(RuntimeError):
    """The test-only fault raised by the :data:`FAULT_ENV` kill hook."""


#: Setting this env var to N makes :meth:`SweepRunner.run` raise
#: :class:`InjectedSweepFault` right after the N-th *executed* (non-
#: cached) run has been completed, reported and checkpointed — the CI
#: ``resume-smoke`` job uses it to kill a sweep mid-flight
#: deterministically and then resume it against the same store.
FAULT_ENV = "REPRO_SWEEP_FAULT_AFTER"


def _slug(value: object) -> str:
    """Filesystem-safe rendering of one kwarg value."""
    if isinstance(value, (tuple, list)):
        return "+".join(_slug(v) for v in value)
    return str(value).replace("/", "_").replace(" ", "")


def make_run_id(spec_id: str, kwargs: Mapping[str, object]) -> str:
    """Canonical run id: the spec id plus sorted ``key=value`` parts."""
    parts = [spec_id]
    for key in sorted(kwargs):
        parts.append(f"{key}={_slug(kwargs[key])}")
    return "~".join(parts)


def request_for(
    spec_id: str,
    kwargs: Optional[Mapping[str, object]] = None,
    run_id: Optional[str] = None,
) -> RunRequest:
    """Build a validated request for one scenario run."""
    spec = get_spec(spec_id)
    validated = spec.validate(kwargs or {})
    items = tuple(sorted(validated.items()))
    return RunRequest(
        spec_id=spec.id,
        kwargs=items,
        run_id=run_id or (spec.id if not items else make_run_id(spec.id, validated)),
    )


def expand_grid(grid: Mapping[str, Sequence[object]]) -> List[Dict[str, object]]:
    """Cartesian product of a parameter grid, in deterministic order.

    Keys are iterated sorted; values in the order given. ``{}`` yields
    one empty point (the scenario's defaults).
    """
    keys = sorted(grid)
    combos = itertools.product(*(tuple(grid[k]) for k in keys))
    return [dict(zip(keys, combo)) for combo in combos]


def _grid_requests(
    spec_id: str,
    grid: Mapping[str, Sequence[object]],
    base_seed: Optional[int] = None,
    replicates: int = 1,
) -> List[RunRequest]:
    """Requests for every grid point (× replicates) of one scenario.

    With ``base_seed`` set, each run gets ``seed`` derived from
    (base_seed, spec id, run index) via :meth:`ScenarioSpec.derive_seed`;
    a ``seed`` axis in the grid itself wins over derivation. Without
    ``base_seed`` and without a seed axis, every replicate runs the
    scenario's default seed (replicates > 1 then only make sense for
    timing, so ``replicates`` requires one of the two).

    Internal: :class:`repro.results.Study` is the public way to build
    grid sweeps.
    """
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    spec = get_spec(spec_id)
    if replicates > 1 and base_seed is None and "seed" not in grid:
        raise ValueError("replicates > 1 needs base_seed or a seed axis")
    requests: List[RunRequest] = []
    index = 0
    for point in expand_grid(grid):
        for replicate in range(replicates):
            kwargs = dict(point)
            derived = base_seed is not None and "seed" not in point
            if derived:
                kwargs["seed"] = spec.derive_seed(base_seed, index)
            run_id = make_run_id(spec.id, kwargs)
            # Without a derived per-index seed, replicates of a point
            # share identical kwargs; the suffix keeps run ids unique.
            if replicates > 1 and not derived:
                run_id = f"{run_id}~r{replicate}"
            requests.append(request_for(spec.id, kwargs, run_id=run_id))
            index += 1
    return requests


def catalogue_requests(
    spec_ids: Iterable[str],
    overrides: Optional[Mapping[str, object]] = None,
    strict: bool = True,
) -> Tuple[List[RunRequest], List[str]]:
    """Requests for a list of scenario ids with shared kwarg overrides.

    Aliases collapse onto their primary spec (each harness runs once).
    In ``strict`` mode an override a scenario does not declare raises
    :class:`~repro.experiments.specs.UnknownParameterError`; otherwise it
    is skipped for that scenario and reported in the returned warning
    list (the ``all`` behaviour: ``--duration`` applies where it means
    something).
    """
    overrides = dict(overrides or {})
    requests: List[RunRequest] = []
    warnings: List[str] = []
    seen = set()
    for spec_id in spec_ids:
        spec = get_spec(spec_id)
        if spec.id in seen:
            continue
        seen.add(spec.id)
        kwargs = {}
        for key, value in overrides.items():
            if any(p.name == key for p in spec.params):
                kwargs[key] = value
            elif strict:
                spec.param(key)  # raises UnknownParameterError
            else:
                warnings.append(f"{spec.id}: ignoring undeclared option {key!r}")
        requests.append(request_for(spec.id, kwargs, run_id=spec.id))
    return requests, warnings


def execute_request(request: RunRequest) -> RunRecord:
    """Run one request in this process (also the worker entry point)."""
    spec = get_spec(request.spec_id)
    started = time.perf_counter()
    result = spec.run(**request.kwargs_dict)
    return RunRecord(request, result, time.perf_counter() - started)


class SweepRunner:
    """Fan a batch of requests out over processes, deterministically.

    ``jobs=1`` runs inline (no pool, no pickling); ``jobs>1`` uses a
    ``multiprocessing`` pool with order-preserving ``imap`` so records
    always come back in request order. ``on_record`` (if given) fires in
    that same order as results arrive — progress reporting stays
    deterministic too.

    The pool is created on first parallel use and *reused* across
    ``run()`` calls, so a driver issuing several sweeps (the benchmark
    suite, test batteries, future schedulers) pays process spin-up once
    instead of per batch. Requests are handed out in chunks sized to the
    batch (order-preserving ``imap`` with ``chunksize > 1``), which cuts
    per-task IPC for large grids; chunking affects scheduling only —
    every record is still a pure function of its request, so exports
    remain byte-identical whatever the worker count or chunk size.
    Close the runner (context manager or :meth:`close`) to release the
    workers; a garbage-collected runner terminates them as a fallback.
    """

    def __init__(self, jobs: int = 1, mp_context: Optional[str] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.mp_context = mp_context
        self._pool = None
        self._pool_workers = 0

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC fallback
        # May run during interpreter shutdown, where even the machinery
        # this method needs (module globals, exception classes) can be
        # half torn down — swallow absolutely everything.
        try:
            self.close()
        except BaseException:
            pass

    def close(self) -> None:
        """Terminate the persistent worker pool (idempotent).

        Safe to call from ``__del__`` at interpreter shutdown: a runner
        collected that late may find ``multiprocessing``'s module
        globals already set to ``None``, which surfaces as
        ``AttributeError``/``TypeError`` from ``terminate``/``join`` —
        the pool is dropped regardless and the OS reaps the workers.
        """
        pool = getattr(self, "_pool", None)
        self._pool = None
        self._pool_workers = 0
        if pool is None:
            return
        try:
            pool.terminate()
            pool.join()
        except (AttributeError, TypeError):  # pragma: no cover - shutdown races
            pass

    def _ensure_pool(self, needed: int):
        """The persistent pool, sized to the demand actually seen.

        The first parallel batch sizes the pool to min(jobs, batch);
        a later, larger batch grows it once to the full ``jobs`` —
        small sweeps never fork workers that would sit idle.
        """
        workers = min(self.jobs, needed)
        if self._pool is not None and self._pool_workers < workers:
            self.close()
        if self._pool is None:
            context = multiprocessing.get_context(self.mp_context)
            self._pool_workers = max(workers, 1)
            self._pool = context.Pool(processes=self._pool_workers)
        return self._pool

    @staticmethod
    def _chunksize(requests: int, workers: int) -> int:
        """Batch tasks per IPC round trip, keeping every worker busy.

        Aim for ~4 chunks per worker so stragglers still rebalance;
        chunking never affects results, only scheduling.
        """
        return max(1, requests // (workers * 4))

    def run(
        self,
        requests: Sequence[RunRequest],
        on_record: Optional[Callable[[RunRecord], None]] = None,
        store=None,
    ) -> List[RunRecord]:
        """Execute ``requests`` and return their records, in request order.

        With ``store`` (a :class:`~repro.results.store.ResultStore`),
        requests whose content key is already present come back as cache
        hits (``record.cached``) without executing, every freshly
        executed run is checkpointed into the store the moment it
        finishes, and a fully completed batch is finalized — so a killed
        sweep re-issued against the same store resumes instead of
        restarting, with artefacts byte-identical to an uninterrupted
        run (runs are pure functions of their requests). ``on_record``
        still fires in request order, for hits and fresh runs alike.
        """
        run_ids = [r.run_id for r in requests]
        if len(set(run_ids)) != len(run_ids):
            raise ValueError("duplicate run ids in batch")
        fault_after = int(os.environ.get(FAULT_ENV, "0") or 0)
        cached: Dict[str, RunRecord] = {}
        pending: List[RunRequest] = list(requests)
        if store is not None:
            pending = []
            for request in requests:
                hit = store.get(request)
                if hit is not None:
                    cached[request.run_id] = hit
                else:
                    pending.append(request)
        if self.jobs == 1 or len(pending) <= 1:
            fresh = (execute_request(request) for request in pending)
        else:
            pool = self._ensure_pool(len(pending))
            chunksize = self._chunksize(len(pending), self._pool_workers)
            fresh = pool.imap(execute_request, pending, chunksize=chunksize)
        records: List[RunRecord] = []
        executed = 0
        for request in requests:
            record = cached.get(request.run_id)
            if record is None:
                record = next(fresh)
                if store is not None:
                    store.put(record)
                executed += 1
            if on_record is not None:
                on_record(record)
            records.append(record)
            if not record.cached and fault_after and executed >= fault_after:
                raise InjectedSweepFault(
                    f"injected fault after {executed} executed run(s) "
                    f"({FAULT_ENV}={fault_after})"
                )
        if store is not None:
            store.finalize(records)
        return records


def default_jobs() -> int:
    """Worker count for ``--jobs 0``: every core the container grants."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1
