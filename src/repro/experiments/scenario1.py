"""Scenario 1 (Figures 6, 7, 8): two 8-hop flows merging at a gateway.

One shared harness runs the three-period schedule — F1 alone, F1 + F2,
F1 alone again — with and without EZ-flow, then slices the run into the
figures:

* Figure 6: windowed throughput series of F1 and F2;
* Figure 7: per-packet end-to-end (and network-path) delay series;
* Figure 8: contention-window evolution at every adapting node.

Paper reference points (full 2504 s schedule): period 1 throughput
153.2 -> 183.9 kb/s (+20 %) and delay 4.1 s -> 0.2 s with EZ-flow;
period 2 aggregate 76.5 -> 82.1 kb/s with congestion resolved; relays
settle at cw 2^4 and the sources climb to 2^7..2^11.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import attach_ezflow
from repro.experiments.common import ExperimentResult
from repro.sim.units import seconds
from repro.topology.scenario1 import (
    F1_START_S,
    F1_STOP_S,
    F2_START_S,
    F2_STOP_S,
    scenario1_network,
)

PAPER = {
    "p1_thr_std": 153.2,
    "p1_thr_ez": 183.9,
    "p1_delay_std": 4.1,
    "p1_delay_ez": 0.2,
    "p2_agg_std": 76.5,
    "p2_agg_ez": 82.1,
}


def run(
    time_scale: float = 0.2,
    seed: int = 5,
    settle_fraction: float = 0.35,
    bin_s: float = 10.0,
) -> ExperimentResult:
    """Run the scenario-1 schedule at ``time_scale`` and slice all figures.

    ``settle_fraction`` discards the head of each period before
    computing period statistics (the paper's periods are long enough to
    average over the converged regime). Use ``time_scale=1.0`` for the
    paper's exact 2504 s schedule.
    """
    result = ExperimentResult(
        "scenario1",
        "two 8-hop flows merging at a gateway (Figures 6-8)",
        parameters={"time_scale": time_scale, "seed": seed},
    )
    periods = {
        "P1 (F1 alone)": (F1_START_S, F2_START_S),
        "P2 (F1+F2)": (F2_START_S, F2_STOP_S),
        "P3 (F1 alone)": (F2_STOP_S, F1_STOP_S),
    }
    table = result.table(
        "Scenario 1 period statistics",
        ["period", "ezflow", "flow", "thr_kbps", "delay_s", "path_delay_s"],
    )
    cw_table = result.table(
        "Figure 8: final contention windows",
        ["ezflow", "node", "successor", "cw"],
    )
    for ezflow in (False, True):
        network = scenario1_network(seed=seed, time_scale=time_scale)
        controllers = attach_ezflow(network.nodes) if ezflow else {}
        network.run(until_us=seconds(F1_STOP_S * time_scale))
        result.note_runtime(network.engine)
        tag = "ez" if ezflow else "std"
        for period, (raw_start, raw_stop) in periods.items():
            start_s = raw_start * time_scale
            stop_s = raw_stop * time_scale
            settled = seconds(start_s + settle_fraction * (stop_s - start_s))
            stop = seconds(stop_s)
            for flow_id in ("F1", "F2"):
                flow = network.flow(flow_id)
                if not (flow.start_us < stop and (flow.stop_us or stop) > settled):
                    continue
                table.add(
                    period,
                    "on" if ezflow else "off",
                    flow_id,
                    flow.throughput_bps(settled, stop) / 1000.0,
                    flow.mean_delay_s(settled, stop),
                    flow.mean_path_delay_s(settled, stop),
                )
        horizon = seconds(F1_STOP_S * time_scale)
        for flow_id in ("F1", "F2"):
            flow = network.flow(flow_id)
            result.series[f"fig6.{tag}.{flow_id}.throughput_kbps"] = (
                flow.throughput_series_kbps(0, horizon, bin_s=bin_s * max(time_scale, 0.05))
            )
            result.series[f"fig7.{tag}.{flow_id}.delay_s"] = flow.delay_series_s(0, horizon)
            result.series[f"fig7.{tag}.{flow_id}.path_delay_s"] = (
                flow.path_delay_series_s(0, horizon)
            )
        if ezflow:
            for node_id, controller in sorted(controllers.items(), key=lambda kv: str(kv[0])):
                for successor, caa in controller.caas.items():
                    cw_table.add("on", node_id, successor, caa.cw)
                    key = f"ezflow.node{node_id}.to{successor}.cw"
                    series = network.trace.get(key)
                    if len(series):
                        result.series[f"fig8.cw.node{node_id}"] = [
                            (t / 1e6, v) for t, v in series
                        ]
    result.notes.append(
        "paper (full schedule): P1 153->184 kb/s, delay 4.1->0.2 s; "
        "P2 aggregate 76.5->82.1 kb/s; relays at 2^4, sources 2^7..2^11"
    )
    return result
