"""Scenario 2 (Figures 10, 11 and Table 3): three flows, hidden sources.

One harness runs the three-period schedule — (F1, F2), (F1, F2, F3),
F1 alone — with and without EZ-flow:

* Table 3: per-period mean throughput, throughput standard deviation
  and Jain fairness index;
* Figure 10: per-flow delay series;
* Figure 11: contention-window evolution at the first two nodes of each
  flow.

Paper reference (full 4500 s schedule): period 1 FI 0.75 -> 1.00;
period 2 aggregate 188.2 -> 304.6 kb/s (+62 %) and FI 0.64 -> 0.80 with
delays cut by an order of magnitude; period 3 F1 150 -> 180 kb/s.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core import attach_ezflow
from repro.experiments.common import ExperimentResult
from repro.metrics.fairness import jain_fairness_index
from repro.metrics.stats import stddev
from repro.sim.units import seconds
from repro.topology.scenario2 import (
    F1_STOP_S,
    F3_START_S,
    F3_STOP_S,
    scenario2_network,
)

#: (period, flow, ezflow) -> paper mean throughput (kb/s), from Table 3.
PAPER_THROUGHPUT = {
    ("P1", "F1", False): 145.6,
    ("P1", "F2", False): 39.9,
    ("P2", "F1", False): 129.9,
    ("P2", "F2", False): 31.0,
    ("P2", "F3", False): 27.3,
    ("P3", "F1", False): 150.0,
    ("P1", "F1", True): 89.9,
    ("P1", "F2", True): 100.3,
    ("P2", "F1", True): 29.5,
    ("P2", "F2", True): 139.7,
    ("P2", "F3", True): 135.4,
    ("P3", "F1", True): 179.9,
}
PAPER_FI = {
    ("P1", False): 0.75,
    ("P2", False): 0.64,
    ("P1", True): 1.00,
    ("P2", True): 0.80,
}

PERIOD_FLOWS = {"P1": ("F1", "F2"), "P2": ("F1", "F2", "F3"), "P3": ("F1",)}


def run(
    time_scale: float = 0.1,
    seed: int = 6,
    settle_fraction: float = 0.35,
    bin_s: float = 10.0,
) -> ExperimentResult:
    """Run the scenario-2 schedule at ``time_scale`` and slice everything.

    Use ``time_scale=1.0`` for the paper's exact 4500 s schedule.
    """
    result = ExperimentResult(
        "scenario2",
        "three crossing flows with hidden sources (Figures 10-11, Table 3)",
        parameters={"time_scale": time_scale, "seed": seed},
    )
    periods = {
        "P1": (5.0, F3_START_S),
        "P2": (F3_START_S, F3_STOP_S),
        "P3": (F3_STOP_S, F1_STOP_S),
    }
    table = result.table(
        "Table 3",
        [
            "period",
            "ezflow",
            "flow",
            "paper_kbps",
            "measured_kbps",
            "measured_sd",
            "jain_fi",
            "path_delay_s",
        ],
    )
    cw_table = result.table(
        "Figure 11: final contention windows (first two nodes per flow)",
        ["ezflow", "node", "successor", "cw"],
    )
    for ezflow in (False, True):
        network = scenario2_network(seed=seed, time_scale=time_scale)
        controllers = attach_ezflow(network.nodes) if ezflow else {}
        network.run(until_us=seconds(F1_STOP_S * time_scale))
        result.note_runtime(network.engine)
        tag = "ez" if ezflow else "std"
        for period, (raw_start, raw_stop) in periods.items():
            start_s = raw_start * time_scale
            stop_s = raw_stop * time_scale
            settled = seconds(start_s + settle_fraction * (stop_s - start_s))
            stop = seconds(stop_s)
            throughputs = {}
            for flow_id in PERIOD_FLOWS[period]:
                flow = network.flow(flow_id)
                throughputs[flow_id] = flow.throughput_bps(settled, stop) / 1000.0
            fi = (
                jain_fairness_index(throughputs.values())
                if len(throughputs) > 1
                else None
            )
            for flow_id in PERIOD_FLOWS[period]:
                flow = network.flow(flow_id)
                rates = [
                    r
                    for _, r in flow.throughput_series_kbps(
                        settled, stop, bin_s=bin_s * max(time_scale, 0.05)
                    )
                ]
                table.add(
                    period,
                    "on" if ezflow else "off",
                    flow_id,
                    PAPER_THROUGHPUT.get((period, flow_id, ezflow), float("nan")),
                    throughputs[flow_id],
                    stddev(rates),
                    f"{fi:.2f}" if fi is not None else "-",
                    flow.mean_path_delay_s(settled, stop),
                )
        horizon = seconds(F1_STOP_S * time_scale)
        for flow_id in ("F1", "F2", "F3"):
            flow = network.flow(flow_id)
            result.series[f"fig10.{tag}.{flow_id}.delay_s"] = flow.delay_series_s(0, horizon)
            result.series[f"fig10.{tag}.{flow_id}.path_delay_s"] = (
                flow.path_delay_series_s(0, horizon)
            )
        if ezflow:
            for node_id in (0, 1, 10, 11, 19, 20):
                controller = controllers.get(node_id)
                if controller is None:
                    continue
                for successor, caa in controller.caas.items():
                    cw_table.add("on", node_id, successor, caa.cw)
                    key = f"ezflow.node{node_id}.to{successor}.cw"
                    series = network.trace.get(key)
                    if len(series):
                        result.series[f"fig11.cw.node{node_id}"] = [
                            (t / 1e6, v) for t, v in series
                        ]
    result.notes.append(
        "paper (full schedule): P2 aggregate 188.2 -> 304.6 kb/s (+62%), "
        "FI 0.64 -> 0.80, delays cut by an order of magnitude"
    )
    return result
