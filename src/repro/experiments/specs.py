"""Scenario specifications: the declarative experiment catalogue.

Every paper experiment is described by a :class:`ScenarioSpec` — its id,
entry point, and an explicit parameter schema — instead of being a bare
callable. The schema is what lets the CLI validate options *before*
calling into a harness (no more ``except TypeError`` guessing), lets the
sweep runner build parameter grids mechanically, and lets ``list`` print
a catalogue without importing the (heavy) harness modules: entry points
are ``"module:function"`` strings resolved lazily, which also makes
specs trivially picklable for multiprocessing workers.
"""

from __future__ import annotations

import importlib
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.experiments.common import ExperimentResult


class UnknownExperimentError(KeyError):
    """An experiment id that is not in the catalogue.

    Subclasses KeyError so existing ``except KeyError`` callers keep
    working, while the CLI can catch registry misses specifically
    without swallowing KeyErrors raised inside experiment harnesses.
    """


class UnknownParameterError(ValueError):
    """A kwarg was supplied that the scenario does not declare."""


class ParameterValueError(ValueError):
    """A kwarg value could not be coerced to the declared kind."""


#: Parsers for the declared parameter kinds. Sequence kinds accept
#: comma-separated CLI text ("16,32,64") and pass python sequences
#: through untouched.
_KIND_PARSERS: Dict[str, Callable[[str], object]] = {
    "int": int,
    "float": float,
    "str": str,
    "ints": lambda text: tuple(int(v) for v in str(text).split(",") if v != ""),
    "floats": lambda text: tuple(float(v) for v in str(text).split(",") if v != ""),
}


@dataclass(frozen=True)
class Param:
    """One declared parameter of a scenario."""

    name: str
    kind: str  # "int" | "float" | "str" | "ints" | "floats"
    default: object
    help: str = ""

    def __post_init__(self):
        if self.kind not in _KIND_PARSERS:
            raise ValueError(f"unknown parameter kind {self.kind!r}")

    def coerce(self, value: object) -> object:
        """Coerce a CLI string (or passthrough value) to the declared kind."""
        if isinstance(value, str):
            try:
                return _KIND_PARSERS[self.kind](value)
            except ValueError as error:
                raise ParameterValueError(
                    f"parameter {self.name!r}: cannot parse {value!r} as {self.kind}"
                ) from error
        if self.kind in ("ints", "floats") and isinstance(value, (list, tuple)):
            return tuple(value)
        return value


@dataclass(frozen=True)
class ScenarioSpec:
    """A runnable scenario: id, lazy entry point, parameter schema.

    ``sweep_defaults`` declares grid axes a bare ``sweep`` of this
    scenario expands by default (e.g. meshgen sweeps all topology kinds
    unless the CLI pins one). Stored as ((name, (value, ...)), ...) so
    the spec stays hashable and picklable.
    """

    id: str
    entry: str  # "package.module:function", resolved on demand
    description: str
    params: Tuple[Param, ...] = ()
    aliases: Tuple[str, ...] = ()
    sweep_defaults: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    #: Engine tiers this scenario can execute on (the ``fidelity``
    #: axis). Every scenario runs on the event core; families that also
    #: support a fast tier list it here so ``list --json`` consumers can
    #: discover the axis without trying a run.
    fidelities: Tuple[str, ...] = ("event",)

    def resolve(self) -> Callable[..., ExperimentResult]:
        """Import and return the entry-point callable."""
        module_name, _, attr = self.entry.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, attr)

    def param_names(self) -> Tuple[str, ...]:
        """Names of all declared parameters, in declaration order."""
        return tuple(p.name for p in self.params)

    def param(self, name: str) -> Param:
        """The declared parameter ``name`` (UnknownParameterError if absent)."""
        for p in self.params:
            if p.name == name:
                return p
        raise UnknownParameterError(
            f"{self.id}: unknown parameter {name!r}; "
            f"declared: {', '.join(self.param_names()) or '(none)'}"
        )

    def validate(self, kwargs: Mapping[str, object]) -> Dict[str, object]:
        """Check every kwarg against the schema and coerce its value.

        Raises :class:`UnknownParameterError` for undeclared names, so a
        typo is reported as such instead of masking ``TypeError``s raised
        inside the experiment.
        """
        validated: Dict[str, object] = {}
        for name, value in kwargs.items():
            validated[name] = self.param(name).coerce(value)
        return validated

    def defaults(self) -> Dict[str, object]:
        """The declared default value of every parameter."""
        return {p.name: p.default for p in self.params}

    def derive_seed(self, base_seed: int, index: int) -> int:
        """Deterministic per-run seed for replicate ``index`` of a sweep.

        Mixes the base seed with the scenario id and the run index the
        same way :class:`~repro.sim.rng.RngRegistry` mixes stream names,
        so the seed depends only on (base_seed, id, index) — never on
        worker count or completion order.
        """
        tag = zlib.crc32(f"{self.id}:{index}".encode())
        return (int(base_seed) * 1_000_003 + tag) % (2**31 - 1)

    def run(self, **kwargs) -> ExperimentResult:
        """Validate kwargs and execute the scenario."""
        return self.resolve()(**self.validate(kwargs))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe catalogue entry: id, params, defaults, sweep axes.

        This is what ``python -m repro.experiments list --json`` emits,
        so the Study builder and external tools can introspect the
        catalogue without importing any harness module (sequence-kind
        defaults render as lists).
        """

        def jsonable(value: object) -> object:
            return list(value) if isinstance(value, tuple) else value

        return {
            "id": self.id,
            "description": self.description,
            "entry": self.entry,
            "aliases": list(self.aliases),
            "params": [
                {
                    "name": p.name,
                    "kind": p.kind,
                    "default": jsonable(p.default),
                    "help": p.help,
                }
                for p in self.params
            ],
            "sweep_defaults": [
                {"name": name, "values": [jsonable(v) for v in values]}
                for name, values in self.sweep_defaults
            ],
            "fidelities": list(self.fidelities),
        }


def _seed(default: int) -> Param:
    return Param("seed", "int", default, "master RNG seed")


def _duration(default: float) -> Param:
    return Param("duration_s", "float", default, "run duration in seconds")


def _warmup(default: float) -> Param:
    return Param("warmup_s", "float", default, "discarded warm-up prefix in seconds")


SPECS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        id="fig1",
        entry="repro.experiments.fig1:run",
        description="3- vs 4-hop buffer evolution (Figure 1)",
        params=(
            _duration(300.0),
            _seed(1),
            _warmup(30.0),
            Param("sample_interval_s", "float", 1.0, "buffer sampling period"),
        ),
    ),
    ScenarioSpec(
        id="table1",
        entry="repro.experiments.table1:run",
        description="testbed link capacities (Table 1)",
        params=(_duration(120.0), _seed(1), _warmup(10.0)),
    ),
    ScenarioSpec(
        id="fig4",
        entry="repro.experiments.fig4:run",
        description="testbed buffer evolution with/without EZ-flow (Figure 4)",
        params=(
            _duration(400.0),
            _seed(4),
            _warmup(60.0),
            Param("sample_interval_s", "float", 1.0, "buffer sampling period"),
        ),
    ),
    ScenarioSpec(
        id="table2",
        entry="repro.experiments.table2:run",
        description="testbed throughput/smoothness/fairness (Table 2)",
        params=(_duration(400.0), _seed(4), _warmup(60.0)),
    ),
    ScenarioSpec(
        id="scenario1",
        entry="repro.experiments.scenario1:run",
        description="merge topology schedule (Figures 6, 7, 8)",
        aliases=("fig6", "fig7", "fig8"),
        params=(
            Param("time_scale", "float", 0.2, "schedule compression (1.0 = paper)"),
            _seed(5),
            Param("settle_fraction", "float", 0.35, "discarded head of each period"),
            Param("bin_s", "float", 10.0, "throughput bin width in seconds"),
        ),
    ),
    ScenarioSpec(
        id="scenario2",
        entry="repro.experiments.scenario2:run",
        description="three-flow topology schedule (Figures 10, 11, Table 3)",
        aliases=("fig10", "fig11", "table3"),
        params=(
            Param("time_scale", "float", 0.1, "schedule compression (1.0 = paper)"),
            _seed(6),
            Param("settle_fraction", "float", 0.35, "discarded head of each period"),
            Param("bin_s", "float", 10.0, "throughput bin width in seconds"),
        ),
    ),
    ScenarioSpec(
        id="stability",
        entry="repro.experiments.stability:run",
        description="Table 4 activation patterns + Theorem 1 drift",
        aliases=("table4",),
        params=(
            Param("slots", "int", 200_000, "winner-process sample count"),
            _seed(7),
            Param("cw", "ints", (16, 16, 16, 16), "per-node contention windows"),
            Param("trials", "int", 1000, "random-walk trial count"),
            Param("hops", "int", 4, "chain length in hops"),
        ),
    ),
    ScenarioSpec(
        id="loadsweep",
        entry="repro.experiments.loadsweep:run",
        description="offered-load sweep with/without EZ-flow",
        params=(
            _duration(200.0),
            _seed(3),
            _warmup(60.0),
            Param("hops", "int", 4, "chain length in hops"),
            Param(
                "loads_kbps",
                "floats",
                (50.0, 100.0, 150.0, 250.0, 500.0, 1000.0, 2000.0),
                "offered loads (kb/s)",
            ),
        ),
    ),
    ScenarioSpec(
        id="meshgen",
        entry="repro.experiments.meshgen:run",
        description="generated-topology family: random mesh / grid / multi-gateway tree",
        params=(
            Param("topology", "str", "mesh", "generator kind: mesh | grid | tree"),
            Param("nodes", "int", 16, "node count"),
            Param("density", "float", 1.5, "mesh density (~pi*density neighbours/node)"),
            Param("gateways", "int", 2, "gateway count"),
            Param("flows", "int", 4, "sampled source->gateway flows"),
            Param("workload", "str", "cbr", "cbr | onoff | windowed | mixed"),
            Param("algorithm", "str", "none", "none | ezflow | diffq | penalty"),
            Param("rate_kbps", "float", 400.0, "per-flow offered load (kb/s)"),
            _duration(30.0),
            _warmup(5.0),
            _seed(11),
            Param(
                "loss",
                "str",
                "",
                "per-link loss model: iid:P | ge:PGB:PBG[:PBAD[:PGOOD]] (empty = lossless)",
            ),
            Param(
                "churn",
                "str",
                "",
                "churn/mobility schedule, '+'-joined events: "
                "down:N@T | up:N@T | move:N@T:X:Y (empty = static)",
            ),
            Param(
                "fidelity",
                "str",
                "event",
                "engine tier: event (per-frame core) | slotted (fast tier)",
            ),
        ),
        sweep_defaults=(("topology", ("mesh", "grid", "tree")),),
        fidelities=("event", "slotted"),
    ),
    ScenarioSpec(
        id="bidirectional",
        entry="repro.experiments.bidirectional:run",
        description="reliable-transport window sweep on the K-hop chain",
        params=(
            _duration(200.0),
            _seed(3),
            _warmup(60.0),
            Param("hops", "int", 4, "chain length in hops"),
            Param("windows", "ints", (4, 16, 64), "transport window sizes"),
        ),
    ),
)


_BY_ID: Dict[str, ScenarioSpec] = {}
for _spec in SPECS:
    _BY_ID[_spec.id] = _spec
    for _alias in _spec.aliases:
        _BY_ID[_alias] = _spec


def spec_ids(include_aliases: bool = True):
    """All known scenario ids (primary ids and figure/table aliases)."""
    if include_aliases:
        return sorted(_BY_ID)
    return sorted(spec.id for spec in SPECS)


def catalogue() -> Dict[str, object]:
    """The whole scenario catalogue as one JSON-safe document.

    Schema-versioned so downstream tooling can detect layout changes;
    experiments appear in declaration (= ``list``) order. Version 2
    added the per-scenario ``fidelities`` list (engine tiers).
    """
    return {
        "schema": "repro.experiments/catalogue/2",
        "experiments": [spec.to_dict() for spec in SPECS],
    }


def get_spec(spec_id: str) -> ScenarioSpec:
    """Resolve a scenario id (aliases included) to its spec."""
    try:
        return _BY_ID[spec_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {spec_id!r}; known: {', '.join(spec_ids())}"
        ) from None
