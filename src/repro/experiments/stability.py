"""Section 6: Table 4 and the Theorem 1 stability verification.

Three pieces:

* the exact Table 4 activation distributions per region (printed for a
  chosen cw configuration, cross-checked against the general winner
  process);
* the Foster-Lyapunov k-step drift of Theorem 1 in every region outside
  the finite set S, with the paper's k values;
* a long random-walk contrast: relay buffers under EZ-flow stay
  bounded while fixed-cw standard 802.11 diverges (the 4-hop
  instability of [9]).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis import (
    EZFlowRule,
    FixedCwRule,
    ModelConfig,
    SlottedChainModel,
    activation_distribution,
    table4_distribution,
    verify_theorem1,
)
from repro.analysis.regions import REGIONS_4HOP
from repro.experiments.common import ExperimentResult

INF = float("inf")


def run(
    slots: int = 200_000,
    seed: int = 7,
    cw: Sequence[int] = (16, 16, 16, 16),
    trials: int = 1000,
    hops: int = 4,
) -> ExperimentResult:
    """Regenerate Table 4 and verify Theorem 1 numerically."""
    result = ExperimentResult(
        "stability",
        "Table 4 activation distributions and Theorem 1 drift verification",
        parameters={"slots": slots, "seed": seed, "cw": tuple(cw)},
    )

    table4 = result.table(
        "Table 4 (activation distribution per region)",
        ["region", "pattern", "closed_form", "winner_process"],
    )
    for region, signature in REGIONS_4HOP.items():
        buffers = [INF] + [10.0 if s else 0.0 for s in signature]
        closed = table4_distribution(region, cw)
        process = activation_distribution(buffers, cw, 4)
        for pattern in sorted(set(closed) | set(process)):
            table4.add(
                region,
                "".join(map(str, pattern)),
                closed.get(pattern, 0.0),
                process.get(pattern, 0.0),
            )

    drift_table = result.table(
        "Theorem 1: k-step Foster drift outside S",
        ["region", "k", "state", "drift", "negative"],
    )
    for report in verify_theorem1(trials=trials, seed=seed):
        drift_table.add(
            report.region,
            report.k,
            str(tuple(int(b) for b in report.buffers)),
            f"{report.drift:+.6f}",
            report.negative,
        )

    walk_table = result.table(
        "Random walk: EZ-flow vs fixed-cw 802.11",
        ["rule", "slots", "max_b1", "final_buffers", "delivered"],
    )
    cfg = ModelConfig(hops=hops)
    for rule, label in ((FixedCwRule(), "802.11 fixed cw"), (EZFlowRule(cfg), "EZ-flow")):
        model = SlottedChainModel(cfg, rule=rule, seed=seed)
        max_b1 = 0.0
        record = max(1, slots // 400)
        trajectory = model.run(slots, record_every=record)
        for _, buffers in trajectory:
            max_b1 = max(max_b1, buffers[0])
        walk_table.add(
            label,
            slots,
            int(max_b1),
            str(tuple(int(b) for b in model.relay_buffers)),
            model.delivered,
        )
        result.series[f"walk.{label.replace(' ', '_')}.b1"] = [
            (float(slot), buffers[0]) for slot, buffers in trajectory
        ]
    result.notes.append(
        "Theorem 1 holds numerically when every drift is negative; the "
        "fixed-cw walk's b1 grows linearly (unstable) while EZ-flow's "
        "stays bounded"
    )
    return result
