"""Table 1: per-link capacity of the testbed's 7-hop flow F1.

The paper measures each link l0..l6 in isolation over 1200 s and finds
heterogeneous capacities with l2 (N2 -> N3) the bottleneck at 408 kb/s.
We reproduce the measurement procedure: each link is saturated alone
(one-hop flow between its endpoints over the calibrated lossy channel)
and its throughput measured. Paper-vs-measured columns make the
calibration honest — the shape to check is the ordering and the clear
l2 minimum.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.net.flow import Flow
from repro.sim.units import seconds
from repro.topology.builders import build_network
from repro.topology.testbed import (
    CHAIN,
    TESTBED_LINK_RATES_KBPS,
    testbed_connectivity,
    _erasure_for_rate,
)
from repro.traffic.sources import CbrSource
from repro.metrics.stats import stddev


def run(
    duration_s: float = 120.0,
    seed: int = 1,
    warmup_s: float = 10.0,
) -> ExperimentResult:
    """Measure every link of F1 in isolation (paper: 1200 s each)."""
    result = ExperimentResult(
        "table1",
        "isolated capacity of testbed links l0..l6",
        parameters={"duration_s": duration_s, "seed": seed},
    )
    table = result.table(
        "Table 1: link capacities",
        ["link", "paper_kbps", "measured_kbps", "measured_sd_kbps"],
    )
    best = max(TESTBED_LINK_RATES_KBPS)
    for i, paper_rate in enumerate(TESTBED_LINK_RATES_KBPS):
        src, dst = CHAIN[i], CHAIN[i + 1]
        network = build_network(testbed_connectivity(), seed=seed + i)
        network.channel.set_link_loss(src, dst, _erasure_for_rate(paper_rate, best))
        network.routing.install_path([src, dst])
        flow = Flow(f"l{i}", src=src, dst=dst)
        network.flows[flow.flow_id] = flow
        network.nodes[dst].register_flow(flow)
        network.sources.append(
            CbrSource(network.engine, network.nodes[src], flow, 2_000_000.0, 1000)
        )
        network.run(until_us=seconds(duration_s))
        result.note_runtime(network.engine)
        start, end = seconds(warmup_s), seconds(duration_s)
        measured = flow.throughput_bps(start, end) / 1000.0
        rates = [r for _, r in flow.throughput_series_kbps(start, end, bin_s=10.0)]
        table.add(f"l{i}", paper_rate, measured, stddev(rates))
    measured_col = table.column("measured_kbps")
    bottleneck = measured_col.index(min(measured_col))
    result.notes.append(
        f"paper bottleneck: l2 (408 kb/s); measured bottleneck: l{bottleneck} "
        f"({min(measured_col):.0f} kb/s)"
    )
    return result
