"""Table 2: testbed throughput, smoothness and fairness, ± EZ-flow.

Three testbed scenarios — F1 alone, F2 alone, and the parking lot with
both flows — each run with standard 802.11 and with EZ-flow. The paper
reports (mean throughput, throughput standard deviation, Jain index):

* F1 alone: 119 -> 148 kb/s;
* F2 alone: 157 -> 185 kb/s;
* parking lot: (7, 143) FI 0.55 -> (71, 110) FI 0.96 — EZ-flow cures
  the starvation of the long flow.

Shape checks: EZ-flow raises single-flow throughput, un-starves F1 in
the parking lot, and raises the fairness index.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import ExperimentResult, throughput_gain
from repro.experiments.testbedlab import testbed_simulation
from repro.metrics.fairness import jain_fairness_index
from repro.metrics.stats import summarize_flow
from repro.sim.units import seconds

#: (scenario, flow, ezflow) -> paper mean throughput in kb/s.
PAPER_THROUGHPUT = {
    ("F1 alone", "F1", False): 119.0,
    ("F1 alone", "F1", True): 148.0,
    ("F2 alone", "F2", False): 157.0,
    ("F2 alone", "F2", True): 185.0,
    ("parking lot", "F1", False): 7.0,
    ("parking lot", "F2", False): 143.0,
    ("parking lot", "F1", True): 71.0,
    ("parking lot", "F2", True): 110.0,
}
PAPER_FI = {(False): 0.55, (True): 0.96}

SCENARIOS: Dict[str, Tuple[str, ...]] = {
    "F1 alone": ("F1",),
    "F2 alone": ("F2",),
    "parking lot": ("F1", "F2"),
}


def run(
    duration_s: float = 400.0,
    seed: int = 4,
    warmup_s: float = 60.0,
) -> ExperimentResult:
    """Reproduce Table 2 (scaled duration; paper measures 1800 s)."""
    result = ExperimentResult(
        "table2",
        "testbed throughput / smoothness / fairness with and without EZ-flow",
        parameters={"duration_s": duration_s, "seed": seed},
    )
    table = result.table(
        "Table 2",
        [
            "scenario",
            "ezflow",
            "flow",
            "paper_kbps",
            "measured_kbps",
            "measured_sd",
            "jain_fi",
        ],
    )
    start, end = seconds(warmup_s), seconds(duration_s)
    gains = []
    for scenario, flows in SCENARIOS.items():
        for ezflow in (False, True):
            # Shared with Figure 4 (same seed/duration) via testbedlab.
            network = testbed_simulation(seed, flows, duration_s, ezflow).network
            result.note_runtime(network.engine)
            stats = {f: summarize_flow(network.flow(f), start, end) for f in flows}
            fi = (
                jain_fairness_index(
                    [s.mean_throughput_kbps for s in stats.values()]
                )
                if len(flows) > 1
                else None
            )
            for flow_id in flows:
                s = stats[flow_id]
                table.add(
                    scenario,
                    "on" if ezflow else "off",
                    flow_id,
                    PAPER_THROUGHPUT[(scenario, flow_id, ezflow)],
                    s.mean_throughput_kbps,
                    s.stddev_throughput_kbps,
                    f"{fi:.2f}" if fi is not None else "-",
                )
            gains.append((scenario, ezflow, sum(s.mean_throughput_kbps for s in stats.values())))
    for scenario in SCENARIOS:
        off = next(g for s, e, g in gains if s == scenario and not e)
        on = next(g for s, e, g in gains if s == scenario and e)
        result.notes.append(
            f"{scenario}: aggregate gain {throughput_gain(off, on):+.0f}% with EZ-flow"
        )
    result.notes.append("paper fairness: parking lot FI 0.55 (802.11) -> 0.96 (EZ-flow)")
    return result
