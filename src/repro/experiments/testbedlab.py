"""Shared, memoised testbed simulations for the testbed experiments.

Figure 4 and Table 2 are different *views* of the same physical runs:
both simulate the 9-node testbed at the same seed and duration, with and
without EZ-flow — Figure 4 reads relay-buffer evolution, Table 2 reads
flow throughput/fairness. Running ``all`` used to execute the four
shared (flows, ezflow) combinations twice.

``testbed_simulation`` runs each unique (seed, flows, duration, ezflow)
combination once per process and caches the finished network plus a
buffer sampler covering every relay. The sampler is attached on *every*
path (cache hit or miss), so an experiment sees identical numbers
whether it triggered the run or reused it — which also keeps parallel
sweeps (separate worker processes, no shared cache) byte-identical to
serial ones.

The cache is a small LRU: one ``all`` pass needs six unique runs; the
cap only matters for long interactive sessions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core import attach_ezflow
from repro.metrics.sampling import BufferSampler
from repro.sim.units import seconds
from repro.topology.builders import Network
from repro.topology.testbed import testbed_network

#: All relay nodes of the two testbed flows (Figure 3 topology).
RELAY_NODES: Tuple[str, ...] = ("N1", "N2", "N3", "N4", "N5", "N6")

_CACHE_CAP = 12


@dataclass
class TestbedRun:
    """One finished testbed simulation plus its relay-buffer sampler."""

    network: Network
    sampler: BufferSampler
    seed: int
    flows: Tuple[str, ...]
    duration_s: float
    ezflow: bool


_cache: "OrderedDict[Tuple, TestbedRun]" = OrderedDict()


def clear_cache() -> None:
    """Drop all memoised runs (tests; memory-sensitive callers)."""
    _cache.clear()


def testbed_simulation(
    seed: int,
    flows: Tuple[str, ...],
    duration_s: float,
    ezflow: bool,
    sample_interval_s: float = 1.0,
) -> TestbedRun:
    """The finished testbed run for this configuration (memoised).

    The buffer sampler is started before traffic sources, watching every
    relay node, and samples at ``sample_interval_s`` — callers that only
    need flow statistics simply ignore it. ``sample_interval_s`` is part
    of the cache key so a non-default sampling grid never aliases.
    """
    key = (int(seed), tuple(flows), float(duration_s), bool(ezflow), float(sample_interval_s))
    run = _cache.get(key)
    if run is not None:
        _cache.move_to_end(key)
        return run
    network = testbed_network(seed=seed, flows=tuple(flows))
    if ezflow:
        attach_ezflow(network.nodes)
    sampler = BufferSampler(
        network.engine,
        network.trace,
        network.nodes,
        RELAY_NODES,
        sample_interval_s,
    )
    sampler.start()
    network.run(until_us=seconds(duration_s))
    run = TestbedRun(
        network=network,
        sampler=sampler,
        seed=int(seed),
        flows=tuple(flows),
        duration_s=float(duration_s),
        ezflow=bool(ezflow),
    )
    _cache[key] = run
    while len(_cache) > _CACHE_CAP:
        _cache.popitem(last=False)
    return run
