"""Engine-tier adapters: one scenario IR, two execution back ends.

:data:`EVENT_TIER` is the historical generated-topology harness body —
the full event core (per-frame MAC/PHY, controllers, tracing) — moved
behind the :class:`~repro.sim.tiers.EngineTier` boundary. Its call
sequence, RNG stream usage and result construction are unchanged, so
``fidelity=event`` exports stay byte-identical to the pre-refactor
harness.

:data:`SLOTTED_TIER` executes the same IR on the slot-synchronous core
(:mod:`repro.sim.slotted`): topology, routes, sampled flows and the
algorithm's cw law are identical *scenario* semantics; the physics is
one contention phase per calibrated slot. Both tiers emit through the
same :class:`~repro.experiments.common.ExperimentResult` surface —
same tables, same summary metric names — so the results layer compares
tiers like any other swept axis and
:mod:`repro.results.validation` can measure their agreement.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.baselines.diffq import DIFFQ_HEADER_BYTES, DiffQConfig, attach_diffq
from repro.baselines.penalty import PenaltyStrategy, apply_penalty
from repro.core import attach_ezflow
from repro.experiments.common import ExperimentResult
from repro.experiments.ir import (
    PENALTY_Q,
    MeshScenarioIR,
    base_parameters,
    sample_flow_sources,
)
from repro.mac.dcf import DcfConfig
from repro.mac.frames import MAC_DATA_HEADER_BYTES
from repro.metrics.fairness import jain_fairness_index
from repro.metrics.occupancy import group_mean_series, mean_occupancy_by_group
from repro.metrics.sampling import BufferSampler
from repro.net.node import FWD, OWN
from repro.phy.linkstate import apply_loss_models, link_stream_name
from repro.results.metrics import MESHGEN_SUMMARY_COLUMNS
from repro.sim.rng import RngRegistry
from repro.sim.slotted import DiffQCw, EZFlowCw, FixedCw, SlottedFlow, SlottedMesh
from repro.sim.tiers import EngineTier
from repro.sim.units import seconds
from repro.telemetry.probe import current_probe
from repro.topology.churn import ChurnDriver, ChurnEvent, ChurnSpecError
from repro.topology.meshgen import bfs_tree, build_mesh_network, generate_topology, mean_degree
from repro.traffic.workloads import WorkloadSpec, attach_workload

#: The meshgen family's closing note (shared verbatim by both tiers so
#: the event tier's exported bytes cannot drift).
_EXPECTED_SHAPE_NOTE = (
    "expected shape: ezflow holds fairness and aggregate goodput with "
    "near-empty relay rings; none lets rings closest to the gateways "
    "build backlog; diffq pays header overhead; penalty depends on "
    "whether q=1/8 suits the generated depth"
)


def _materialise_queues(network, topo, attached) -> None:
    """Create every MAC queue/entity a flow's path will use, up front.

    Node stacks create transmit entities lazily on first packet, so a
    static strategy applied before traffic starts (penalty pins CWmin on
    existing entities) would otherwise see an empty MAC and silently do
    nothing. Windowed flows also need their reverse-path queues for the
    ACK stream.
    """
    for item in attached:
        flow = item.flow
        paths = [topo.route_to_gateway(flow.src, flow.dst)]
        if item.kind == "windowed":
            paths.append(list(reversed(paths[0])))
        for path in paths:
            network.nodes[path[0]].queue_for(OWN, path[1])
            for here, nxt in zip(path[1:], path[2:]):
                network.nodes[here].queue_for(FWD, nxt)


class EventTier(EngineTier):
    """The event core as an engine tier (the historical harness body)."""

    name = "event"

    def run_scenario(self, ir: MeshScenarioIR) -> ExperimentResult:
        # This harness only reads the buffer sampler's series; declaring
        # that collapses every other counter/series (per-queue occupancy,
        # MAC/PHY counters, controller telemetry) to recording no-ops —
        # tracing is write-only, so exports stay byte-identical.
        network, topo = build_mesh_network(ir.mesh_spec, trace_exports=("buffer.",))
        sources = sample_flow_sources(topo, ir.flows, network.rng)
        endpoints = [(src, topo.nearest[src]) for src in sources]
        attached = attach_workload(
            network,
            endpoints,
            WorkloadSpec(kind=ir.workload, rate_bps=ir.rate_kbps * 1000.0),
            flow_prefix="M",
        )

        _materialise_queues(network, topo, attached)
        if ir.algorithm == "ezflow":
            attach_ezflow(network.nodes)
        elif ir.algorithm == "diffq":
            attach_diffq(network.nodes)
        elif ir.algorithm == "penalty":
            apply_penalty(network.nodes, sources=set(sources), q=PENALTY_Q)

        if ir.loss_spec is not None:
            apply_loss_models(network, ir.loss_spec)
        churn_driver = None
        if ir.churn_schedule is not None:
            # The driver carries the loss spec so reception edges created by
            # mobility/up events become lossy the moment they appear.
            churn_driver = ChurnDriver(network, ir.churn_schedule, loss_spec=ir.loss_spec)
            churn_driver.install()

        sampler = BufferSampler(network.engine, network.trace, network.nodes)
        sampler.start()
        session = current_probe()
        if session is None:
            network.run(until_us=seconds(ir.duration_s))
        else:
            # Probed: drive the same run in observer-sized chunks. The
            # chunked engine walk dispatches a bit-identical event
            # sequence, so attached results equal detached results.
            network.start_sources()
            duration_us = seconds(ir.duration_s)
            interval_us = max(1, seconds(session.sample_interval_s))

            def observe(now_us: int, processed: int) -> None:
                now_s = now_us / 1_000_000.0
                session.progress(now_s, processed, now_s / ir.duration_s)
                session.metric(
                    now_s,
                    "goodput_kbps",
                    {
                        str(item.flow.flow_id): item.flow.throughput_bps(0, now_us)
                        / 1000.0
                        for item in attached
                    },
                )

            network.engine.run_observed(duration_us, interval_us, observe)
        start, end = seconds(ir.warmup_s), seconds(ir.duration_s)

        result = ExperimentResult(
            "meshgen",
            ir.describe(),
            parameters=base_parameters(ir, len(endpoints)),
        )
        result.note_runtime(network.engine)

        shape = result.table(
            "Topology",
            ["kind", "nodes", "gateways", "mean_degree", "resample_attempts", "connected"],
        )
        shape.add(
            ir.topology,
            ir.nodes,
            len(topo.gateways),
            mean_degree(network.connectivity),
            topo.attempts,
            "yes",  # build_mesh_network validates; reaching here proves it
        )

        if ir.loss or churn_driver is not None:
            dynamics = result.table(
                "Dynamic link state", ["loss_model", "lossy_links", "churn_events_applied"]
            )
            dynamics.add(
                ir.loss or "none",
                # Final count: includes links churn created during the run.
                network.channel.link_model_count(),
                0 if churn_driver is None else len(churn_driver.applied),
            )

        per_flow = result.table(
            "Per-flow goodput",
            ["flow", "kind", "src", "gateway", "hops", "goodput_kbps", "path_delay_s"],
        )
        throughputs = []
        generated_total = 0
        delivered_total = 0
        for item in attached:
            flow = item.flow
            hops = topo.depths[flow.dst][flow.src]
            goodput = flow.throughput_bps(start, end) / 1000.0
            generated = flow.generated
            delivered = flow.delivered
            if item.kind == "windowed":
                # Go-back-N duplicates reach the gateway and are counted by
                # the flow's delivery accounting; only in-order progress is
                # goodput. Scale by the unique fraction and charge
                # retransmissions as generations so the ratio stays honest.
                unique = item.driver.delivered_in_order / max(1, delivered)
                goodput *= unique
                delivered = item.driver.delivered_in_order
                generated += item.driver.retransmissions
            throughputs.append(goodput)
            generated_total += generated
            delivered_total += delivered
            per_flow.add(
                str(flow.flow_id),
                item.kind,
                flow.src,
                flow.dst,
                hops,
                goodput,
                flow.mean_path_delay_s(start, end),
            )

        # Column names are the canonical scalar-metric names the results
        # layer (repro.results) compares across runs; the constant keeps
        # harness, compare tables and docs in sync without changing bytes.
        summary = result.table("Summary", list(MESHGEN_SUMMARY_COLUMNS))
        relays = sorted(n for n in topo.positions if n not in topo.gateways)
        relay_backlog = sum(network.nodes[n].total_buffer_occupancy() for n in relays)
        summary.add(
            jain_fairness_index(throughputs),
            sum(throughputs),
            delivered_total / generated_total if generated_total else 0.0,
            relay_backlog,
        )

        # Queue backlog by hop ring: every node grouped by BFS distance to
        # its nearest gateway (gateways are ring 0).
        rings: Dict[int, List[Hashable]] = {}
        for node in sorted(topo.positions):
            if node in topo.gateways:
                rings.setdefault(0, []).append(node)
            else:
                gw = topo.nearest[node]
                rings.setdefault(topo.depths[gw][node], []).append(node)
        ring_table = result.table(
            "Queue occupancy by hop", ["hop", "nodes", "mean_buffer_pkts"]
        )
        for hop, count, mean_buffer in mean_occupancy_by_group(sampler, rings, start, end):
            ring_table.add(hop, count, mean_buffer)
            result.series[f"occupancy.hop{hop}"] = group_mean_series(sampler, rings[hop])

        result.notes.append(_EXPECTED_SHAPE_NOTE)
        return result


# -- the slot-synchronous tier --------------------------------------------


def _slot_length_us(workload: WorkloadSpec, algorithm: str, config: DcfConfig) -> float:
    """Calibrated slot length: one full successful frame exchange.

    DIFS + mean CWmin backoff + data air time (MAC header + payload,
    plus the DiffQ piggyback header when that algorithm runs) + SIFS +
    ACK. Contention-window *adaptation* shifts who wins a slot (the
    1/cw weights), not the slot length — a deliberate approximation of
    the event tier's variable-length exchanges.
    """
    rates = config.rates
    payload = workload.packet_bytes + MAC_DATA_HEADER_BYTES
    if algorithm == "diffq":
        payload += DIFFQ_HEADER_BYTES
    mean_backoff_us = (config.cwmin - 1) / 2.0 * rates.slot_time_us
    return (
        rates.difs_us
        + mean_backoff_us
        + rates.frame_tx_time_us(payload)
        + rates.sifs_us
        + rates.ack_tx_time_us()
    )


def _install_loss_models(models, connectivity, spec, registry) -> int:
    """Per-directed-reception-edge loss models, incrementally.

    Mirrors :func:`repro.phy.linkstate.apply_loss_models`: repr-sorted
    enumeration, one canonical :func:`link_stream_name` stream per link
    (a pure function of the master seed), existing models kept — so
    churn re-application gives new edges a model while surviving links
    keep their burst state and stream position.
    """
    configured = 0
    for sender in sorted(connectivity.nodes(), key=repr):
        for receiver in sorted(connectivity.receivers_of(sender), key=repr):
            if (sender, receiver) in models:
                continue
            models[(sender, receiver)] = spec.build(
                registry.stream(link_stream_name(sender, receiver))
            )
            configured += 1
    return configured


def _apply_churn_event(connectivity, event: ChurnEvent) -> None:
    if event.kind == "down":
        connectivity.set_node_active(event.node, False)
    elif event.kind == "up":
        connectivity.set_node_active(event.node, True)
    else:
        connectivity.move_node(event.node, (event.x, event.y))


class SlottedTier(EngineTier):
    """The slot-synchronous fast tier: the paper's model on the IR."""

    name = "slotted"

    def run_scenario(self, ir: MeshScenarioIR) -> ExperimentResult:
        topo = generate_topology(ir.mesh_spec)
        connectivity = topo.connectivity
        # Scenario-level streams (flow sampling, onoff phases, per-link
        # loss) come from a registry on the scenario seed: stream values
        # are pure functions of (seed, name), so flow sampling matches
        # the event tier's draw for draw.
        registry = RngRegistry(ir.seed)
        sources = sample_flow_sources(topo, ir.flows, registry)
        endpoints = [(src, topo.nearest[src]) for src in sources]
        workload = WorkloadSpec(kind=ir.workload, rate_bps=ir.rate_kbps * 1000.0)

        config = DcfConfig()
        slot_us = _slot_length_us(workload, ir.algorithm, config)
        slot_s = slot_us / 1e6
        pkts_per_slot = workload.rate_bps * slot_s / (workload.packet_bytes * 8)

        flows: List[SlottedFlow] = []
        for index, (src, dst) in enumerate(endpoints):
            kind = workload.kind_for(index)
            flow_id = f"M{index}"
            flows.append(
                SlottedFlow(
                    flow_id,
                    kind,
                    src,
                    dst,
                    pkts_per_slot=pkts_per_slot if kind != "windowed" else 0.0,
                    window=workload.window if kind == "windowed" else 0,
                    stream=(
                        registry.stream(f"slotted.workload.{flow_id}")
                        if kind == "onoff"
                        else None
                    ),
                    mean_on_s=workload.mean_on_s,
                    mean_off_s=workload.mean_off_s,
                )
            )

        initial_cw: Dict[Hashable, int] = {}
        rule = FixedCw()
        if ir.algorithm == "ezflow":
            rule = EZFlowCw(mincw=config.cwmin)
        elif ir.algorithm == "diffq":
            rule = DiffQCw(DiffQConfig().cwmin_for)
        elif ir.algorithm == "penalty":
            strategy = PenaltyStrategy(PENALTY_Q)
            source_set = set(sources)
            source_cw = strategy.source_cw()
            initial_cw = {
                node: source_cw if node in source_set else strategy.cw_relay
                for node in connectivity.nodes()
            }

        loss_models: Dict[Tuple[Hashable, Hashable], object] = {}
        loss = None
        if ir.loss_spec is not None:
            _install_loss_models(loss_models, connectivity, ir.loss_spec, registry)

            def loss(sender, receiver, _models=loss_models):
                return _models.get((sender, receiver))

        churn_events: List[ChurnEvent] = []
        if ir.churn_schedule is not None:
            known = connectivity.nodes()
            for event in ir.churn_schedule.events:
                if event.node not in known:
                    raise ChurnSpecError(
                        f"churn event targets unknown node {event.node!r}"
                    )
            churn_events = ir.churn_schedule.ordered()

        model = SlottedMesh(
            connectivity,
            flows,
            rng=registry.stream("slotted.contention"),
            slot_s=slot_s,
            initial_cw=initial_cw,
            rule=rule,
            loss=loss,
            # Static runs never deactivate a node, so skip the per-node
            # liveness probe in the hot contention loop entirely.
            active_filter=None if ir.churn_schedule is None else "auto",
        )
        model.set_routes({gw: topo.parents[gw] for gw in topo.gateways})

        total_slots = int(seconds(ir.duration_s) // slot_us)
        sample_times: List[float] = []
        node_samples: Dict[Hashable, List[int]] = {n: [] for n in connectivity.nodes()}
        flow_samples: Dict[str, List[int]] = {f.flow_id: [] for f in flows}
        next_sample_s = 0.0
        delivered_at_warmup = None
        applied: List[ChurnEvent] = []
        event_index = 0
        step = model.step
        churn_count = len(churn_events)
        # Detached telemetry is one float compare per slot (inf never
        # triggers); attached, samples fire on sim-time boundaries.
        session = current_probe()
        telem_next_s = 0.0 if session is not None else float("inf")
        for slot_index in range(total_slots):
            now = slot_index * slot_s
            if now >= telem_next_s:
                session.progress(now, slot_index, now / ir.duration_s)
                if now > 0.0:
                    snapshot = model.telemetry_snapshot()
                    session.metric(
                        now,
                        "goodput_kbps",
                        {
                            flow_id: counts["delivered"]
                            * workload.packet_bytes
                            * 8
                            / now
                            / 1000.0
                            for flow_id, counts in snapshot["flows"].items()
                        },
                    )
                while telem_next_s <= now:
                    telem_next_s += session.sample_interval_s
            if event_index < churn_count and churn_events[event_index].time_s <= now:
                while (
                    event_index < len(churn_events)
                    and churn_events[event_index].time_s <= now
                ):
                    churn = churn_events[event_index]
                    _apply_churn_event(connectivity, churn)
                    if ir.loss_spec is not None:
                        _install_loss_models(
                            loss_models, connectivity, ir.loss_spec, registry
                        )
                    applied.append(churn)
                    event_index += 1
                # One reroute per event batch, against the mutated map;
                # unreachable nodes drop out of the trees and their
                # packets wait, the slotted analogue of stale routes.
                model.set_routes(
                    {gw: bfs_tree(connectivity, gw)[1] for gw in topo.gateways}
                )
            if delivered_at_warmup is None and now >= ir.warmup_s:
                delivered_at_warmup = {f.flow_id: f.delivered for f in flows}
            while now >= next_sample_s:
                backlog = model.backlog()
                per_flow_backlog = model.flow_backlog()
                sample_times.append(next_sample_s)
                for node, value in backlog.items():
                    node_samples[node].append(value)
                for flow_id, value in per_flow_backlog.items():
                    flow_samples[flow_id].append(value)
                next_sample_s += 1.0
            step(False)
        if delivered_at_warmup is None:
            delivered_at_warmup = {f.flow_id: f.delivered for f in flows}

        window_s = ir.duration_s - ir.warmup_s
        window_index = [
            i for i, t in enumerate(sample_times) if ir.warmup_s <= t <= ir.duration_s
        ]

        def window_mean(samples: List[int]) -> float:
            values = [samples[i] for i in window_index]
            return sum(values) / len(values) if values else 0.0

        result = ExperimentResult(
            "meshgen",
            ir.describe(),
            parameters=base_parameters(ir, len(endpoints)),
        )
        # One contention phase per slot is the tier's unit of work (the
        # analogue of the event count); runtime never reaches exports.
        result.runtime["events"] = float(total_slots)
        result.runtime["sim_ticks"] = float(seconds(ir.duration_s))
        result.runtime["slots"] = float(total_slots)

        shape = result.table(
            "Topology",
            ["kind", "nodes", "gateways", "mean_degree", "resample_attempts", "connected"],
        )
        shape.add(
            ir.topology,
            ir.nodes,
            len(topo.gateways),
            mean_degree(connectivity),
            topo.attempts,
            "yes",
        )

        if ir.loss or ir.churn_schedule is not None:
            dynamics = result.table(
                "Dynamic link state", ["loss_model", "lossy_links", "churn_events_applied"]
            )
            dynamics.add(ir.loss or "none", len(loss_models), len(applied))

        per_flow = result.table(
            "Per-flow goodput",
            ["flow", "kind", "src", "gateway", "hops", "goodput_kbps", "path_delay_s"],
        )
        throughputs = []
        generated_total = 0
        delivered_total = 0
        for flow, (src, dst) in zip(flows, endpoints):
            hops = topo.depths[dst][src]
            window_delivered = flow.delivered - delivered_at_warmup[flow.flow_id]
            # A zero-length window (duration == warmup) reports zero
            # goodput, matching the event tier's rate accounting.
            goodput = (
                window_delivered * workload.packet_bytes * 8 / window_s / 1000.0
                if window_s > 0
                else 0.0
            )
            # End-to-end delay by Little's law: mean in-network packets
            # over the window divided by the delivery rate.
            mean_in_flight = window_mean(flow_samples[flow.flow_id])
            delay = (
                mean_in_flight * window_s / window_delivered if window_delivered else 0.0
            )
            throughputs.append(goodput)
            generated_total += flow.generated
            delivered_total += flow.delivered
            per_flow.add(flow.flow_id, flow.kind, src, dst, hops, goodput, delay)

        summary = result.table("Summary", list(MESHGEN_SUMMARY_COLUMNS))
        relays = sorted(n for n in topo.positions if n not in topo.gateways)
        relay_backlog = sum(len(model.queues[n]) for n in relays)
        summary.add(
            jain_fairness_index(throughputs),
            sum(throughputs),
            delivered_total / generated_total if generated_total else 0.0,
            relay_backlog,
        )

        rings: Dict[int, List[Hashable]] = {}
        for node in sorted(topo.positions):
            if node in topo.gateways:
                rings.setdefault(0, []).append(node)
            else:
                gw = topo.nearest[node]
                rings.setdefault(topo.depths[gw][node], []).append(node)
        ring_table = result.table(
            "Queue occupancy by hop", ["hop", "nodes", "mean_buffer_pkts"]
        )
        for hop in sorted(rings):
            members = sorted(rings[hop], key=str)
            means = [window_mean(node_samples[node]) for node in members]
            ring_table.add(hop, len(members), sum(means) / len(means) if means else 0.0)
            result.series[f"occupancy.hop{hop}"] = [
                (t, sum(node_samples[node][i] for node in members) / len(members))
                for i, t in enumerate(sample_times)
            ]

        result.notes.append(_EXPECTED_SHAPE_NOTE)
        result.notes.append(
            "slotted tier: one contention phase per "
            f"{slot_us:.0f} us slot (winner process over live connectivity); "
            "no MAC retry limit, instant transport ACKs, fixed slot length — "
            "cross-tier deltas are measured by `validate-fidelity`"
        )
        return result


EVENT_TIER = EventTier()
SLOTTED_TIER = SlottedTier()
