"""IEEE 802.11 DCF medium access control.

Implements CSMA/CA with binary exponential backoff, DIFS/SIFS/EIFS
deferral, MAC-level acknowledgements with retransmission, receiver-side
duplicate filtering, and — the hook EZ-flow needs — one independent
transmit entity per queue, each with its own adjustable ``CWmin``
(mirroring 802.11e's per-queue contention parameters).
"""

from repro.mac.frames import Frame, FrameKind
from repro.mac.queues import FifoQueue, QueueDropError
from repro.mac.dcf import Dcf, DcfConfig, TxEntity
from repro.mac.edca import (
    AC_BE,
    AC_BK,
    AC_VI,
    AC_VO,
    ACCESS_CATEGORIES,
    AccessCategory,
    assign_categories,
    configure_entity,
)

__all__ = [
    "Frame",
    "FrameKind",
    "FifoQueue",
    "QueueDropError",
    "Dcf",
    "DcfConfig",
    "TxEntity",
    "AccessCategory",
    "ACCESS_CATEGORIES",
    "AC_VO",
    "AC_VI",
    "AC_BE",
    "AC_BK",
    "assign_categories",
    "configure_entity",
]
