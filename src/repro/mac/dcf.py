"""IEEE 802.11 DCF with per-queue contention entities.

One :class:`Dcf` instance per node. The node may hold several transmit
queues (own traffic vs forwarded, one per successor, as EZ-flow
requires); each queue is driven by a :class:`TxEntity` running its own
CSMA/CA backoff with its own ``CWmin`` — the single parameter EZ-flow's
CAA adapts. Entities of the same node observe the same medium; if two
fire in the same slot the first wins and the loser suffers a *virtual
collision* (doubles its window and redraws), mirroring EDCA.

Backoff is event-efficient: instead of per-slot timers, each entity
schedules a single fire event and, when the medium turns busy, converts
elapsed idle time back into consumed slots.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Hashable, List, Optional

from repro.mac.frames import Frame, FrameKind, make_ack_frame, make_data_frame
from repro.mac.queues import FifoQueue
from repro.phy.channel import Channel, PhyListener
from repro.phy.rates import DSSS_1MBPS, PhyRates
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder, _noop

NodeId = Hashable

#: Hoisted enum members (hot-path identity checks).
_ACK = FrameKind.ACK
_DATA = FrameKind.DATA


@dataclass
class DcfConfig:
    """Tunable MAC parameters.

    ``cwmin``/``cwmax`` bound the contention window; both must be powers
    of two (the paper's hardware constraint). ``hw_cw_cap`` optionally
    reproduces the Madwifi flaw where CWmin settings above 2^10 have no
    effect (Section 4.1): EZ-flow may *request* larger windows but the
    MAC clamps what is actually used.
    """

    cwmin: int = 16
    cwmax: int = 1024
    retry_limit: int = 7
    rates: PhyRates = field(default_factory=lambda: DSSS_1MBPS)
    ack_timeout_slack_us: int = 20
    hw_cw_cap: Optional[int] = None
    dedup_cache_size: int = 64

    def __post_init__(self):
        for name in ("cwmin", "cwmax"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if self.cwmax < self.cwmin:
            raise ValueError("cwmax must be >= cwmin")
        if self.retry_limit < 1:
            raise ValueError("retry_limit must be >= 1")


class TxEntity:
    """Backoff state machine for one transmit queue."""

    IDLE = "idle"
    BACKOFF = "backoff"
    TX = "tx"

    def __init__(self, dcf: "Dcf", name: str, queue: FifoQueue, successor: NodeId):
        self.dcf = dcf
        self.name = name
        self.queue = queue
        self.successor = successor
        self.cwmin = dcf.config.cwmin
        self.cw = self.cwmin
        #: EDCA arbitration IFS number; 2 reproduces legacy DIFS.
        self.aifsn = 2
        self.state = TxEntity.IDLE
        self.retries = 0
        self.slots_remaining = 0
        self.backoff_started_at: Optional[int] = None
        # Backoff timer: generation-checked fire-and-forget posts instead
        # of cancellable Event objects (armed <-> a live generation is in
        # the heap; bumping the generation disarms a stale post).
        self.fire_armed = False
        self._fire_gen = 0
        self.pending_frame: Optional[Frame] = None
        # Statistics.
        self.tx_attempts = 0
        self.tx_successes = 0
        self.tx_drops = 0
        self.virtual_collisions = 0

    # -- CWmin adaptation (EZ-flow's knob) -----------------------------

    def set_cwmin(self, cwmin: int) -> None:
        """Adapt this queue's minimum contention window.

        Takes effect on the next backoff draw; the hardware cap (if
        configured) silently clamps the value actually used, like the
        Madwifi firmware does.
        """
        if cwmin < 1 or cwmin & (cwmin - 1):
            raise ValueError("cwmin must be a positive power of two")
        self.cwmin = cwmin

    def effective_cwmin(self) -> int:
        """CWmin actually used: the requested value, hardware-clamped."""
        cap = self.dcf.config.hw_cw_cap
        if cap is not None:
            return min(self.cwmin, cap)
        return self.cwmin

    # -- queue interaction ----------------------------------------------

    def notify_enqueue(self) -> None:
        """Called by the node stack after pushing into ``self.queue``."""
        if self.state is TxEntity.IDLE and not self.queue.is_empty():
            self._start_access()

    def _start_access(self) -> None:
        self.state = TxEntity.BACKOFF
        self.retries = 0
        self.cw = self.effective_cwmin()
        self._draw_backoff()
        self._try_resume()

    def _draw_backoff(self) -> None:
        self.slots_remaining = self.dcf.rng.randrange(self.cw)

    # -- backoff clock ----------------------------------------------------

    def _try_resume(self) -> None:
        """(Re)arm the fire timer if the medium is idle."""
        if self.state is not TxEntity.BACKOFF or self.fire_armed:
            return
        dcf = self.dcf
        port = dcf._port
        if port.sensed or port.own_tx is not None:
            return
        # current_ifs_us inlined (and eifs read from the precomputed
        # attribute rather than through the property descriptor).
        slot = dcf._slot_us
        if dcf._use_eifs:
            ifs = dcf._eifs_us
        else:
            ifs = dcf._sifs_us + self.aifsn * slot
        engine = dcf.engine
        delay = ifs + self.slots_remaining * slot
        self.backoff_started_at = engine.now + ifs
        self._fire_gen = gen = self._fire_gen + 1
        self.fire_armed = True
        # Engine.post inlined (this is the single hottest scheduling
        # site): push the fire-and-forget 4-tuple directly. A stale
        # timer (suspended before firing) dies on its generation check.
        seq = engine._seq
        engine._seq = seq + 1
        heappush(engine._heap, (engine.now + delay, seq, self._fire, (gen,)))

    def _suspend(self) -> None:
        """Medium went busy: cancel the timer, bank consumed slots."""
        if not self.fire_armed:
            return
        self.fire_armed = False
        self._fire_gen += 1
        now = self.dcf.engine.now
        if self.backoff_started_at is not None and now > self.backoff_started_at:
            elapsed_slots = (now - self.backoff_started_at) // self.dcf._slot_us
            self.slots_remaining = max(0, self.slots_remaining - int(elapsed_slots))
        self.backoff_started_at = None

    def _fire(self, gen: int) -> None:
        if gen != self._fire_gen or not self.fire_armed:
            return  # a stale timer; it was suspended meanwhile
        self.fire_armed = False
        self.backoff_started_at = None
        self.slots_remaining = 0
        if self.queue.is_empty():  # pragma: no cover - defensive
            self.state = TxEntity.IDLE
            return
        dcf = self.dcf
        port = dcf._port
        if port.sensed or port.own_tx is not None or dcf._transmitting_entity is not None:
            # Lost an internal race: another entity of this node is
            # transmitting (or still awaiting its ACK — the medium can
            # be idle during the SIFS/ACK window after a lost ACK, but
            # the radio's exchange is not over) -> virtual collision.
            self.virtual_collisions += 1
            self._on_failure()
            return
        self.state = TxEntity.TX
        packet = self.queue.peek()
        self.pending_frame = make_data_frame(
            self.dcf.node_id, self.successor, packet, self.dcf.next_seq()
        )
        self.pending_frame.retry = self.retries > 0
        self.tx_attempts += 1
        self.dcf.start_data_transmission(self)

    # -- outcomes ---------------------------------------------------------

    def on_ack(self) -> None:
        """ACK received for the pending frame."""
        self.tx_successes += 1
        packet = self.queue.pop()
        frame = self.pending_frame
        self.pending_frame = None
        self.retries = 0
        self.cw = self.effective_cwmin()
        self.dcf.notify_tx_success(self, packet, frame)
        self._next_or_idle()

    def on_ack_timeout(self) -> None:
        """No ACK arrived: collision or loss on the link."""
        self.dcf._bump_ack_timeouts()
        self._on_failure()

    def _on_failure(self) -> None:
        self.pending_frame = None
        self.retries += 1
        if self.retries > self.dcf.config.retry_limit:
            packet = self.queue.pop()
            self.tx_drops += 1
            self.dcf.notify_tx_drop(self, packet)
            self.retries = 0
            self.cw = self.effective_cwmin()
            self._next_or_idle()
            return
        self.cw = min(self.cw * 2, self.dcf.config.cwmax)
        self.state = TxEntity.BACKOFF
        self._draw_backoff()
        self._try_resume()

    def _next_or_idle(self) -> None:
        if self.queue.is_empty():
            self.state = TxEntity.IDLE
        else:
            # Post-backoff before the next frame.
            self.state = TxEntity.BACKOFF
            self._draw_backoff()
            self._try_resume()


#: Hoisted TxEntity.BACKOFF for identity checks in per-frame loops.
_BACKOFF = TxEntity.BACKOFF


class Dcf(PhyListener):
    """The MAC of one node: several TxEntities sharing one radio."""

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        node_id: NodeId,
        config: Optional[DcfConfig] = None,
        rng: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        self.engine = engine
        self.channel = channel
        self.node_id = node_id
        self.config = config or DcfConfig()
        registry = rng or RngRegistry(0)
        self.rng = registry.stream(f"mac.{node_id}")
        self.trace = trace
        # Pre-bound counter hooks: shared no-ops when tracing is off or
        # the experiment declared the MAC counters unconsumed.
        if trace is None:
            hook = lambda key: _noop  # noqa: E731
        else:
            hook = trace.counter_hook
        self._bump_ack_timeouts = hook("mac.ack_timeouts")
        self._bump_data_tx = hook("mac.data_tx")
        self._bump_tx_success = hook("mac.tx_success")
        self._bump_tx_drop = hook("mac.tx_drop")
        self._bump_duplicates = hook("mac.duplicates")
        self._bump_ack_tx = hook("mac.ack_tx")
        self.entities: List[TxEntity] = []
        # Channel-side busy/idle gate: alias the live entity list, so a
        # node with no transmit queues (pure sink / bystander — most of
        # a large mesh) costs nothing per medium transition, and starts
        # hearing them the moment its first entity is added.
        self.medium_watchers = self.entities
        self._seq = 0
        self._transmitting_entity: Optional[TxEntity] = None
        self._ack_gen = 0
        self._awaiting_ack_from: Optional[NodeId] = None
        self._ack_timeout_cache: Dict[int, int] = {}
        self._ack_frames: Dict[NodeId, Frame] = {}
        self._use_eifs = False
        # Hot-path constants hoisted off config.rates (immutable): the
        # backoff clock reads them tens of thousands of times per run.
        rates = self.config.rates
        self._sifs_us = rates.sifs_us
        self._slot_us = rates.slot_time_us
        self._eifs_us = rates._eifs_us
        self._ack_tx_us = rates.ack_tx_time_us()
        # frame size -> airtime; data frames share a handful of sizes.
        self._duration_cache: Dict[int, int] = {}
        self._dedup: "OrderedDedup" = OrderedDedup(self.config.dedup_cache_size)
        # Upper-layer callbacks (wired by the node stack).
        self.on_data_received: Optional[Callable[[Frame, int], None]] = None
        self.on_data_overheard: Optional[Callable[[Frame, int], None]] = None
        self.on_tx_start: Optional[Callable[[TxEntity, Frame], None]] = None
        self.on_tx_success: Optional[Callable[[TxEntity, object, Frame], None]] = None
        self.on_tx_drop: Optional[Callable[[TxEntity, object], None]] = None
        self._port = channel.attach(node_id, self)

    # -- wiring -----------------------------------------------------------

    def add_entity(self, name: str, queue: FifoQueue, successor: NodeId) -> TxEntity:
        """Create the transmit entity for one (queue, successor) pair."""
        entity = TxEntity(self, name, queue, successor)
        if not self.entities:
            # First entity: this MAC was a passive bystander for medium
            # transitions; the channel re-partitions its plans (including
            # those of frames currently in the air) so busy/idle edges
            # are delivered from here on.
            self.channel.activate_listener(self.node_id)
        self.entities.append(entity)
        return entity

    def next_seq(self) -> int:
        """Allocate the next MAC sequence number of this node."""
        self._seq += 1
        return self._seq

    def trace_bump(self, key: str) -> None:
        """Increment a trace counter if tracing is enabled."""
        trace = self.trace
        if trace is not None:
            trace.counters[key] += 1.0

    # -- medium state -----------------------------------------------------

    def medium_idle(self) -> bool:
        """True when this node senses no carrier and is not transmitting."""
        port = self._port
        return not port.sensed and port.own_tx is None

    def radio_busy(self) -> bool:
        """True while a data/ACK exchange of this node is outstanding.

        Guards against a second entity seizing the radio between the
        end of a data frame and its (possibly lost) ACK, which would
        orphan the first entity's exchange state.
        """
        return self._transmitting_entity is not None

    def current_ifs_us(self, aifsn: int = 2) -> int:
        """AIFS (= DIFS at AIFSN 2) normally, EIFS after a reception
        error (802.11 rule). Per-entity AIFSN implements EDCA access
        category priority."""
        rates = self.config.rates
        if self._use_eifs:
            return rates.eifs_us
        return rates.sifs_us + aifsn * rates.slot_time_us

    # -- transmit path ------------------------------------------------------

    def start_data_transmission(self, entity: TxEntity) -> None:
        """Put the entity's pending frame on the air and arm the ACK wait."""
        if self._transmitting_entity is not None:  # pragma: no cover
            raise RuntimeError(
                f"node {self.node_id!r}: transmission started while "
                f"entity {self._transmitting_entity.name!r} awaits its ACK"
            )
        frame = entity.pending_frame
        if self.on_tx_start is not None:
            # Last chance to stamp per-frame metadata (e.g. DiffQ's
            # piggybacked queue length) before the frame hits the air.
            self.on_tx_start(entity, frame)
        config = self.config
        duration = self._duration_cache.get(frame.size_bytes)
        if duration is None:
            duration = self._duration_cache[frame.size_bytes] = (
                config.rates.frame_tx_time_us(frame.size_bytes)
            )
        self._transmitting_entity = entity
        self._awaiting_ack_from = entity.successor
        self.channel.transmit(self.node_id, frame, duration)
        self._bump_data_tx()
        # Suspend every other entity: our own transmission occupies the radio.
        for other in self.entities:
            if other is not entity and other.fire_armed:
                other._suspend()
        timeout = self._ack_timeout_cache.get(duration)
        if timeout is None:
            rates = config.rates
            timeout = self._ack_timeout_cache[duration] = (
                duration
                + rates.sifs_us
                + rates.ack_tx_time_us()
                + rates.slot_time_us
                + config.ack_timeout_slack_us
            )
        self._ack_gen = gen = self._ack_gen + 1
        engine = self.engine
        seq = engine._seq
        engine._seq = seq + 1
        heappush(engine._heap, (engine.now + timeout, seq, self._ack_timed_out, (gen,)))

    def _ack_timed_out(self, gen: int) -> None:
        if gen != self._ack_gen:
            return  # the exchange completed; this timeout was disarmed
        entity = self._transmitting_entity
        self._transmitting_entity = None
        self._awaiting_ack_from = None
        if entity is not None:
            entity.on_ack_timeout()
        self._resume_all()

    def notify_tx_success(self, entity: TxEntity, packet, frame: Frame) -> None:
        """Propagate a confirmed (ACKed) handoff to the upper layer."""
        self._bump_tx_success()
        if self.on_tx_success is not None:
            self.on_tx_success(entity, packet, frame)

    def notify_tx_drop(self, entity: TxEntity, packet) -> None:
        """Propagate a retry-limit drop to the upper layer."""
        self._bump_tx_drop()
        if self.on_tx_drop is not None:
            self.on_tx_drop(entity, packet)

    # -- PhyListener ---------------------------------------------------------

    def on_medium_busy(self, now: int) -> None:
        # TxEntity._suspend inlined (minus its fire_armed re-check,
        # done by this loop): these per-frame-edge loops carry the
        # backoff clock for the whole simulation.
        slot = self._slot_us
        for entity in self.entities:
            if entity.fire_armed:
                entity.fire_armed = False
                entity._fire_gen += 1
                started = entity.backoff_started_at
                if started is not None and now > started:
                    elapsed = (now - started) // slot
                    entity.slots_remaining = max(
                        0, entity.slots_remaining - int(elapsed)
                    )
                entity.backoff_started_at = None

    def on_medium_idle(self, now: int) -> None:
        # The channel only reports idle transitions, so the medium check
        # of _try_resume is already satisfied here; its body is inlined
        # (same arithmetic, same seq draw) with the state/armed/port
        # guards hoisted into the loop.
        entities = self.entities
        if not entities:
            return
        slot = self._slot_us
        eifs = self._eifs_us if self._use_eifs else None
        sifs = self._sifs_us
        engine = self.engine
        heap = engine._heap
        for entity in entities:
            if entity.state is _BACKOFF and not entity.fire_armed:
                ifs = eifs if eifs is not None else sifs + entity.aifsn * slot
                entity.backoff_started_at = now + ifs
                entity._fire_gen = gen = entity._fire_gen + 1
                entity.fire_armed = True
                seq = engine._seq
                engine._seq = seq + 1
                heappush(
                    heap,
                    (
                        now + ifs + entity.slots_remaining * slot,
                        seq,
                        entity._fire,
                        (gen,),
                    ),
                )

    def _resume_all(self) -> None:
        port = self._port
        if port.sensed or port.own_tx is not None:
            return
        self.on_medium_idle(self.engine.now)

    def on_frame_received(self, frame: Frame, now: int) -> None:
        if frame.kind is _ACK:
            self._handle_ack(frame)
            return
        # DATA addressed to us: always ACK (802.11 ACKs even duplicates).
        self._send_ack(frame)
        self._use_eifs = False
        if self._dedup.seen((frame.src, frame.seq)):
            self._bump_duplicates()
            return
        if self.on_data_received is not None:
            self.on_data_received(frame, now)

    def _handle_ack(self, frame: Frame) -> None:
        if (
            self._transmitting_entity is not None
            and frame.src == self._awaiting_ack_from
        ):
            self._ack_gen += 1  # disarm the pending timeout post
            entity = self._transmitting_entity
            self._transmitting_entity = None
            self._awaiting_ack_from = None
            self._use_eifs = False
            entity.on_ack()
            self._resume_all()

    def _send_ack(self, data_frame: Frame) -> None:
        """Reply with an ACK after SIFS (no carrier sense for ACKs)."""
        # ACK frames are immutable and this node sends at most one at a
        # time, so one cached frame per destination suffices.
        dst = data_frame.src
        ack = self._ack_frames.get(dst)
        if ack is None:
            ack = self._ack_frames[dst] = make_ack_frame(self.node_id, dst)
        engine = self.engine
        seq = engine._seq
        engine._seq = seq + 1
        heappush(
            engine._heap,
            (
                engine.now + self._sifs_us,
                seq,
                self._do_send_ack,
                (ack, self._ack_tx_us),
            ),
        )

    def _do_send_ack(self, ack: Frame, duration: int) -> None:
        if self._port.own_tx is None:
            self.channel.transmit(self.node_id, ack, duration)
            self._bump_ack_tx()

    def on_frame_overheard(self, frame: Frame, now: int) -> None:
        self._use_eifs = False
        if frame.kind is _DATA and self.on_data_overheard is not None:
            self.on_data_overheard(frame, now)

    def on_frame_error(self, now: int) -> None:
        self._use_eifs = True


class OrderedDedup:
    """Fixed-size recently-seen cache for duplicate filtering."""

    def __init__(self, size: int):
        self.size = size
        self._order: Deque[tuple] = deque()
        self._set: set = set()

    def seen(self, key: tuple) -> bool:
        """Record ``key``; return True when it was already present."""
        if key in self._set:
            return True
        self._set.add(key)
        self._order.append(key)
        if len(self._order) > self.size:
            self._set.discard(self._order.popleft())
        return False
