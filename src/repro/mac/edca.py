"""802.11e EDCA access categories (the conclusion's deployment vehicle).

Section 7 proposes mapping EZ-flow's per-successor queues onto the four
EDCA MAC queues, each with its own contention parameters. EDCA
differentiates queues by

* ``AIFSN`` — the arbitration inter-frame space number; a queue waits
  ``SIFS + AIFSN * slot`` of idle air before counting down (legacy DCF
  is AIFSN = 2, i.e. DIFS);
* ``CWmin``/``CWmax`` — per-queue window bounds.

The DCF engine in :mod:`repro.mac.dcf` already runs one independent
backoff entity per queue with per-entity ``CWmin`` and EDCA-style
virtual collision resolution; this module adds the standard access
category parameter sets and a helper to configure an entity as one.
EZ-flow then owns the CWmin knob of each category while the AIFS keeps
inter-category priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.mac.dcf import TxEntity


@dataclass(frozen=True)
class AccessCategory:
    """One EDCA access category's contention parameters."""

    name: str
    aifsn: int
    cwmin: int
    cwmax: int

    def __post_init__(self):
        if self.aifsn < 1:
            raise ValueError("AIFSN must be >= 1")
        for field_name in ("cwmin", "cwmax"):
            value = getattr(self, field_name)
            if value < 1 or value & (value - 1):
                raise ValueError(f"{field_name} must be a positive power of two")
        if self.cwmax < self.cwmin:
            raise ValueError("cwmax must be >= cwmin")


#: The standard 802.11e parameter sets (for an 802.11b PHY, aCWmin=32).
AC_VO = AccessCategory("VO", aifsn=2, cwmin=8, cwmax=16)
AC_VI = AccessCategory("VI", aifsn=2, cwmin=16, cwmax=32)
AC_BE = AccessCategory("BE", aifsn=3, cwmin=32, cwmax=1024)
AC_BK = AccessCategory("BK", aifsn=7, cwmin=32, cwmax=1024)

#: Categories by name, highest priority first.
ACCESS_CATEGORIES: Dict[str, AccessCategory] = {
    ac.name: ac for ac in (AC_VO, AC_VI, AC_BE, AC_BK)
}


def configure_entity(entity: TxEntity, category: AccessCategory) -> None:
    """Apply an access category's parameters to a transmit entity.

    EZ-flow may later override ``cwmin`` (that is the whole point); the
    AIFSN stays with the category.
    """
    entity.aifsn = category.aifsn
    entity.set_cwmin(category.cwmin)


def assign_categories(entities, categories=None) -> Dict[str, TxEntity]:
    """Map up to four entities onto access categories, in order.

    This is the conclusion's trick: a node with up to four successors
    dedicates one MAC queue (category) per successor, giving each its
    own independently adaptable CWmin.
    """
    chosen = list(categories or (AC_VO, AC_VI, AC_BE, AC_BK))
    entities = list(entities)
    if len(entities) > len(chosen):
        raise ValueError(
            f"{len(entities)} queues but only {len(chosen)} access categories"
        )
    mapping: Dict[str, TxEntity] = {}
    for entity, category in zip(entities, chosen):
        configure_entity(entity, category)
        mapping[category.name] = entity
    return mapping
