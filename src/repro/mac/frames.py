"""MAC frame representation.

Only the fields that influence timing and protocol behaviour are
modelled: kind, one-hop addresses, payload size, a per-sender sequence
number for duplicate filtering, and the retry flag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Optional

MAC_DATA_HEADER_BYTES = 28  # 24-byte MAC header + 4-byte FCS
MAC_ACK_BYTES = 14


class FrameKind(enum.Enum):
    """Frame types the simulator models (RTS/CTS is disabled, §5.1)."""

    DATA = "data"
    ACK = "ack"


@dataclass(slots=True)
class Frame:
    """One MAC frame in flight."""

    kind: FrameKind
    src: Hashable
    dst: Hashable
    payload_bytes: int = 0
    packet: Optional[object] = None
    seq: int = 0
    retry: bool = False
    # Piggyback fields stamped by message-passing baselines (DiffQ);
    # declared here because Frame is slotted for dispatch speed.
    diffq_backlog: Optional[int] = None
    diffq_src: Optional[Hashable] = None

    @property
    def size_bytes(self) -> int:
        """Total on-air MAC bytes (header + payload, or ACK size)."""
        if self.kind is FrameKind.ACK:
            return MAC_ACK_BYTES
        return MAC_DATA_HEADER_BYTES + self.payload_bytes

    def dedup_key(self) -> tuple:
        """Key used by receivers to filter MAC-level duplicates."""
        return (self.src, self.seq)


def make_data_frame(src, dst, packet, seq: int) -> Frame:
    """Build a DATA frame carrying ``packet`` (which has ``size_bytes``)."""
    return Frame(
        kind=FrameKind.DATA,
        src=src,
        dst=dst,
        payload_bytes=packet.size_bytes,
        packet=packet,
        seq=seq,
    )


def make_ack_frame(src, dst) -> Frame:
    """Build the 14-byte MAC acknowledgement for a received data frame."""
    return Frame(kind=FrameKind.ACK, src=src, dst=dst)
