"""Drop-tail FIFO interface queues.

The paper's hardware has 50-packet MAC buffers; every queue here defaults
to that capacity. Occupancy is traced so buffer-evolution figures
(Figures 1 and 4) can be regenerated.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sim.tracing import TraceRecorder

DEFAULT_CAPACITY = 50


class QueueDropError(Exception):
    """Raised by ``push(..., strict=True)`` when the queue is full."""


class FifoQueue:
    """Bounded FIFO with drop-tail semantics and occupancy accounting."""

    def __init__(
        self,
        name: str = "queue",
        capacity: int = DEFAULT_CAPACITY,
        trace: Optional[TraceRecorder] = None,
        engine=None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.trace = trace
        self.engine = engine
        self._items: Deque = deque()
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def occupancy(self) -> int:
        return len(self._items)

    def is_empty(self) -> bool:
        """True when no packet is queued."""
        return not self._items

    def is_full(self) -> bool:
        """True when at capacity (next push would drop)."""
        return len(self._items) >= self.capacity

    def push(self, item, strict: bool = False) -> bool:
        """Append ``item``; drop it (return False) when full.

        With ``strict=True`` a full queue raises :class:`QueueDropError`
        instead of silently dropping.
        """
        if self.is_full():
            self.dropped += 1
            if self.trace is not None:
                self.trace.bump(f"{self.name}.drops")
            if strict:
                raise QueueDropError(f"{self.name} full (capacity {self.capacity})")
            return False
        self._items.append(item)
        self.enqueued += 1
        self._record()
        return True

    def pop(self):
        """Remove and return the head item (raises IndexError when empty)."""
        item = self._items.popleft()
        self.dequeued += 1
        self._record()
        return item

    def peek(self):
        """Return the head item without removing it."""
        return self._items[0]

    def _record(self) -> None:
        if self.trace is not None and self.engine is not None:
            self.trace.record(f"{self.name}.occupancy", self.engine.now, len(self._items))
