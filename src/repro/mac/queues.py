"""Drop-tail FIFO interface queues.

The paper's hardware has 50-packet MAC buffers; every queue here defaults
to that capacity. Occupancy is traced so buffer-evolution figures
(Figures 1 and 4) can be regenerated.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sim.tracing import TimeSeries, TraceRecorder, _noop

DEFAULT_CAPACITY = 50


class QueueDropError(Exception):
    """Raised by ``push(..., strict=True)`` when the queue is full."""


class FifoQueue:
    """Bounded FIFO with drop-tail semantics and occupancy accounting."""

    def __init__(
        self,
        name: str = "queue",
        capacity: int = DEFAULT_CAPACITY,
        trace: Optional[TraceRecorder] = None,
        engine=None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.trace = trace
        self.engine = engine
        self._items: Deque = deque()
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        # Occupancy is recorded on every push/pop; resolve the series
        # and key once instead of formatting/looking them up per packet.
        # Both collapse to nothing when the experiment declared it does
        # not consume per-queue instrumentation.
        self._drop_key = f"{name}.drops"
        self._bump_drop = _noop if trace is None else trace.counter_hook(self._drop_key)
        if (
            trace is not None
            and engine is not None
            and trace.wants(f"{name}.occupancy")
        ):
            self._occupancy = trace.series.setdefault(f"{name}.occupancy", TimeSeries())
        else:
            self._occupancy = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def occupancy(self) -> int:
        return len(self._items)

    def is_empty(self) -> bool:
        """True when no packet is queued."""
        return not self._items

    def is_full(self) -> bool:
        """True when at capacity (next push would drop)."""
        return len(self._items) >= self.capacity

    def push(self, item, strict: bool = False) -> bool:
        """Append ``item``; drop it (return False) when full.

        With ``strict=True`` a full queue raises :class:`QueueDropError`
        instead of silently dropping.
        """
        if len(self._items) >= self.capacity:
            self.dropped += 1
            self._bump_drop()
            if strict:
                raise QueueDropError(f"{self.name} full (capacity {self.capacity})")
            return False
        items = self._items
        items.append(item)
        self.enqueued += 1
        series = self._occupancy
        if series is not None:
            # Inlined TimeSeries.append: engine time is monotone, so the
            # ordering check is redundant on this per-packet path.
            series.times.append(self.engine.now)
            series.values.append(len(items))
        return True

    def pop(self):
        """Remove and return the head item (raises IndexError when empty)."""
        items = self._items
        item = items.popleft()
        self.dequeued += 1
        series = self._occupancy
        if series is not None:
            series.times.append(self.engine.now)
            series.values.append(len(items))
        return item

    def peek(self):
        """Return the head item without removing it."""
        return self._items[0]

    def _record(self) -> None:
        """Append the current occupancy sample (push/pop inline this)."""
        series = self._occupancy
        if series is not None:
            series.append(self.engine.now, len(self._items))
