"""Performance metrics: fairness, summary statistics, buffer sampling."""

from repro.metrics.fairness import jain_fairness_index
from repro.metrics.stats import (
    FlowStats,
    summarize_flow,
    mean,
    stddev,
    percentile,
)
from repro.metrics.sampling import BufferSampler

__all__ = [
    "jain_fairness_index",
    "FlowStats",
    "summarize_flow",
    "mean",
    "stddev",
    "percentile",
    "BufferSampler",
]
