"""Performance metrics: fairness, summary statistics, buffer sampling."""

from repro.metrics.fairness import jain_fairness_index
from repro.metrics.stats import (
    FlowStats,
    summarize_flow,
    mean,
    stddev,
    percentile,
)
from repro.metrics.sampling import BufferSampler
from repro.metrics.occupancy import group_mean_series, mean_occupancy_by_group

__all__ = [
    "group_mean_series",
    "mean_occupancy_by_group",
    "jain_fairness_index",
    "FlowStats",
    "summarize_flow",
    "mean",
    "stddev",
    "percentile",
    "BufferSampler",
]
