"""Jain's fairness index, Eq. (1) of the paper.

``FI = (sum x_i)^2 / (n * sum x_i^2)`` over per-flow throughputs
``x_i``; 1.0 is perfectly fair, 1/n is maximally unfair (one flow gets
everything).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def jain_fairness_index(throughputs: Iterable[float]) -> float:
    """Compute Jain's index over per-flow throughput values.

    Returns 1.0 for an empty set or all-zero throughputs by convention
    (no flow is being treated unfairly when nothing is sent).
    """
    values: Sequence[float] = [float(x) for x in throughputs]
    if any(x < 0 for x in values):
        raise ValueError("throughputs must be non-negative")
    if not values:
        return 1.0
    total = sum(values)
    square_sum = sum(x * x for x in values)
    if square_sum == 0.0:
        return 1.0
    return total * total / (len(values) * square_sum)
