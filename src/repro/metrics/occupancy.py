"""Aggregate sampled buffer occupancy across node groups.

The generated-topology experiments report queue backlog *per hop ring*
(all nodes the same BFS distance from their gateway) rather than per
node — on a 49-node mesh, per-node tables are noise. The helpers here
reduce a :class:`~repro.metrics.sampling.BufferSampler`'s per-node
series to per-group means, both as a summary table and as a pointwise
mean time series.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.metrics.sampling import BufferSampler


def mean_occupancy_by_group(
    sampler: BufferSampler,
    groups: Mapping[Hashable, Iterable[Hashable]],
    start_us: int,
    end_us: int,
) -> List[Tuple[Hashable, int, float]]:
    """Per-group (key, node count, mean occupancy) rows, sorted by key.

    The group mean is the average of the member nodes' window means —
    every node was sampled on the same cadence, so this equals the mean
    of the pointwise group average.
    """
    rows: List[Tuple[Hashable, int, float]] = []
    # Natural ordering: hop rings are ints and must sort numerically
    # (str-keyed sorting would put ring 10 before ring 2).
    for key in sorted(groups):
        members = sorted(groups[key], key=str)
        means = [sampler.mean_occupancy(node, start_us, end_us) for node in members]
        rows.append((key, len(members), sum(means) / len(means) if means else 0.0))
    return rows


def group_mean_series(
    sampler: BufferSampler, node_ids: Iterable[Hashable]
) -> List[Tuple[float, float]]:
    """Pointwise mean occupancy of several nodes, as (seconds, value).

    Nodes are sampled by one scheduler callback, so their series share
    timestamps; truncation to the shortest series guards the final
    partial sample at the simulation horizon.
    """
    members = sorted(node_ids, key=str)
    series = [list(sampler.series_for(node)) for node in members]
    if not series or not series[0]:
        return []
    length = min(len(s) for s in series)
    points: List[Tuple[float, float]] = []
    for i in range(length):
        t = series[0][i][0]
        points.append((t / 1e6, sum(s[i][1] for s in series) / len(series)))
    return points
