"""Periodic buffer-occupancy sampling (Figures 1 and 4).

The paper plots instantaneous relay-buffer occupancy over time. The
sampler polls chosen node stacks on a fixed cadence and records the
series under ``buffer.node<id>``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.net.node import NodeStack
from repro.sim.engine import Engine
from repro.sim.tracing import TraceRecorder
from repro.sim.units import seconds


class BufferSampler:
    """Samples total buffer occupancy of selected nodes every interval."""

    def __init__(
        self,
        engine: Engine,
        trace: TraceRecorder,
        nodes: Dict[Hashable, NodeStack],
        node_ids: Optional[Iterable[Hashable]] = None,
        interval_s: float = 1.0,
        forwarding_only: bool = False,
    ):
        self.engine = engine
        self.trace = trace
        self.nodes = nodes
        self.node_ids = list(node_ids) if node_ids is not None else list(nodes)
        self.interval_us = seconds(interval_s)
        self.forwarding_only = forwarding_only
        self._started = False
        self._probes: List = []

    def start(self) -> None:
        """Begin periodic sampling (idempotence is enforced).

        Runs on the engine's periodic-callback path: the engine
        re-pushes the sampler after each firing with a fresh sequence
        number, which is ordering-identical to the callback re-posting
        itself (same ``(time, seq)`` stream, no RNG interaction) but
        skips a Python-level ``post`` per period. Per-node series
        writers are pre-bound once; nodes whose series the experiment
        does not consume collapse to shared no-ops.
        """
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self._probes = [
            (self.nodes[node_id], self.trace.series_hook(f"buffer.node{node_id}"))
            for node_id in self.node_ids
        ]
        self.engine.post_periodic(0, self.interval_us, self._sample)

    def _sample(self) -> None:
        now = self.engine.now
        if self.forwarding_only:
            for stack, append in self._probes:
                append(now, stack.forwarding_occupancy())
        else:
            for stack, append in self._probes:
                append(now, stack.total_buffer_occupancy())

    def series_for(self, node_id: Hashable):
        """The recorded occupancy series of one node."""
        return self.trace.get(f"buffer.node{node_id}")

    def mean_occupancy(self, node_id: Hashable, start_us: int, end_us: int) -> float:
        """Average sampled occupancy over a window (Fig 4 caption numbers)."""
        window = self.series_for(node_id).window(start_us, end_us)
        return window.mean()
