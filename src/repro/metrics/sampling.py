"""Periodic buffer-occupancy sampling (Figures 1 and 4).

The paper plots instantaneous relay-buffer occupancy over time. The
sampler polls chosen node stacks on a fixed cadence and records the
series under ``buffer.node<id>``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.net.node import NodeStack
from repro.sim.engine import Engine
from repro.sim.tracing import TraceRecorder
from repro.sim.units import seconds


class BufferSampler:
    """Samples total buffer occupancy of selected nodes every interval."""

    def __init__(
        self,
        engine: Engine,
        trace: TraceRecorder,
        nodes: Dict[Hashable, NodeStack],
        node_ids: Optional[Iterable[Hashable]] = None,
        interval_s: float = 1.0,
        forwarding_only: bool = False,
    ):
        self.engine = engine
        self.trace = trace
        self.nodes = nodes
        self.node_ids = list(node_ids) if node_ids is not None else list(nodes)
        self.interval_us = seconds(interval_s)
        self.forwarding_only = forwarding_only
        self._started = False

    def start(self) -> None:
        """Begin periodic sampling (idempotence is enforced)."""
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self.engine.post(0, self._sample)

    def _sample(self) -> None:
        now = self.engine.now
        for node_id in self.node_ids:
            stack = self.nodes[node_id]
            value = (
                stack.forwarding_occupancy()
                if self.forwarding_only
                else stack.total_buffer_occupancy()
            )
            self.trace.record(f"buffer.node{node_id}", now, value)
        self.engine.post(self.interval_us, self._sample)

    def series_for(self, node_id: Hashable):
        """The recorded occupancy series of one node."""
        return self.trace.get(f"buffer.node{node_id}")

    def mean_occupancy(self, node_id: Hashable, start_us: int, end_us: int) -> float:
        """Average sampled occupancy over a window (Fig 4 caption numbers)."""
        window = self.series_for(node_id).window(start_us, end_us)
        return window.mean()
