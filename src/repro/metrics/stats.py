"""Summary statistics for flows, matching the paper's table columns.

Tables 2 and 3 report per-flow mean throughput, the standard deviation
of the *windowed* throughput series (traffic smoothness — turbulence
shows up as a large deviation), and Jain's index across flows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.net.flow import Flow


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((x - mu) ** 2 for x in values) / len(values))


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = p / 100.0 * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class FlowStats:
    """One row of a paper table."""

    flow_id: object
    mean_throughput_kbps: float
    stddev_throughput_kbps: float
    mean_delay_s: float
    delivered: int

    def __str__(self) -> str:
        return (
            f"{self.flow_id}: {self.mean_throughput_kbps:.1f} kb/s "
            f"(sd {self.stddev_throughput_kbps:.1f}), "
            f"delay {self.mean_delay_s:.2f} s, {self.delivered} pkts"
        )


def summarize_flow(
    flow: Flow,
    start_us: int,
    end_us: int,
    bin_s: float = 10.0,
) -> FlowStats:
    """Summarise a flow over a window, with throughput binned at ``bin_s``."""
    series = flow.throughput_series_kbps(start_us, end_us, bin_s)
    rates = [r for _, r in series]
    return FlowStats(
        flow_id=flow.flow_id,
        mean_throughput_kbps=flow.throughput_bps(start_us, end_us) / 1000.0,
        stddev_throughput_kbps=stddev(rates),
        mean_delay_s=flow.mean_delay_s(start_us, end_us),
        delivered=flow.delivered_bits.count_in(start_us, end_us),
    )
