"""Network layer: packets, static routing, the per-node stack, flows."""

from repro.net.packet import Packet, checksum16
from repro.net.routing import StaticRouting, RoutingError
from repro.net.node import NodeStack
from repro.net.flow import Flow

__all__ = [
    "Packet",
    "checksum16",
    "StaticRouting",
    "RoutingError",
    "NodeStack",
    "Flow",
]
