"""Flow descriptors and end-to-end accounting.

A flow is a directed source->destination communication (Section 3.1).
The ``Flow`` object owns delivery statistics: per-packet delays and a
delivery time series from which windowed throughput is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

from repro.net.packet import Packet
from repro.sim.tracing import TimeSeries
from repro.sim.units import US_PER_S


@dataclass
class Flow:
    """One unidirectional flow plus its delivery accounting."""

    flow_id: Hashable
    src: Hashable
    dst: Hashable
    start_us: int = 0
    stop_us: Optional[int] = None

    generated: int = 0
    delivered: int = 0
    delivered_bits: TimeSeries = field(default_factory=TimeSeries)
    delays: TimeSeries = field(default_factory=TimeSeries)
    path_delays: TimeSeries = field(default_factory=TimeSeries)

    def active_at(self, now: int) -> bool:
        """True when the flow generates traffic at tick ``now``."""
        if now < self.start_us:
            return False
        return self.stop_us is None or now < self.stop_us

    def note_generated(self) -> None:
        """Count one packet handed to the source stack."""
        self.generated += 1

    def note_delivered(self, packet: Packet, now: int) -> None:
        """Record an end-to-end delivery (stamps the packet, updates series)."""
        if packet.flow_id != self.flow_id:
            raise ValueError("packet does not belong to this flow")
        packet.delivered_at = now
        self.delivered += 1
        self.delivered_bits.append(now, packet.size_bytes * 8)
        self.delays.append(now, (now - packet.created_at) / US_PER_S)
        if packet.first_tx_at is not None:
            self.path_delays.append(now, (now - packet.first_tx_at) / US_PER_S)

    # -- metrics ------------------------------------------------------------

    def throughput_bps(self, start_us: int, end_us: int) -> float:
        """Mean delivered rate in bits/s over [start_us, end_us)."""
        if end_us <= start_us:
            return 0.0
        bits = self.delivered_bits.sum_in(start_us, end_us)
        return bits / ((end_us - start_us) / US_PER_S)

    def throughput_series_kbps(self, start_us: int, end_us: int, bin_s: float = 10.0):
        """Windowed throughput in kb/s, as (time_s, kbps) pairs (Fig 6)."""
        bins = self.delivered_bits.binned_rate(start_us, end_us, int(bin_s * US_PER_S))
        return [(t, rate / 1000.0) for t, rate in bins]

    def mean_delay_s(self, start_us: int, end_us: int) -> float:
        """Mean end-to-end delay (s) of packets delivered in the window."""
        window = self.delays.window(start_us, end_us)
        return window.mean()

    def mean_path_delay_s(self, start_us: int, end_us: int) -> float:
        """Mean network-path delay (s): first hop -> delivery.

        This isolates the relay delay the MAC-layer flow control
        governs; a saturating CBR application keeps its own source
        buffer permanently full, which adds a constant queueing offset
        the end-to-end number includes.
        """
        window = self.path_delays.window(start_us, end_us)
        return window.mean()

    def path_delay_series_s(self, start_us: int, end_us: int):
        """Per-packet (delivery_time_s, path_delay_s) pairs."""
        window = self.path_delays.window(start_us, end_us)
        return [(t / US_PER_S, d) for t, d in window]

    def delay_series_s(self, start_us: int, end_us: int):
        """Per-packet (delivery_time_s, delay_s) pairs (Figs 7, 10)."""
        window = self.delays.window(start_us, end_us)
        return [(t / US_PER_S, d) for t, d in window]
