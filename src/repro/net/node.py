"""Per-node stack: queues, forwarding, delivery, sniffer hooks.

Implements the queueing discipline Section 3.1 prescribes: a node that is
both source and relay keeps the two roles in *separate* queues, and a
node with several successors keeps one forwarding queue per successor.
Each queue gets its own MAC transmit entity (its own CWmin).

The stack also exposes the sniffer side-channel: every decoded overheard
DATA frame is passed to registered sniffer callbacks — this is where
EZ-flow's BOE taps in, and where a node's own transmissions are reported
(send events) so the BOE can log sent identifiers.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.mac.dcf import Dcf, DcfConfig, TxEntity
from repro.mac.frames import Frame
from repro.mac.queues import DEFAULT_CAPACITY, FifoQueue
from repro.net.flow import Flow
from repro.net.packet import Packet
from repro.net.routing import StaticRouting
from repro.phy.channel import Channel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder, _noop

NodeId = Hashable

#: queue kinds
OWN = "own"
FWD = "fwd"


class _WiringList(list):
    """A callback list that invokes a hook on first growth.

    The node stack leaves its MAC's overheard-frame upcall unwired until
    somebody actually subscribes a sniffer: overhearing is the single
    most frequent PHY delivery in a dense mesh, and for the common
    no-sniffer configuration (standard 802.11, static baselines) the
    whole per-frame call chain collapses to nothing. Appending the first
    callback — whether via ``append``, ``extend`` or ``insert`` — wires
    the MAC exactly as the eager constructor used to.
    """

    __slots__ = ("_on_first",)

    def __init__(self, on_first):
        super().__init__()
        self._on_first = on_first

    def _wire(self) -> None:
        if not self:
            self._on_first()

    def append(self, item):
        self._wire()
        super().append(item)

    def extend(self, items):
        items = list(items)
        if items:
            self._wire()
        super().extend(items)

    def insert(self, index, item):
        self._wire()
        super().insert(index, item)

    def __iadd__(self, items):
        items = list(items)
        if items:
            self._wire()
        return super().__iadd__(items)

    def __setitem__(self, index, item):
        # Slice assignment can also grow the list (and is how some
        # callers might splice a callback in); wire defensively.
        self._wire()
        super().__setitem__(index, item)


class NodeStack:
    """One mesh node: traffic entry point, relay, and sink."""

    def __init__(
        self,
        engine: Engine,
        channel: Channel,
        routing: StaticRouting,
        node_id: NodeId,
        mac_config: Optional[DcfConfig] = None,
        rng: Optional[RngRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        queue_capacity: int = DEFAULT_CAPACITY,
    ):
        self.engine = engine
        self.channel = channel
        self.routing = routing
        self.node_id = node_id
        self.trace = trace
        self._bump_mac_drops = (
            _noop if trace is None else trace.counter_hook(f"node{node_id}.mac_drops")
        )
        self.queue_capacity = queue_capacity
        self.mac = Dcf(engine, channel, node_id, mac_config, rng, trace)
        self.mac.on_data_received = self._on_data_received
        self.mac.on_tx_success = self._on_tx_success
        self.mac.on_tx_drop = self._on_tx_drop
        # (kind, successor) -> (queue, entity)
        self._queues: Dict[Tuple[str, NodeId], Tuple[FifoQueue, TxEntity]] = {}
        self._flows: Dict[Hashable, Flow] = {}
        # Sniffer subscribers: fn(frame, now). Sent-packet subscribers:
        # fn(entity, packet, frame, now) fired on MAC-confirmed handoff.
        # The MAC's overheard upcall is wired on first subscription only
        # (see _WiringList): without sniffers the per-frame overhearing
        # chain stops at the MAC.
        self.sniffer_callbacks: List[Callable[[Frame, int], None]] = _WiringList(
            self._wire_sniffing
        )
        self.sent_callbacks: List[Callable[[TxEntity, Packet, Frame, int], None]] = []
        self.forwarded_callbacks: List[Callable[[TxEntity, Packet, Frame, int], None]] = []
        self.delivered_callbacks: List[Callable[[Packet, int], None]] = []
        self.source_drops = 0
        self.relay_drops = 0
        # Routes are static for the lifetime of a run (see
        # repro.net.routing), so the per-destination (queue, entity)
        # resolution is cached instead of redone for every packet.
        self._own_targets: Dict[NodeId, Tuple[FifoQueue, TxEntity]] = {}
        self._fwd_targets: Dict[NodeId, Tuple[FifoQueue, TxEntity]] = {}

    # -- flow registration -----------------------------------------------

    def register_flow(self, flow: Flow) -> None:
        """Make this node the sink-side accountant for ``flow``."""
        self._flows[flow.flow_id] = flow

    # -- queue management ---------------------------------------------------

    def queue_for(self, kind: str, successor: NodeId) -> Tuple[FifoQueue, TxEntity]:
        """Get or create the (queue, MAC entity) pair for a role+successor."""
        key = (kind, successor)
        if key not in self._queues:
            name = f"node{self.node_id}.{kind}.to{successor}"
            queue = FifoQueue(name, self.queue_capacity, self.trace, self.engine)
            entity = self.mac.add_entity(name, queue, successor)
            self._queues[key] = (queue, entity)
        return self._queues[key]

    def queues(self) -> Dict[Tuple[str, NodeId], Tuple[FifoQueue, TxEntity]]:
        """Snapshot of all (kind, successor) -> (queue, entity) pairs."""
        return dict(self._queues)

    def forwarding_queue(self, successor: NodeId) -> FifoQueue:
        """The relay queue toward ``successor`` (created on first use)."""
        return self.queue_for(FWD, successor)[0]

    def total_buffer_occupancy(self) -> int:
        """Packets waiting in all queues of this node (Figures 1 and 4)."""
        return sum(len(q) for q, _ in self._queues.values())

    def forwarding_occupancy(self) -> int:
        """Packets waiting in forwarding queues only."""
        return sum(len(q) for (kind, _), (q, _) in self._queues.items() if kind == FWD)

    def invalidate_route_caches(self) -> None:
        """Routing changed (churn re-route): drop per-destination caches.

        The next packet per destination re-resolves its next hop through
        the routing table and gets (or creates) the queue/entity for the
        new successor. Packets already sitting in a queue toward the old
        successor keep draining there — in-flight traffic follows the
        path it was committed to, exactly like the channel's in-flight
        frames resolving under their old delivery plan.
        """
        self._own_targets.clear()
        self._fwd_targets.clear()

    # -- traffic entry (source role) ---------------------------------------

    def send(self, packet: Packet) -> bool:
        """Inject a locally generated packet; returns False when dropped."""
        target = self._own_targets.get(packet.dst)
        if target is None:
            next_hop = self.routing.next_hop(self.node_id, packet.dst)
            target = self._own_targets[packet.dst] = self.queue_for(OWN, next_hop)
        queue, entity = target
        accepted = queue.push(packet)
        if accepted:
            entity.notify_enqueue()
        else:
            self.source_drops += 1
        return accepted

    # -- MAC upcalls ----------------------------------------------------------

    def _on_data_received(self, frame: Frame, now: int) -> None:
        packet: Packet = frame.packet
        packet.hops += 1
        if packet.dst == self.node_id:
            flow = self._flows.get(packet.flow_id)
            if flow is not None:
                flow.note_delivered(packet, now)
            for callback in self.delivered_callbacks:
                callback(packet, now)
            return
        # Relay role: enqueue toward the next hop.
        target = self._fwd_targets.get(packet.dst)
        if target is None:
            next_hop = self.routing.next_hop(self.node_id, packet.dst)
            target = self._fwd_targets[packet.dst] = self.queue_for(FWD, next_hop)
        queue, entity = target
        accepted = queue.push(packet)
        if accepted:
            entity.notify_enqueue()
        else:
            self.relay_drops += 1

    def _wire_sniffing(self) -> None:
        """First sniffer subscribed: route MAC overhearing upward."""
        self.mac.on_data_overheard = self._on_data_overheard

    def _on_data_overheard(self, frame: Frame, now: int) -> None:
        for callback in self.sniffer_callbacks:
            callback(frame, now)

    def _on_tx_success(self, entity: TxEntity, packet: Packet, frame: Frame, *_: object) -> None:
        now = self.engine.now
        if packet.first_tx_at is None and packet.src == self.node_id:
            packet.first_tx_at = now
        for callback in self.sent_callbacks:
            callback(entity, packet, frame, now)

    def _on_tx_drop(self, entity: TxEntity, packet: Packet) -> None:
        self._bump_mac_drops()
