"""End-to-end packets and their 16-bit identifiers.

EZ-flow's BOE identifies packets by the transport-layer 16-bit checksum
found in the header (no extra computation, no header modification). We
model that identifier faithfully — including its collision behaviour in
the 16-bit space — by hashing the packet's invariant fields down to 16
bits.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Hashable, Optional

DEFAULT_PACKET_BYTES = 1000


def checksum16(flow_id: Hashable, seq: int, salt: int = 0) -> int:
    """Deterministic 16-bit identifier, as a transport checksum stand-in.

    Collisions occur at the genuine 1/65536 birthday rate, which is what
    the BOE has to live with on a real network.
    """
    data = f"{flow_id}|{seq}|{salt}".encode()
    return zlib.crc32(data) & 0xFFFF


@dataclass
class Packet:
    """One transport datagram travelling source -> destination."""

    flow_id: Hashable
    seq: int
    src: Hashable
    dst: Hashable
    size_bytes: int = DEFAULT_PACKET_BYTES
    created_at: int = 0
    delivered_at: Optional[int] = None
    first_tx_at: Optional[int] = None
    hops: int = 0
    checksum: int = field(default=-1)

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.checksum == -1:
            self.checksum = checksum16(self.flow_id, self.seq)

    @property
    def delay_us(self) -> Optional[int]:
        """End-to-end delay in microseconds (None until delivered)."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    @property
    def path_delay_us(self) -> Optional[int]:
        """Network-path delay: first successful hop -> delivery.

        Excludes the queueing a saturating application inflicts on its
        own source buffer, isolating the multi-hop (relay) delay the
        flow-control mechanism governs.
        """
        if self.delivered_at is None or self.first_tx_at is None:
            return None
        return self.delivered_at - self.first_tx_at
