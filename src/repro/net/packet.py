"""End-to-end packets and their 16-bit identifiers.

EZ-flow's BOE identifies packets by the transport-layer 16-bit checksum
found in the header (no extra computation, no header modification). We
model that identifier faithfully — including its collision behaviour in
the 16-bit space — by hashing the packet's invariant fields down to 16
bits.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, Optional

DEFAULT_PACKET_BYTES = 1000

#: flow_id -> encoded "flow_id|" prefix; computed per packet otherwise.
_PREFIX_CACHE: Dict[Hashable, bytes] = {}


def checksum16(flow_id: Hashable, seq: int, salt: int = 0) -> int:
    """Deterministic 16-bit identifier, as a transport checksum stand-in.

    Collisions occur at the genuine 1/65536 birthday rate, which is what
    the BOE has to live with on a real network.
    """
    prefix = _PREFIX_CACHE.get(flow_id)
    if prefix is None:
        prefix = _PREFIX_CACHE[flow_id] = f"{flow_id}|".encode()
    # Identical bytes to f"{flow_id}|{seq}|{salt}".encode().
    return zlib.crc32(prefix + b"%d|%d" % (seq, salt)) & 0xFFFF


class Packet:
    """One transport datagram travelling source -> destination.

    Hand-rolled slotted class (not a dataclass): sources create one per
    generated packet, so construction is a hot path.
    """

    __slots__ = (
        "flow_id",
        "seq",
        "src",
        "dst",
        "size_bytes",
        "created_at",
        "delivered_at",
        "first_tx_at",
        "hops",
        "checksum",
    )

    def __init__(
        self,
        flow_id: Hashable,
        seq: int,
        src: Hashable,
        dst: Hashable,
        size_bytes: int = DEFAULT_PACKET_BYTES,
        created_at: int = 0,
        delivered_at: Optional[int] = None,
        first_tx_at: Optional[int] = None,
        hops: int = 0,
        checksum: int = -1,
    ):
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        self.flow_id = flow_id
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.created_at = created_at
        self.delivered_at = delivered_at
        self.first_tx_at = first_tx_at
        self.hops = hops
        self.checksum = checksum if checksum != -1 else checksum16(flow_id, seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(flow_id={self.flow_id!r}, seq={self.seq}, "
            f"src={self.src!r}, dst={self.dst!r})"
        )

    @property
    def delay_us(self) -> Optional[int]:
        """End-to-end delay in microseconds (None until delivered)."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    @property
    def path_delay_us(self) -> Optional[int]:
        """Network-path delay: first successful hop -> delivery.

        Excludes the queueing a saturating application inflicts on its
        own source buffer, isolating the multi-hop (relay) delay the
        flow-control mechanism governs.
        """
        if self.delivered_at is None or self.first_tx_at is None:
            return None
        return self.delivered_at - self.first_tx_at
