"""Static routing (the NOAH agent of the ns-2 experiments).

Routes only change when topology does: the paper's scenarios pin routes
for a whole run to isolate MAC-layer effects from route flaps, while
churn/mobility schedules (:mod:`repro.topology.churn`) re-run BFS after
each topology mutation and overwrite the affected next hops in place.
Node stacks cache their per-destination queue resolution, so a re-route
must also call ``NodeStack.invalidate_route_caches`` on every node.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

NodeId = Hashable


class RoutingError(Exception):
    """No route, or an inconsistent route definition."""


class StaticRouting:
    """Per-node next-hop tables, with helpers to install whole paths."""

    def __init__(self):
        self._next_hop: Dict[Tuple[NodeId, NodeId], NodeId] = {}

    def set_next_hop(self, node: NodeId, destination: NodeId, next_hop: NodeId) -> None:
        """Install one routing entry: at ``node``, toward ``destination``."""
        if node == destination:
            raise RoutingError("a node needs no route to itself")
        if next_hop == node:
            raise RoutingError("next hop cannot be the node itself")
        self._next_hop[(node, destination)] = next_hop

    def install_path(self, path: List[NodeId]) -> None:
        """Install next hops along ``path`` toward its final element.

        ``path = [a, b, c, d]`` installs a->b, b->c, c->d for destination
        ``d``.
        """
        if len(path) < 2:
            raise RoutingError("a path needs at least two nodes")
        if len(set(path)) != len(path):
            raise RoutingError("path must not repeat nodes")
        destination = path[-1]
        for here, nxt in zip(path, path[1:]):
            self.set_next_hop(here, destination, nxt)

    def next_hop(self, node: NodeId, destination: NodeId) -> NodeId:
        """The configured next hop (raises RoutingError when unrouted)."""
        try:
            return self._next_hop[(node, destination)]
        except KeyError:
            raise RoutingError(f"no route from {node!r} to {destination!r}") from None

    def has_route(self, node: NodeId, destination: NodeId) -> bool:
        """True when a next hop is installed for (node, destination)."""
        return (node, destination) in self._next_hop

    def destinations(self) -> List[NodeId]:
        """Distinct destinations with at least one installed route.

        Deterministically ordered (repr-sorted). This is what a churn
        re-route recomputes: one fresh BFS tree per destination already
        present in the tables (gateways, and the reverse routes of
        windowed transports), so every live traffic direction follows
        the mutated topology.
        """
        seen = {dst for (_node, dst) in self._next_hop}
        return sorted(seen, key=repr)

    def successors_of(self, node: NodeId) -> List[NodeId]:
        """Distinct next hops this node forwards to (queue-per-successor)."""
        seen: List[NodeId] = []
        for (here, _dst), nxt in self._next_hop.items():
            if here == node and nxt not in seen:
                seen.append(nxt)
        return seen

    def path(self, source: NodeId, destination: NodeId, max_hops: int = 64) -> List[NodeId]:
        """Materialise the full path by following next hops."""
        path = [source]
        node = source
        for _ in range(max_hops):
            node = self.next_hop(node, destination)
            path.append(node)
            if node == destination:
                return path
        raise RoutingError(f"route {source!r}->{destination!r} exceeds {max_hops} hops (loop?)")
