"""Physical layer substrate.

A protocol-model channel equivalent to ns-2's threshold reception under
two-ray ground propagation: a frame is decodable inside the transmit
range, and a transmitter interferes with (and is carrier-sensed by) every
node inside the sensing range. Per-link erasure rates model lossy testbed
links (Table 1 calibration).
"""

from repro.phy.channel import Channel, Transmission, PhyListener
from repro.phy.propagation import (
    Position,
    distance,
    TwoRayGround,
    RangeModel,
)
from repro.phy.rates import PhyRates, DSSS_1MBPS

__all__ = [
    "Channel",
    "Transmission",
    "PhyListener",
    "Position",
    "distance",
    "TwoRayGround",
    "RangeModel",
    "PhyRates",
    "DSSS_1MBPS",
]
