"""Shared wireless channel with collisions, erasures and overhearing.

The channel tracks every in-flight transmission. A node inside the
sender's sensing set perceives the medium busy for the frame's duration;
a node inside the reception set decodes the frame at its end unless

* it was itself transmitting during any part of the frame,
* some other overlapping transmission was sensed at that node
  (co-channel interference / hidden-terminal collision), or
* an independent per-link erasure strikes (lossy-link calibration).

Decoded frames addressed to the node are delivered via
``on_frame_received``; decoded frames addressed elsewhere are delivered
via ``on_frame_overheard`` — this is the broadcast-nature side channel
EZ-flow's BOE relies on. Sensed-but-undecodable frame ends are reported
via ``on_frame_error`` so the MAC can apply EIFS.

Implementation notes (this is the hottest module of the simulator):
connectivity is static between configuration calls and topology
mutations (each mutation bumps the map's epoch; plans are tagged with
the epoch they were built under and rebuild lazily per sender, while
in-flight frames resolve under the plan snapshotted at transmit time).
Per-sender "delivery plans" — the repr-sorted attached listeners with
their receive power, decodability and loss probabilities — are built
lazily on a sender's *first transmission* and reused by every
subsequent frame
(senders that never transmit never pay a plan build; a 100-node mesh
with four flows builds plans for the handful of nodes actually on air).
Plan rows come in two shapes: full rows for nodes that can decode the
sender, and lean rows for sense-only nodes (the majority inside a large
mesh's 550 m interference radius), which skip all corruption
bookkeeping — corruption is only ever consulted where a frame is
decodable. Pairwise capture outcomes are resolved into frozensets that
are interned channel-wide, so the quadratic family of per-(sender,
node) sets collapses onto the handful of distinct ones. The repr-sort
order and the RNG draw sequence (one erasure draw per decodable frame,
one sniffer draw per lossy overhearing) are exactly the original
semantics: results are bit-identical to the unoptimized channel, just
cheaper per frame and per plan build.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from itertools import repeat as _repeat
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.phy.connectivity import ConnectivityMap, NodeId
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder, _noop


def _drain(iterator) -> None:
    """Exhaust an iterator at C speed (the map() side-effect idiom)."""
    deque(iterator, maxlen=0)


class PhyListener:
    """Callbacks a MAC entity implements to attach to the channel."""

    #: Truthiness gate for busy/idle delivery. The channel checks this
    #: *at frame time* (the plan rows alias the object, not its value):
    #: when falsy, ``on_medium_busy``/``on_medium_idle`` are skipped for
    #: this node. The default — an always-truthy tuple — delivers every
    #: transition. :class:`~repro.mac.dcf.Dcf` aliases its live entity
    #: list here, so the many pure-sink/bystander nodes of a large mesh
    #: (no transmit queues, hence provably transition-indifferent) stop
    #: paying a Python call per overheard frame edge; the moment a node
    #: grows its first entity the shared list turns truthy and delivery
    #: resumes. Reception callbacks are never gated.
    medium_watchers = (True,)

    def on_medium_busy(self, now: int) -> None:
        """Medium transitioned idle -> busy at this node."""

    def on_medium_idle(self, now: int) -> None:
        """Medium transitioned busy -> idle at this node."""

    def on_frame_received(self, frame, now: int) -> None:
        """A decodable frame addressed to this node ended."""

    def on_frame_overheard(self, frame, now: int) -> None:
        """A decodable frame addressed to another node ended."""

    def on_frame_error(self, now: int) -> None:
        """A sensed frame ended undecodable (collision/erasure) here."""


class Transmission:
    """One in-flight frame."""

    __slots__ = ("sender", "frame", "start", "end", "corrupted_at", "rx_plan")

    def __init__(self, sender: NodeId, frame, start: int, end: int):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end
        # Nodes where this frame is known undecodable; allocated lazily
        # because most frames are never corrupted anywhere.
        self.corrupted_at: Optional[Set[NodeId]] = None
        # Delivery plan captured at transmit time (set by the channel).
        self.rx_plan = None

    @property
    def duration(self) -> int:
        return self.end - self.start


class ChannelPort:
    """Per-attached-node medium state; the MAC's fast carrier-sense handle.

    ``sensed`` holds the foreign transmissions currently on the air at
    this node, ``own_tx`` its own in-flight frame. ``attach`` returns the
    port so a MAC can carrier-sense without going through the channel's
    dictionaries: the medium is idle iff ``not port.sensed and
    port.own_tx is None``.
    """

    __slots__ = ("node_id", "listener", "sensed", "own_tx", "watchers")

    def __init__(self, node_id: NodeId, listener: PhyListener):
        self.node_id = node_id
        self.listener = listener
        self.sensed: Set[Transmission] = set()
        self.own_tx: Optional[Transmission] = None
        # Cached busy/idle gate of the listener (see
        # PhyListener.medium_watchers); refreshed on attach.
        self.watchers = getattr(listener, "medium_watchers", (True,))

    @property
    def idle(self) -> bool:
        return not self.sensed and self.own_tx is None


#: Default physical capture threshold (linear SIR), ns-2's classic 10 dB:
#: a frame survives a concurrent interferer whose signal is >= 10x weaker.
DEFAULT_CAPTURE_RATIO = 10.0


class Channel:
    """The shared medium; one instance per simulation."""

    def __init__(
        self,
        engine: Engine,
        connectivity: ConnectivityMap,
        rng: RngRegistry,
        trace: Optional[TraceRecorder] = None,
        capture_ratio: float = DEFAULT_CAPTURE_RATIO,
    ):
        self.engine = engine
        self.connectivity = connectivity
        self.rng = rng.stream("phy.erasures")
        self.trace = trace
        # Counter hooks pre-bound once: a no-op when tracing is off or
        # the experiment declared it does not consume the PHY counters.
        if trace is None:
            self._bump_tx_started = _noop
            self._bump_rx_ok = _noop
            self._bump_rx_error = _noop
        else:
            self._bump_tx_started = trace.counter_hook("phy.tx_started")
            self._bump_rx_ok = trace.counter_hook("phy.rx_ok")
            self._bump_rx_error = trace.counter_hook("phy.rx_error")
        if capture_ratio < 1.0:
            raise ValueError("capture_ratio must be >= 1 (linear SIR)")
        self.capture_ratio = capture_ratio
        self._ports: Dict[NodeId, ChannelPort] = {}
        # Directional erasure probability per (sender, receiver).
        self._loss: Dict[tuple, float] = {}
        # Directional *stateful* loss models per (sender, receiver) —
        # see repro.phy.linkstate. A configured model takes precedence
        # over the static probability on the same link; the plan row's
        # loss slot then carries the model object instead of a float.
        self._link_models: Dict[tuple, object] = {}
        # Probability an otherwise decodable *overheard* frame is missed
        # by the sniffer at a given node (BOE robustness experiments).
        self._overhear_loss: Dict[NodeId, float] = {}
        self.active_transmissions: List[Transmission] = []
        # sender -> (tx_plan, rx_plan), repr-sorted over the attached
        # sensors of the sender; tx_plan rows carry what frame *starts*
        # need (busy callbacks plus precomputed capture-outcome sets),
        # rx_plan rows what frame *ends* need (delivery callbacks and
        # loss probabilities). Listener methods are pre-bound so
        # per-frame dispatch skips the attribute walks. Built lazily on
        # a sender's first transmission; dropped wholesale after any
        # attach/loss-configuration change.
        self._plans: Dict[NodeId, tuple] = {}
        # node -> {sender: rx power} over the senders sensed at node,
        # and the channel-wide intern table for capture-outcome sets.
        # Both depend only on the (immutable) connectivity map and the
        # capture ratio, so they survive attach/loss reconfiguration.
        self._node_powers: Dict[NodeId, Dict[NodeId, float]] = {}
        self._capture_sets: Dict[frozenset, frozenset] = {}
        # Connectivity epoch the cached plans (and power maps) were
        # built under. Dynamic maps (churn/mobility) bump their epoch on
        # mutation; a mismatch invalidates every cached plan lazily —
        # in-flight transmissions keep the plan snapshotted at transmit
        # time, so frames already on the air resolve under the topology
        # they started in.
        self._plan_epoch: int = connectivity.epoch

    # -- wiring ---------------------------------------------------------

    def attach(self, node_id: NodeId, listener: PhyListener) -> ChannelPort:
        """Register the MAC entity of ``node_id``; returns its port."""
        if node_id not in self.connectivity.nodes():
            raise ValueError(f"node {node_id!r} not in connectivity map")
        port = self._ports.get(node_id)
        if port is None:
            port = self._ports[node_id] = ChannelPort(node_id, listener)
        else:
            port.listener = listener
            port.watchers = getattr(listener, "medium_watchers", (True,))
        self._plans.clear()
        return port

    def set_link_loss(self, sender: NodeId, receiver: NodeId, probability: float) -> None:
        """Set the erasure probability of the directed link sender->receiver."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._loss[(sender, receiver)] = float(probability)
        self._plans.clear()

    def set_link_model(self, sender: NodeId, receiver: NodeId, model) -> None:
        """Install a stateful loss model on the directed link sender->receiver.

        ``model`` is consulted once per otherwise-decodable frame end at
        the receiver (``model.erased() -> bool``; see
        :mod:`repro.phy.linkstate`) and takes precedence over any static
        :meth:`set_link_loss` probability on the same link. ``None``
        removes the model. Models draw from their own per-link RNG
        streams, so installing them never perturbs the channel's shared
        erasure stream — lossless runs stay bit-identical.
        """
        if model is None:
            self._link_models.pop((sender, receiver), None)
        else:
            self._link_models[(sender, receiver)] = model
        self._plans.clear()

    def link_model(self, sender: NodeId, receiver: NodeId):
        """The installed loss model of the directed link, or ``None``."""
        return self._link_models.get((sender, receiver))

    def link_model_count(self) -> int:
        """Number of directed links carrying a stateful loss model."""
        return len(self._link_models)

    def connectivity_changed(self) -> None:
        """Invalidate every topology-derived cache after a map mutation.

        Callers mutating :attr:`connectivity` through its mutation API
        need not call this — the epoch check in :meth:`_plan_for` (and
        on the transmit path) catches the change — but invalidating
        eagerly keeps the caches honest for direct inspection.
        """
        self._plans.clear()
        self._node_powers.clear()
        self._plan_epoch = self.connectivity.epoch

    def set_overhear_loss(self, node_id: NodeId, probability: float) -> None:
        """Set the sniffer miss probability at ``node_id``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._overhear_loss[node_id] = probability
        self._plans.clear()

    def _powers_at(self, node: NodeId) -> Dict[NodeId, float]:
        """Receive power at ``node`` of every sender it can sense (cached)."""
        powers = self._node_powers.get(node)
        if powers is None:
            connectivity = self.connectivity
            rx_power = connectivity.rx_power
            powers = self._node_powers[node] = {
                s: rx_power(node, s) for s in connectivity.senders_sensed_at(node)
            }
        return powers

    def _plan_for(self, sender: NodeId) -> tuple:
        """The precomputed plan of one sender (lazy build on first tx).

        Returns ``(tx_passive, tx_active, rx_passive, rx_active,
        passive_sets)``, where ``passive_sets`` aliases ``rx_passive``
        (the bare sensed sets, for the C-level sweeps). Rows are
        partitioned by what can ever happen at the node:

        * *passive* — sense-only for this sender AND no medium watchers
          at build time (see :attr:`PhyListener.medium_watchers`): the
          frame only occupies the node's ``sensed`` set and may capture-
          kill decodable concurrent frames there. tx rows are ``(node,
          sensed, kills)``; rx "rows" are the bare ``sensed`` sets.
        * *active* — everything else, in repr-sorted node order. tx rows
          are ``(port, node, sensed, on_busy, kills, dies)`` when the
          node can decode the sender, ``(port, node, sensed, on_busy,
          kills)`` when sense-only; rx rows ``(port, node, sensed,
          on_idle, on_rx, on_over, on_err, loss, miss)`` / ``(port,
          node, sensed, on_idle)`` respectively.

        ``kills`` holds the concurrent senders whose overlapping frame
        this one corrupts at ``node``, restricted to senders the node
        can decode (the only corruption ever consulted); ``dies`` the
        senders whose frame corrupts this one there. Both frozensets
        are interned channel-wide. A passive node that grows its first
        transmit entity is re-partitioned via
        :meth:`activate_listener`, which also patches the plans of
        in-flight frames — so the split never loses a busy/idle edge.

        Plans are tagged with the connectivity epoch they were built
        under: a dynamic map mutation (churn, mobility) invalidates the
        whole cache here, wholesale, and each sender rebuilds lazily on
        its next transmission. The per-node power maps are dropped too
        (they depend on positions); the capture-set intern table is
        content-keyed and survives.
        """
        epoch = self.connectivity.epoch
        if epoch != self._plan_epoch:
            self._plans.clear()
            self._node_powers.clear()
            self._plan_epoch = epoch
        plans = self._plans.get(sender)
        if plans is None:
            connectivity = self.connectivity
            ratio = self.capture_ratio
            interned = self._capture_sets
            tx_passive: List[tuple] = []
            tx_active: List[tuple] = []
            rx_passive: List[set] = []
            rx_active: List[tuple] = []
            # Sorted iteration keeps event order independent of set-hash
            # randomization (node ids may be strings), so identical seeds
            # reproduce identical runs across processes.
            for node in sorted(connectivity.sensors_of(sender), key=repr):
                port = self._ports.get(node)
                if port is None:
                    continue
                listener = port.listener
                powers = self._powers_at(node)
                p_new = powers.get(sender)
                if p_new is None:  # defensive: inconsistent custom maps
                    p_new = connectivity.rx_power(node, sender)
                kills = frozenset(
                    s
                    for s in connectivity.senders_received_at(node)
                    if s != sender and powers.get(s, 0.0) < ratio * p_new
                )
                kills = interned.setdefault(kills, kills)
                watchers = port.watchers
                if connectivity.can_receive(node, sender):
                    dies = frozenset(
                        s
                        for s, p in powers.items()
                        if s != sender and p_new < ratio * p
                    )
                    dies = interned.setdefault(dies, dies)
                    tx_active.append(
                        (port, node, port.sensed, listener.on_medium_busy, kills, dies)
                    )
                    rx_active.append(
                        (
                            port,
                            node,
                            port.sensed,
                            listener.on_medium_idle,
                            listener.on_frame_received,
                            listener.on_frame_overheard,
                            listener.on_frame_error,
                            # Stateful model if installed, else the
                            # static probability (0.0 = lossless).
                            self._link_models.get((sender, node))
                            or self._loss.get((sender, node), 0.0),
                            self._overhear_loss.get(node, 0.0),
                        )
                    )
                elif watchers:
                    tx_active.append(
                        (port, node, port.sensed, listener.on_medium_busy, kills)
                    )
                    rx_active.append(
                        (port, node, port.sensed, listener.on_medium_idle)
                    )
                else:
                    tx_passive.append((node, port.sensed, kills))
                    rx_passive.append(port.sensed)
            plans = self._plans[sender] = (
                tx_passive,
                tx_active,
                rx_passive,
                rx_active,
                rx_passive,  # alias: bare passive sets for the C-level sweeps
            )
        return plans

    def activate_listener(self, node_id: NodeId) -> None:
        """A passive listener now watches medium transitions.

        Called by the MAC when a node acquires its first transmit
        entity. Drops every cached plan (future transmissions rebuild
        with the node in the active partition) and patches the plans
        held by in-flight transmissions in place — the passive rx entry
        becomes an active sense-only row at its repr-sorted position —
        so the node's idle edge at those frames' ends is delivered
        exactly as an unpartitioned channel would have.
        """
        self._plans.clear()
        port = self._ports.get(node_id)
        if port is None:
            return
        sensed_set = port.sensed
        listener = port.listener
        key = repr(node_id)
        patched = set()
        for tx in self.active_transmissions:
            plan = tx.rx_plan
            if plan is None or id(plan) in patched:
                continue
            patched.add(id(plan))
            rx_passive, rx_active = plan[2], plan[3]
            for i, row_sensed in enumerate(rx_passive):
                if row_sensed is sensed_set:
                    del rx_passive[i]
                    position = 0
                    for j, row in enumerate(rx_active):
                        if repr(row[1]) < key:
                            position = j + 1
                    rx_active.insert(
                        position, (port, node_id, sensed_set, listener.on_medium_idle)
                    )
                    break

    # -- carrier sense --------------------------------------------------

    def is_idle(self, node_id: NodeId) -> bool:
        """True when ``node_id`` senses no transmission and is not sending."""
        port = self._ports[node_id]
        return not port.sensed and port.own_tx is None

    def is_transmitting(self, node_id: NodeId) -> bool:
        """True while ``node_id`` has a frame of its own in the air."""
        return self._ports[node_id].own_tx is not None

    # -- transmission ---------------------------------------------------

    def transmit(self, sender: NodeId, frame, duration_us: int) -> Transmission:
        """Start a frame transmission from ``sender`` lasting ``duration_us``.

        The MAC must not call this while the sender already transmits.
        Returns the transmission record; completion is self-scheduled.
        """
        sender_port = self._ports[sender]
        if sender_port.own_tx is not None:
            raise RuntimeError(f"node {sender!r} is already transmitting")
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        now = self.engine.now
        tx = Transmission(sender, frame, now, now + duration_us)
        sender_port.own_tx = tx
        self.active_transmissions.append(tx)
        self._bump_tx_started()

        corrupted = None
        plans = self._plans.get(sender)
        if plans is None or self._plan_epoch != self.connectivity.epoch:
            plans = self._plan_for(sender)
        tx.rx_plan = plans
        if not plans[0]:
            pass  # dense-entity topology (chains/testbed): no passive rows
        elif len(self.active_transmissions) == 1:
            # Nothing else on the air anywhere: every sensed set is
            # empty, so no captures are possible — occupy the passive
            # bystanders' media in one C-level sweep.
            _drain(map(set.add, plans[4], _repeat(tx)))
        else:
            for node, sensed, kills in plans[0]:
                # Passive bystander: occupy the medium and resolve
                # captures against decodable concurrent frames; nothing
                # to call.
                if sensed and kills:
                    for other in sensed:
                        if other.sender in kills:
                            other_corrupted = other.corrupted_at
                            if other_corrupted is None:
                                other_corrupted = other.corrupted_at = set()
                            other_corrupted.add(node)
                sensed.add(tx)
        for row in plans[1]:
            if len(row) == 5:
                # Sense-only node with medium watchers: no corruption
                # bookkeeping for tx itself (it can never decode here) —
                # only capture kills plus the busy transition.
                port, node, sensed, on_busy, kills = row
                was_idle = port.own_tx is None and not sensed
                if sensed and kills:
                    for other in sensed:
                        if other.sender in kills:
                            other_corrupted = other.corrupted_at
                            if other_corrupted is None:
                                other_corrupted = other.corrupted_at = set()
                            other_corrupted.add(node)
                sensed.add(tx)
                if was_idle:
                    on_busy(now)
                continue
            port, node, sensed, on_busy, kills, dies = row
            # A node that is itself transmitting cannot decode anything.
            if port.own_tx is not None:
                if corrupted is None:
                    corrupted = tx.corrupted_at = set()
                corrupted.add(node)
                was_idle = False
            else:
                was_idle = not sensed
            # Physical capture: overlapping frames only corrupt each
            # other at this node when their signal ratio is below the
            # capture threshold. A 1-hop frame therefore survives 2-hop
            # interference (d^-4 gives ~12 dB), which is what lets
            # mutually hidden links fire in parallel successfully —
            # the paper's Table 4 activation patterns. The comparisons
            # are pre-resolved into the kills/dies sets.
            if sensed and (kills or dies):
                for other in sensed:
                    other_sender = other.sender
                    if other_sender in kills:
                        other_corrupted = other.corrupted_at
                        if other_corrupted is None:
                            other_corrupted = other.corrupted_at = set()
                        other_corrupted.add(node)
                    if other_sender in dies:
                        if corrupted is None:
                            corrupted = tx.corrupted_at = set()
                        corrupted.add(node)
            sensed.add(tx)
            if was_idle:
                on_busy(now)

        # Engine.post inlined (hot path): completion is self-scheduled.
        engine = self.engine
        seq = engine._seq
        engine._seq = seq + 1
        heappush(engine._heap, (now + duration_us, seq, self._finish, (tx,)))
        return tx

    def _finish(self, tx: Transmission) -> None:
        now = self.engine.now
        sender = tx.sender
        sender_port = self._ports[sender]
        sender_port.own_tx = None
        self.active_transmissions.remove(tx)

        rng_random = self.rng.random
        bump_rx_ok = self._bump_rx_ok
        bump_rx_error = self._bump_rx_error
        corrupted = tx.corrupted_at
        frame = tx.frame
        dst = frame.dst
        plan = tx.rx_plan
        # Passive bystanders: release the medium in one C-level sweep —
        # nothing to call. (Their order relative to the active rows is
        # unobservable: passive rows never draw RNG, post events, or run
        # callbacks, and every row only touches its own node's state.)
        if plan[2]:
            _drain(map(set.discard, plan[2], _repeat(tx)))
        for row in plan[3]:
            if len(row) == 4:
                # Sense-only node with medium watchers: release the
                # medium and report the idle transition.
                port, node, sensed, on_idle = row
                sensed.discard(tx)
                if not sensed and port.own_tx is None:
                    on_idle(now)
                continue
            port, node, sensed, on_idle, on_rx, on_over, on_err, loss, miss = row
            sensed.discard(tx)
            decodable = corrupted is None or node not in corrupted
            if decodable and loss:
                # The loss slot is either a static probability (drawn
                # from the shared erasure stream — the original path,
                # draw-for-draw) or a stateful per-link model with its
                # own stream (repro.phy.linkstate).
                if loss.__class__ is float:
                    if rng_random() < loss:
                        decodable = False
                elif loss.erased():
                    decodable = False
            if decodable:
                if dst == node:
                    bump_rx_ok()
                    on_rx(frame, now)
                elif not miss or rng_random() >= miss:
                    on_over(frame, now)
            else:
                # Reception-grade signal that arrived corrupted: the PHY
                # saw a frame but could not decode it -> EIFS applies.
                # Sense-only signals merely occupy the medium (no PLCP
                # decode is attempted), matching ns-2's behaviour.
                bump_rx_error()
                on_err(now)
            if not sensed and port.own_tx is None:
                on_idle(now)

        # The sender's own view: it was busy with its own transmission.
        if not sender_port.sensed and sender_port.own_tx is None and sender_port.watchers:
            sender_port.listener.on_medium_idle(now)
