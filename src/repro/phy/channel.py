"""Shared wireless channel with collisions, erasures and overhearing.

The channel tracks every in-flight transmission. A node inside the
sender's sensing set perceives the medium busy for the frame's duration;
a node inside the reception set decodes the frame at its end unless

* it was itself transmitting during any part of the frame,
* some other overlapping transmission was sensed at that node
  (co-channel interference / hidden-terminal collision), or
* an independent per-link erasure strikes (lossy-link calibration).

Decoded frames addressed to the node are delivered via
``on_frame_received``; decoded frames addressed elsewhere are delivered
via ``on_frame_overheard`` — this is the broadcast-nature side channel
EZ-flow's BOE relies on. Sensed-but-undecodable frame ends are reported
via ``on_frame_error`` so the MAC can apply EIFS.

Implementation notes (this is the hottest module of the simulator):
connectivity is static between configuration calls, so per-sender
"delivery plans" — the repr-sorted attached listeners with their receive
power, decodability and loss probabilities — are precomputed once and
reused by every transmission. The repr-sort order and the RNG draw
sequence (one erasure draw per decodable frame, one sniffer draw per
lossy overhearing) are exactly the original semantics: results are
bit-identical to the unoptimized channel, just ~2x cheaper per frame.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.phy.connectivity import ConnectivityMap, NodeId
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder


class PhyListener:
    """Callbacks a MAC entity implements to attach to the channel."""

    def on_medium_busy(self, now: int) -> None:
        """Medium transitioned idle -> busy at this node."""

    def on_medium_idle(self, now: int) -> None:
        """Medium transitioned busy -> idle at this node."""

    def on_frame_received(self, frame, now: int) -> None:
        """A decodable frame addressed to this node ended."""

    def on_frame_overheard(self, frame, now: int) -> None:
        """A decodable frame addressed to another node ended."""

    def on_frame_error(self, now: int) -> None:
        """A sensed frame ended undecodable (collision/erasure) here."""


class Transmission:
    """One in-flight frame."""

    __slots__ = ("sender", "frame", "start", "end", "corrupted_at", "rx_plan")

    def __init__(self, sender: NodeId, frame, start: int, end: int):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end
        # Nodes where this frame is known undecodable; allocated lazily
        # because most frames are never corrupted anywhere.
        self.corrupted_at: Optional[Set[NodeId]] = None
        # Delivery plan captured at transmit time (set by the channel).
        self.rx_plan = None

    @property
    def duration(self) -> int:
        return self.end - self.start


class ChannelPort:
    """Per-attached-node medium state; the MAC's fast carrier-sense handle.

    ``sensed`` holds the foreign transmissions currently on the air at
    this node, ``own_tx`` its own in-flight frame. ``attach`` returns the
    port so a MAC can carrier-sense without going through the channel's
    dictionaries: the medium is idle iff ``not port.sensed and
    port.own_tx is None``.
    """

    __slots__ = ("node_id", "listener", "sensed", "own_tx")

    def __init__(self, node_id: NodeId, listener: PhyListener):
        self.node_id = node_id
        self.listener = listener
        self.sensed: Set[Transmission] = set()
        self.own_tx: Optional[Transmission] = None

    @property
    def idle(self) -> bool:
        return not self.sensed and self.own_tx is None


#: Default physical capture threshold (linear SIR), ns-2's classic 10 dB:
#: a frame survives a concurrent interferer whose signal is >= 10x weaker.
DEFAULT_CAPTURE_RATIO = 10.0


class Channel:
    """The shared medium; one instance per simulation."""

    def __init__(
        self,
        engine: Engine,
        connectivity: ConnectivityMap,
        rng: RngRegistry,
        trace: Optional[TraceRecorder] = None,
        capture_ratio: float = DEFAULT_CAPTURE_RATIO,
    ):
        self.engine = engine
        self.connectivity = connectivity
        self.rng = rng.stream("phy.erasures")
        self.trace = trace
        if capture_ratio < 1.0:
            raise ValueError("capture_ratio must be >= 1 (linear SIR)")
        self.capture_ratio = capture_ratio
        self._ports: Dict[NodeId, ChannelPort] = {}
        # Directional erasure probability per (sender, receiver).
        self._loss: Dict[tuple, float] = {}
        # Probability an otherwise decodable *overheard* frame is missed
        # by the sniffer at a given node (BOE robustness experiments).
        self._overhear_loss: Dict[NodeId, float] = {}
        self.active_transmissions: List[Transmission] = []
        # sender -> (tx_plan, rx_plan), repr-sorted over the attached
        # sensors of the sender; tx_plan rows carry what frame *starts*
        # need (busy callbacks plus precomputed capture-outcome sets),
        # rx_plan rows what frame *ends* need (delivery callbacks and
        # loss probabilities). Listener methods are pre-bound so
        # per-frame dispatch skips the attribute walks. Rebuilt lazily
        # after any attach/loss-configuration change.
        self._plans: Dict[NodeId, tuple] = {}

    # -- wiring ---------------------------------------------------------

    def attach(self, node_id: NodeId, listener: PhyListener) -> ChannelPort:
        """Register the MAC entity of ``node_id``; returns its port."""
        if node_id not in self.connectivity.nodes():
            raise ValueError(f"node {node_id!r} not in connectivity map")
        port = self._ports.get(node_id)
        if port is None:
            port = self._ports[node_id] = ChannelPort(node_id, listener)
        else:
            port.listener = listener
        self._plans.clear()
        return port

    def set_link_loss(self, sender: NodeId, receiver: NodeId, probability: float) -> None:
        """Set the erasure probability of the directed link sender->receiver."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._loss[(sender, receiver)] = probability
        self._plans.clear()

    def set_overhear_loss(self, node_id: NodeId, probability: float) -> None:
        """Set the sniffer miss probability at ``node_id``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._overhear_loss[node_id] = probability
        self._plans.clear()

    def _plan_for(self, sender: NodeId) -> tuple:
        """The precomputed (tx_plan, rx_plan) of one sender (lazy build)."""
        plans = self._plans.get(sender)
        if plans is None:
            connectivity = self.connectivity
            ratio = self.capture_ratio
            all_nodes = connectivity.nodes()
            tx_plan = []
            rx_plan = []
            # Sorted iteration keeps event order independent of set-hash
            # randomization (node ids may be strings), so identical seeds
            # reproduce identical runs across processes.
            for node in sorted(connectivity.sensors_of(sender), key=repr):
                port = self._ports.get(node)
                if port is None:
                    continue
                listener = port.listener
                p_new = connectivity.rx_power(node, sender)
                # Capture outcomes against every possible concurrent
                # sender, resolved to membership sets: senders whose
                # overlapping frame this one corrupts at `node`, and
                # senders whose frame corrupts this one.
                others = [
                    s
                    for s in all_nodes
                    if s != sender and connectivity.can_sense(node, s)
                ]
                kills = frozenset(
                    s for s in others if connectivity.rx_power(node, s) < ratio * p_new
                )
                dies = frozenset(
                    s for s in others if p_new < ratio * connectivity.rx_power(node, s)
                )
                tx_plan.append(
                    (port, node, port.sensed, listener.on_medium_busy, kills, dies)
                )
                rx_plan.append(
                    (
                        port,
                        node,
                        port.sensed,
                        listener.on_medium_idle,
                        listener.on_frame_received,
                        listener.on_frame_overheard,
                        listener.on_frame_error,
                        connectivity.can_receive(node, sender),
                        self._loss.get((sender, node), 0.0),
                        self._overhear_loss.get(node, 0.0),
                    )
                )
            plans = self._plans[sender] = (tx_plan, rx_plan)
        return plans

    # -- carrier sense --------------------------------------------------

    def is_idle(self, node_id: NodeId) -> bool:
        """True when ``node_id`` senses no transmission and is not sending."""
        port = self._ports[node_id]
        return not port.sensed and port.own_tx is None

    def is_transmitting(self, node_id: NodeId) -> bool:
        """True while ``node_id`` has a frame of its own in the air."""
        return self._ports[node_id].own_tx is not None

    # -- transmission ---------------------------------------------------

    def transmit(self, sender: NodeId, frame, duration_us: int) -> Transmission:
        """Start a frame transmission from ``sender`` lasting ``duration_us``.

        The MAC must not call this while the sender already transmits.
        Returns the transmission record; completion is self-scheduled.
        """
        sender_port = self._ports[sender]
        if sender_port.own_tx is not None:
            raise RuntimeError(f"node {sender!r} is already transmitting")
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        now = self.engine.now
        tx = Transmission(sender, frame, now, now + duration_us)
        sender_port.own_tx = tx
        self.active_transmissions.append(tx)
        if self.trace is not None:
            self.trace.bump("phy.tx_started")

        corrupted = None
        tx_plan, rx_plan = self._plan_for(sender)
        tx.rx_plan = rx_plan
        for port, node, sensed, on_busy, kills, dies in tx_plan:
            # A node that is itself transmitting cannot decode anything.
            if port.own_tx is not None:
                if corrupted is None:
                    corrupted = tx.corrupted_at = set()
                corrupted.add(node)
                was_idle = False
            else:
                was_idle = not sensed
            # Physical capture: overlapping frames only corrupt each
            # other at this node when their signal ratio is below the
            # capture threshold. A 1-hop frame therefore survives 2-hop
            # interference (d^-4 gives ~12 dB), which is what lets
            # mutually hidden links fire in parallel successfully —
            # the paper's Table 4 activation patterns. The comparisons
            # are pre-resolved into the kills/dies sets.
            if sensed:
                for other in sensed:
                    other_sender = other.sender
                    if other_sender in kills:
                        other_corrupted = other.corrupted_at
                        if other_corrupted is None:
                            other_corrupted = other.corrupted_at = set()
                        other_corrupted.add(node)
                    if other_sender in dies:
                        if corrupted is None:
                            corrupted = tx.corrupted_at = set()
                        corrupted.add(node)
            sensed.add(tx)
            if was_idle:
                on_busy(now)

        self.engine.post(duration_us, self._finish, tx)
        return tx

    def _finish(self, tx: Transmission) -> None:
        now = self.engine.now
        sender = tx.sender
        sender_port = self._ports[sender]
        sender_port.own_tx = None
        self.active_transmissions.remove(tx)

        rng_random = self.rng.random
        trace = self.trace
        corrupted = tx.corrupted_at
        frame = tx.frame
        dst = getattr(frame, "dst", None)
        for port, node, sensed, on_idle, on_rx, on_over, on_err, receivable, loss, miss in tx.rx_plan:
            sensed.discard(tx)
            decodable = receivable and (corrupted is None or node not in corrupted)
            if decodable and loss and rng_random() < loss:
                decodable = False
            if decodable:
                if dst == node:
                    if trace is not None:
                        trace.bump("phy.rx_ok")
                    on_rx(frame, now)
                elif not miss or rng_random() >= miss:
                    on_over(frame, now)
            elif receivable:
                # Reception-grade signal that arrived corrupted: the PHY
                # saw a frame but could not decode it -> EIFS applies.
                # Sense-only signals merely occupy the medium (no PLCP
                # decode is attempted), matching ns-2's behaviour.
                if trace is not None:
                    trace.bump("phy.rx_error")
                on_err(now)
            if not sensed and port.own_tx is None:
                on_idle(now)

        # The sender's own view: it was busy with its own transmission.
        if not sender_port.sensed and sender_port.own_tx is None:
            sender_port.listener.on_medium_idle(now)
