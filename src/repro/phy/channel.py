"""Shared wireless channel with collisions, erasures and overhearing.

The channel tracks every in-flight transmission. A node inside the
sender's sensing set perceives the medium busy for the frame's duration;
a node inside the reception set decodes the frame at its end unless

* it was itself transmitting during any part of the frame,
* some other overlapping transmission was sensed at that node
  (co-channel interference / hidden-terminal collision), or
* an independent per-link erasure strikes (lossy-link calibration).

Decoded frames addressed to the node are delivered via
``on_frame_received``; decoded frames addressed elsewhere are delivered
via ``on_frame_overheard`` — this is the broadcast-nature side channel
EZ-flow's BOE relies on. Sensed-but-undecodable frame ends are reported
via ``on_frame_error`` so the MAC can apply EIFS.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Set

from repro.phy.connectivity import ConnectivityMap, NodeId
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder


class PhyListener:
    """Callbacks a MAC entity implements to attach to the channel."""

    def on_medium_busy(self, now: int) -> None:
        """Medium transitioned idle -> busy at this node."""

    def on_medium_idle(self, now: int) -> None:
        """Medium transitioned busy -> idle at this node."""

    def on_frame_received(self, frame, now: int) -> None:
        """A decodable frame addressed to this node ended."""

    def on_frame_overheard(self, frame, now: int) -> None:
        """A decodable frame addressed to another node ended."""

    def on_frame_error(self, now: int) -> None:
        """A sensed frame ended undecodable (collision/erasure) here."""


class Transmission:
    """One in-flight frame."""

    __slots__ = ("sender", "frame", "start", "end", "corrupted_at")

    def __init__(self, sender: NodeId, frame, start: int, end: int):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end
        # Nodes where this frame is already known to be undecodable.
        self.corrupted_at: Set[NodeId] = set()

    @property
    def duration(self) -> int:
        return self.end - self.start


#: Default physical capture threshold (linear SIR), ns-2's classic 10 dB:
#: a frame survives a concurrent interferer whose signal is >= 10x weaker.
DEFAULT_CAPTURE_RATIO = 10.0


class Channel:
    """The shared medium; one instance per simulation."""

    def __init__(
        self,
        engine: Engine,
        connectivity: ConnectivityMap,
        rng: RngRegistry,
        trace: Optional[TraceRecorder] = None,
        capture_ratio: float = DEFAULT_CAPTURE_RATIO,
    ):
        self.engine = engine
        self.connectivity = connectivity
        self.rng = rng.stream("phy.erasures")
        self.trace = trace
        if capture_ratio < 1.0:
            raise ValueError("capture_ratio must be >= 1 (linear SIR)")
        self.capture_ratio = capture_ratio
        self._listeners: Dict[NodeId, PhyListener] = {}
        # Transmissions currently sensed at each node (excluding its own).
        self._sensed: Dict[NodeId, Set[Transmission]] = {}
        # The node's own in-flight transmission, if any.
        self._own_tx: Dict[NodeId, Optional[Transmission]] = {}
        # Directional erasure probability per (sender, receiver).
        self._loss: Dict[tuple, float] = {}
        # Probability an otherwise decodable *overheard* frame is missed
        # by the sniffer at a given node (BOE robustness experiments).
        self._overhear_loss: Dict[NodeId, float] = {}
        self.active_transmissions: List[Transmission] = []

    # -- wiring ---------------------------------------------------------

    def attach(self, node_id: NodeId, listener: PhyListener) -> None:
        """Register the MAC entity of ``node_id``."""
        if node_id not in self.connectivity.nodes():
            raise ValueError(f"node {node_id!r} not in connectivity map")
        self._listeners[node_id] = listener
        self._sensed.setdefault(node_id, set())
        self._own_tx.setdefault(node_id, None)

    def set_link_loss(self, sender: NodeId, receiver: NodeId, probability: float) -> None:
        """Set the erasure probability of the directed link sender->receiver."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._loss[(sender, receiver)] = probability

    def set_overhear_loss(self, node_id: NodeId, probability: float) -> None:
        """Set the sniffer miss probability at ``node_id``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._overhear_loss[node_id] = probability

    # -- carrier sense --------------------------------------------------

    def is_idle(self, node_id: NodeId) -> bool:
        """True when ``node_id`` senses no transmission and is not sending."""
        return not self._sensed[node_id] and self._own_tx[node_id] is None

    def is_transmitting(self, node_id: NodeId) -> bool:
        """True while ``node_id`` has a frame of its own in the air."""
        return self._own_tx[node_id] is not None

    # -- transmission ---------------------------------------------------

    def transmit(self, sender: NodeId, frame, duration_us: int) -> Transmission:
        """Start a frame transmission from ``sender`` lasting ``duration_us``.

        The MAC must not call this while the sender already transmits.
        Returns the transmission record; completion is self-scheduled.
        """
        if self._own_tx[sender] is not None:
            raise RuntimeError(f"node {sender!r} is already transmitting")
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        now = self.engine.now
        tx = Transmission(sender, frame, now, now + duration_us)
        self._own_tx[sender] = tx
        self.active_transmissions.append(tx)
        if self.trace is not None:
            self.trace.bump("phy.tx_started")

        # Sorted iteration keeps event order independent of set-hash
        # randomization (node ids may be strings), so identical seeds
        # reproduce identical runs across processes.
        for node in sorted(self.connectivity.sensors_of(sender), key=repr):
            if node not in self._listeners:
                continue
            sensed = self._sensed[node]
            # A node that is itself transmitting cannot decode anything.
            if self._own_tx[node] is not None:
                tx.corrupted_at.add(node)
            # Physical capture: overlapping frames only corrupt each
            # other at this node when their signal ratio is below the
            # capture threshold. A 1-hop frame therefore survives 2-hop
            # interference (d^-4 gives ~12 dB), which is what lets
            # mutually hidden links fire in parallel successfully —
            # the paper's Table 4 activation patterns.
            p_new = self.connectivity.rx_power(node, sender)
            for other in sensed:
                p_old = self.connectivity.rx_power(node, other.sender)
                if p_old < self.capture_ratio * p_new:
                    other.corrupted_at.add(node)
                if p_new < self.capture_ratio * p_old:
                    tx.corrupted_at.add(node)
            was_idle = not sensed and self._own_tx[node] is None
            sensed.add(tx)
            if was_idle:
                self._listeners[node].on_medium_busy(now)

        self.engine.schedule(duration_us, self._finish, tx)
        return tx

    def _finish(self, tx: Transmission) -> None:
        now = self.engine.now
        sender = tx.sender
        self._own_tx[sender] = None
        self.active_transmissions.remove(tx)

        for node in sorted(self.connectivity.sensors_of(sender), key=repr):
            if node not in self._listeners:
                continue
            sensed = self._sensed[node]
            sensed.discard(tx)
            listener = self._listeners[node]
            receivable = self.connectivity.can_receive(node, sender)
            decodable = receivable and node not in tx.corrupted_at
            if decodable:
                loss = self._loss.get((sender, node), 0.0)
                if loss and self.rng.random() < loss:
                    decodable = False
            if decodable:
                dst = getattr(tx.frame, "dst", None)
                if dst == node:
                    if self.trace is not None:
                        self.trace.bump("phy.rx_ok")
                    listener.on_frame_received(tx.frame, now)
                else:
                    miss = self._overhear_loss.get(node, 0.0)
                    if not miss or self.rng.random() >= miss:
                        listener.on_frame_overheard(tx.frame, now)
            elif receivable:
                # Reception-grade signal that arrived corrupted: the PHY
                # saw a frame but could not decode it -> EIFS applies.
                # Sense-only signals merely occupy the medium (no PLCP
                # decode is attempted), matching ns-2's behaviour.
                if self.trace is not None:
                    self.trace.bump("phy.rx_error")
                listener.on_frame_error(now)
            if not sensed and self._own_tx[node] is None:
                listener.on_medium_idle(now)

        # The sender's own view: it was busy with its own transmission.
        if sender in self._listeners and self.is_idle(sender):
            self._listeners[sender].on_medium_idle(now)
