"""Connectivity maps: who can decode whom, who senses whom.

Two implementations are provided. ``GeometricConnectivity`` derives both
relations from node positions and a :class:`~repro.phy.propagation.RangeModel`
(the ns-2 style configuration). ``ExplicitConnectivity`` takes the two
directed edge sets verbatim, which is how the 9-node testbed map (Figure 3)
is encoded, including its asymmetric sensing relations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Set, Tuple

from repro.phy.propagation import Position, RangeModel, distance

NodeId = Hashable


#: Relative power assigned to sense-only edges by ExplicitConnectivity:
#: strong enough to be carrier-sensed, ~13 dB below a reception-grade
#: signal, hence captured through by any decodable frame.
SENSE_ONLY_POWER = 0.05


class ConnectivityMap:
    """Interface: reception and carrier-sense relations between nodes.

    Maps may be *dynamic*: :attr:`epoch` counts mutations (node churn,
    mobility steps). Consumers that cache derived structures — the
    channel's per-sender delivery plans above all — tag their caches
    with the epoch they were built under and rebuild lazily when the
    map's epoch has moved on. Static maps simply never bump it.
    """

    #: Mutation counter. 0 forever for immutable maps; implementations
    #: with a mutation API (see :class:`GeometricConnectivity`) bump it
    #: on every topology change.
    epoch: int = 0

    def nodes(self) -> FrozenSet[NodeId]:
        """All node ids this map covers."""
        raise NotImplementedError

    def rx_power(self, receiver: NodeId, sender: NodeId) -> float:
        """Relative received signal power (linear scale, 0.0 = inaudible).

        Only ratios matter: the channel compares the wanted signal
        against concurrent interferers to decide physical capture.
        """
        raise NotImplementedError

    def can_receive(self, receiver: NodeId, sender: NodeId) -> bool:
        """True when ``receiver`` decodes ``sender``'s frames (no collision)."""
        raise NotImplementedError

    def can_sense(self, node: NodeId, sender: NodeId) -> bool:
        """True when ``sender`` transmitting makes the medium busy at ``node``."""
        raise NotImplementedError

    def receivers_of(self, sender: NodeId) -> FrozenSet[NodeId]:
        """Nodes that decode ``sender``'s frames (collision-free case)."""
        raise NotImplementedError

    def sensors_of(self, sender: NodeId) -> FrozenSet[NodeId]:
        """Nodes whose medium goes busy when ``sender`` transmits."""
        raise NotImplementedError

    # -- inverse relations ------------------------------------------------
    #
    # The channel's per-sender delivery-plan build needs "which senders
    # does this node hear?" — the inverse of sensors_of/receivers_of.
    # The generic implementations scan all nodes (exactly the relation's
    # definition); concrete maps override them with indexed lookups so a
    # plan build is O(degree^2) instead of O(degree * N).

    def senders_sensed_at(self, node: NodeId) -> FrozenSet[NodeId]:
        """Senders whose transmissions make the medium busy at ``node``."""
        return frozenset(
            s for s in self.nodes() if s != node and self.can_sense(node, s)
        )

    def senders_received_at(self, node: NodeId) -> FrozenSet[NodeId]:
        """Senders whose frames ``node`` decodes (collision-free case)."""
        return frozenset(
            s for s in self.nodes() if s != node and self.can_receive(node, s)
        )


class GeometricConnectivity(ConnectivityMap):
    """Connectivity from positions and deterministic radii.

    This is the *mutable* map: :meth:`move_node` (waypoint mobility
    steps) and :meth:`set_node_active` (churn: radio off/on) update the
    edge sets incrementally and bump :attr:`epoch`, so channel delivery
    plans built under the previous topology invalidate lazily. A down
    node keeps its id and position but has no edges in either direction
    and zero received power — frames it sends reach nobody, frames sent
    to it die, and it occupies no one's medium.
    """

    def __init__(self, positions: Mapping[NodeId, Position], ranges: RangeModel):
        self.positions: Dict[NodeId, Position] = dict(positions)
        self.ranges = ranges
        self.epoch = 0
        self._down: Set[NodeId] = set()
        self._rx: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._sense: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._build()

    def _build(self) -> None:
        # Distance is symmetric (identical IEEE arithmetic both ways),
        # so each unordered pair is evaluated once and recorded in both
        # directions — same sets as the full N^2 scan at half the cost.
        positions = self.positions
        ids = list(positions)
        can_receive = self.ranges.can_receive
        can_sense = self.ranges.can_sense
        rx: Dict[NodeId, Set[NodeId]] = {a: set() for a in ids}
        sense: Dict[NodeId, Set[NodeId]] = {a: set() for a in ids}
        for i, a in enumerate(ids):
            pos_a = positions[a]
            rx_a = rx[a]
            sense_a = sense[a]
            for b in ids[i + 1 :]:
                d = distance(pos_a, positions[b])
                if can_sense(d):
                    sense_a.add(b)
                    sense[b].add(a)
                    if can_receive(d):
                        rx_a.add(b)
                        rx[b].add(a)
        for a in ids:
            self._rx[a] = frozenset(rx[a])
            self._sense[a] = frozenset(sense[a])

    # -- mutation API (churn / mobility) --------------------------------

    def is_active(self, node: NodeId) -> bool:
        """False while ``node`` is churned down (radio off)."""
        return node not in self._down

    def _detach_edges(self, node: NodeId) -> None:
        """Remove ``node`` from every edge set (both directions)."""
        for other in self._sense.get(node, ()):
            self._sense[other] = self._sense[other] - {node}
        for other in self._rx.get(node, ()):
            self._rx[other] = self._rx[other] - {node}
        self._rx[node] = frozenset()
        self._sense[node] = frozenset()

    def _attach_edges(self, node: NodeId) -> None:
        """Recompute ``node``'s edges against every active other node."""
        position = self.positions[node]
        can_sense = self.ranges.can_sense
        can_receive = self.ranges.can_receive
        down = self._down
        rx_n: Set[NodeId] = set()
        sense_n: Set[NodeId] = set()
        for other, other_position in self.positions.items():
            if other == node or other in down:
                continue
            d = distance(position, other_position)
            if can_sense(d):
                sense_n.add(other)
                self._sense[other] = self._sense[other] | {node}
                if can_receive(d):
                    rx_n.add(other)
                    self._rx[other] = self._rx[other] | {node}
        self._rx[node] = frozenset(rx_n)
        self._sense[node] = frozenset(sense_n)

    def move_node(self, node: NodeId, position: Position) -> None:
        """Waypoint mobility step: teleport ``node`` to ``position``.

        Edges of ``node`` are recomputed against every active node
        (O(N)); everyone else's pairwise relations are untouched. Bumps
        :attr:`epoch` even while the node is down — its position matters
        again the moment it comes back up.
        """
        if node not in self.positions:
            raise ValueError(f"node {node!r} not in connectivity map")
        self.positions[node] = (float(position[0]), float(position[1]))
        if node not in self._down:
            self._detach_edges(node)
            self._attach_edges(node)
        self.epoch += 1

    def set_node_active(self, node: NodeId, active: bool) -> None:
        """Churn: take ``node`` down (radio off) or bring it back up.

        Idempotent — repeating the current state does not bump the
        epoch. A node coming back up recomputes its edges at its
        current (possibly moved-while-down) position.
        """
        if node not in self.positions:
            raise ValueError(f"node {node!r} not in connectivity map")
        if active and node in self._down:
            self._down.discard(node)
            self._attach_edges(node)
            self.epoch += 1
        elif not active and node not in self._down:
            self._down.add(node)
            self._detach_edges(node)
            self.epoch += 1

    # -- queries --------------------------------------------------------

    def nodes(self) -> FrozenSet[NodeId]:
        return frozenset(self.positions)

    def rx_power(self, receiver: NodeId, sender: NodeId) -> float:
        """Two-ray far-field power: d^-4 (relative), 0 beyond sensing."""
        if receiver == sender:
            return 0.0
        if self._down and (receiver in self._down or sender in self._down):
            return 0.0
        d = distance(self.positions[receiver], self.positions[sender])
        if d <= 0 or not self.ranges.can_sense(d):
            return 0.0
        return (1.0 / d) ** 4

    def can_receive(self, receiver: NodeId, sender: NodeId) -> bool:
        return receiver in self._rx.get(sender, frozenset())

    def can_sense(self, node: NodeId, sender: NodeId) -> bool:
        return node in self._sense.get(sender, frozenset())

    def receivers_of(self, sender: NodeId) -> FrozenSet[NodeId]:
        return self._rx.get(sender, frozenset())

    def sensors_of(self, sender: NodeId) -> FrozenSet[NodeId]:
        return self._sense.get(sender, frozenset())

    # Geometric relations are symmetric (one distance, two directions),
    # so the inverse relations are the forward tables themselves.

    def senders_sensed_at(self, node: NodeId) -> FrozenSet[NodeId]:
        return self._sense.get(node, frozenset())

    def senders_received_at(self, node: NodeId) -> FrozenSet[NodeId]:
        return self._rx.get(node, frozenset())


class ExplicitConnectivity(ConnectivityMap):
    """Connectivity from explicit directed edge lists.

    ``rx_edges`` are (sender, receiver) pairs along which frames decode;
    every rx edge is implicitly also a sense edge. ``sense_edges`` add
    carrier-sense/interference-only pairs (sensed but not decodable).
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        rx_edges: Iterable[Tuple[NodeId, NodeId]],
        sense_edges: Iterable[Tuple[NodeId, NodeId]] = (),
        symmetric: bool = True,
    ):
        self._nodes = frozenset(nodes)
        rx: Dict[NodeId, Set[NodeId]] = {n: set() for n in self._nodes}
        sense: Dict[NodeId, Set[NodeId]] = {n: set() for n in self._nodes}

        def add(table: Dict[NodeId, Set[NodeId]], a: NodeId, b: NodeId) -> None:
            if a not in self._nodes or b not in self._nodes:
                raise ValueError(f"edge ({a!r}, {b!r}) references unknown node")
            if a == b:
                raise ValueError("self-edges are not allowed")
            table[a].add(b)
            if symmetric:
                table[b].add(a)

        for a, b in rx_edges:
            add(rx, a, b)
            add(sense, a, b)
        for a, b in sense_edges:
            add(sense, a, b)
        self._rx = {n: frozenset(v) for n, v in rx.items()}
        self._sense = {n: frozenset(v) for n, v in sense.items()}
        # Inverse indexes (may differ from the forward tables when the
        # map is asymmetric); built lazily on first use.
        self._rx_at: Optional[Dict[NodeId, FrozenSet[NodeId]]] = None
        self._sense_at: Optional[Dict[NodeId, FrozenSet[NodeId]]] = None

    @staticmethod
    def _invert(
        table: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, FrozenSet[NodeId]]:
        inverse: Dict[NodeId, Set[NodeId]] = {n: set() for n in table}
        for sender, targets in table.items():
            for target in targets:
                inverse[target].add(sender)
        return {n: frozenset(v) for n, v in inverse.items()}

    def nodes(self) -> FrozenSet[NodeId]:
        return self._nodes

    def rx_power(self, receiver: NodeId, sender: NodeId) -> float:
        """Reception-grade edges at 0 dB, sense-only edges ~13 dB down."""
        if receiver in self._rx[sender]:
            return 1.0
        if receiver in self._sense[sender]:
            return SENSE_ONLY_POWER
        return 0.0

    def can_receive(self, receiver: NodeId, sender: NodeId) -> bool:
        return receiver in self._rx[sender]

    def can_sense(self, node: NodeId, sender: NodeId) -> bool:
        return node in self._sense[sender]

    def receivers_of(self, sender: NodeId) -> FrozenSet[NodeId]:
        return self._rx[sender]

    def sensors_of(self, sender: NodeId) -> FrozenSet[NodeId]:
        return self._sense[sender]

    def senders_sensed_at(self, node: NodeId) -> FrozenSet[NodeId]:
        if self._sense_at is None:
            self._sense_at = self._invert(self._sense)
        return self._sense_at[node]

    def senders_received_at(self, node: NodeId) -> FrozenSet[NodeId]:
        if self._rx_at is None:
            self._rx_at = self._invert(self._rx)
        return self._rx_at[node]
