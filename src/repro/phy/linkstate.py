"""Seeded per-link loss processes: iid erasures and Gilbert-Elliott bursts.

The channel's static ``set_link_loss`` draws one erasure per decodable
frame from a *shared* stream — fine for calibration, but memoryless and
coupled across links. This module provides *stateful* per-link models,
each drawing from its own named RNG stream, so the loss sequence of a
link is a pure function of ``(master seed, sender, receiver)``:
independent of every other link, of traffic on other links, and of the
channel's shared erasure stream (installing models never perturbs
lossless-path draw order).

Two model kinds:

* ``iid`` — independent Bernoulli erasures at probability ``p`` per
  decodable frame (the classic memoryless lossy link);
* ``ge`` — the two-state Gilbert-Elliott burst-loss chain: a Good and a
  Bad state with per-frame transition probabilities ``p_gb`` (G->B) and
  ``p_bg`` (B->G), and per-state erasure probabilities ``loss_good``
  (default 0) / ``loss_bad`` (default 1 — the classic Gilbert model).
  Mean burst length is ``1/p_bg`` frames; long-run loss is
  ``loss_bad * p_gb / (p_gb + p_bg)`` (plus the good-state term).

A model is consulted once per otherwise-decodable frame end at the
receiver — exactly where the channel consults its static probability —
so loss composes with (and is masked by) collisions and capture, the
same semantics the Nessi per-link error processes use.

CLI specs (the meshgen ``loss`` axis) are colon-separated so they
survive the sweep CLI's comma-splitting of grid values::

    iid:0.05                  5 % iid frame erasures on every link
    ge:0.02:0.25              bursty: enter Bad 2 %/frame, leave 25 %/frame
    ge:0.02:0.25:0.5          ... losing only half the Bad-state frames
    ge:0.02:0.25:0.5:0.01     ... plus 1 % residual Good-state loss
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

NodeId = Hashable

LOSS_KINDS = ("iid", "ge")

#: Stream-name prefix for per-link model streams (one per directed link).
STREAM_PREFIX = "phy.linkstate"


class LossSpecError(ValueError):
    """A loss-model spec string could not be parsed."""


def link_stream_name(sender: NodeId, receiver: NodeId) -> str:
    """The canonical RNG stream name of the directed link sender->receiver."""
    return f"{STREAM_PREFIX}.{sender!r}->{receiver!r}"


class LinkLossModel:
    """Interface: one stateful loss process bound to one directed link."""

    __slots__ = ()

    def erased(self) -> bool:
        """Advance the process one frame; True when this frame is lost."""
        raise NotImplementedError


class BernoulliLoss(LinkLossModel):
    """Independent per-frame erasures at a fixed probability."""

    __slots__ = ("_random", "p")

    def __init__(self, rng, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        self._random = rng.random
        self.p = float(p)

    def erased(self) -> bool:
        return self._random() < self.p


class GilbertElliottLoss(LinkLossModel):
    """Two-state Markov burst loss (Gilbert-Elliott).

    Starts in the Good state. Per ``erased()`` call: draw the erasure
    under the current state, then draw the state transition — two draws
    per frame always, so the consumed stream position is a pure function
    of the frame count (never of the loss outcomes).
    """

    __slots__ = ("_random", "p_gb", "p_bg", "loss_good", "loss_bad", "bad")

    def __init__(
        self,
        rng,
        p_gb: float,
        p_bg: float,
        loss_bad: float = 1.0,
        loss_good: float = 0.0,
    ):
        for name, value in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_bad", loss_bad),
            ("loss_good", loss_good),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        self._random = rng.random
        self.p_gb = float(p_gb)
        self.p_bg = float(p_bg)
        self.loss_bad = float(loss_bad)
        self.loss_good = float(loss_good)
        self.bad = False

    def erased(self) -> bool:
        random = self._random
        lost = random() < (self.loss_bad if self.bad else self.loss_good)
        if self.bad:
            if random() < self.p_bg:
                self.bad = False
        elif random() < self.p_gb:
            self.bad = True
        return lost


@dataclass(frozen=True)
class LossSpec:
    """A parsed loss-model recipe, instantiable per link."""

    kind: str  # "iid" | "ge"
    p: float = 0.0  # iid: erasure probability; ge: p_gb
    p_bg: float = 0.0
    loss_bad: float = 1.0
    loss_good: float = 0.0

    def build(self, rng) -> LinkLossModel:
        """Instantiate the model on ``rng`` (one dedicated link stream)."""
        if self.kind == "iid":
            return BernoulliLoss(rng, self.p)
        return GilbertElliottLoss(
            rng, self.p, self.p_bg, loss_bad=self.loss_bad, loss_good=self.loss_good
        )


def parse_loss_spec(text: str) -> LossSpec:
    """Parse a CLI loss spec (see the module docstring for the grammar)."""
    parts = [p.strip() for p in str(text).strip().split(":")]
    kind = parts[0]
    if kind not in LOSS_KINDS:
        raise LossSpecError(
            f"unknown loss model {kind!r}; known: {', '.join(LOSS_KINDS)}"
        )
    if any(p == "" for p in parts[1:]):
        raise LossSpecError(f"loss spec {text!r}: empty field")
    try:
        values = [float(p) for p in parts[1:]]
    except ValueError as error:
        raise LossSpecError(f"loss spec {text!r}: non-numeric parameter") from error
    if any(not 0.0 <= v <= 1.0 for v in values):
        raise LossSpecError(f"loss spec {text!r}: probabilities must be in [0, 1]")
    if kind == "iid":
        if len(values) != 1:
            raise LossSpecError(f"loss spec {text!r}: iid takes exactly one probability")
        return LossSpec(kind="iid", p=values[0])
    if not 2 <= len(values) <= 4:
        raise LossSpecError(
            f"loss spec {text!r}: ge takes p_gb:p_bg[:loss_bad[:loss_good]]"
        )
    return LossSpec(
        kind="ge",
        p=values[0],
        p_bg=values[1],
        loss_bad=values[2] if len(values) > 2 else 1.0,
        loss_good=values[3] if len(values) > 3 else 0.0,
    )


def apply_loss_models(network, spec: "LossSpec | str") -> int:
    """Install one model instance per directed reception edge.

    Links are enumerated in repr-sorted (sender, receiver) order and
    each model gets its own :func:`link_stream_name` stream from the
    network's registry, so the whole configuration — and every link's
    loss sequence — is a pure function of the master seed. Returns the
    number of links *newly* configured. Sense-only edges carry no
    model: loss is only ever consulted where a frame is decodable.

    Incremental: links that already carry a model keep it (preserving
    the model's state and stream position), so churn re-applies this
    after every topology mutation — a mobility step or an up event that
    creates reception edges gets them lossy immediately, while a link
    that disappears and reappears resumes its original loss process.
    """
    if isinstance(spec, str):
        spec = parse_loss_spec(spec)
    connectivity = network.connectivity
    channel = network.channel
    rng = network.rng
    configured = 0
    for sender in sorted(connectivity.nodes(), key=repr):
        for receiver in sorted(connectivity.receivers_of(sender), key=repr):
            if channel.link_model(sender, receiver) is not None:
                continue
            model = spec.build(rng.stream(link_stream_name(sender, receiver)))
            channel.set_link_model(sender, receiver, model)
            configured += 1
    return configured
