"""Propagation models.

The simulator uses a *protocol model*: deterministic transmit and sensing
radii. This is exactly what ns-2's default configuration produces — a
two-ray ground path loss with fixed transmit power and fixed reception /
carrier-sense energy thresholds reduces to two deterministic radii
(250 m transmit, 550 m sensing in the paper's setup). ``TwoRayGround``
exposes the underlying physics for completeness and for deriving radii
from power/threshold settings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


@dataclass(frozen=True)
class TwoRayGround:
    """Two-ray ground reflection path loss.

    For distances beyond the crossover, received power follows
    ``Pr = Pt * Gt * Gr * ht^2 * hr^2 / d^4``; below the crossover the
    Friis free-space model applies. Defaults match ns-2's 914 MHz
    WaveLAN-style parameters.
    """

    tx_power_w: float = 0.2818
    gain_tx: float = 1.0
    gain_rx: float = 1.0
    height_tx_m: float = 1.5
    height_rx_m: float = 1.5
    wavelength_m: float = 0.328227

    def crossover_distance(self) -> float:
        """Distance where two-ray ground takes over from Friis."""
        return (
            4.0
            * math.pi
            * self.height_tx_m
            * self.height_rx_m
            / self.wavelength_m
        )

    def received_power(self, d: float) -> float:
        """Received power in watts at distance ``d`` metres."""
        if d <= 0:
            return self.tx_power_w
        if d < self.crossover_distance():
            return (
                self.tx_power_w
                * self.gain_tx
                * self.gain_rx
                * self.wavelength_m**2
                / ((4.0 * math.pi * d) ** 2)
            )
        return (
            self.tx_power_w
            * self.gain_tx
            * self.gain_rx
            * self.height_tx_m**2
            * self.height_rx_m**2
            / d**4
        )

    def range_for_threshold(self, threshold_w: float) -> float:
        """Largest distance at which received power >= ``threshold_w``."""
        if threshold_w <= 0:
            raise ValueError("threshold must be positive")
        d4 = (
            self.tx_power_w
            * self.gain_tx
            * self.gain_rx
            * self.height_tx_m**2
            * self.height_rx_m**2
            / threshold_w
        )
        d = d4**0.25
        if d < self.crossover_distance():
            d = self.wavelength_m * math.sqrt(
                self.tx_power_w * self.gain_tx * self.gain_rx / threshold_w
            ) / (4.0 * math.pi)
        return d


@dataclass(frozen=True)
class RangeModel:
    """Deterministic transmit / carrier-sense radii (ns-2 protocol model).

    ``tx_range_m``: frames decode inside this radius (absent collisions).
    ``sense_range_m``: transmitters inside this radius are carrier-sensed
    and corrupt concurrent receptions (interference radius).
    """

    tx_range_m: float = 250.0
    sense_range_m: float = 550.0

    def __post_init__(self):
        if self.tx_range_m <= 0 or self.sense_range_m <= 0:
            raise ValueError("ranges must be positive")
        if self.sense_range_m < self.tx_range_m:
            raise ValueError("sensing range must be >= transmit range")

    def can_receive(self, d: float) -> bool:
        """True when a frame decodes at distance ``d`` (no collision)."""
        return d <= self.tx_range_m

    def can_sense(self, d: float) -> bool:
        """True when a transmitter at distance ``d`` is carrier-sensed."""
        return d <= self.sense_range_m

    @classmethod
    def from_two_ray(
        cls,
        model: TwoRayGround,
        rx_threshold_w: float,
        cs_threshold_w: float,
    ) -> "RangeModel":
        """Derive radii from a physical model and energy thresholds."""
        return cls(
            tx_range_m=model.range_for_threshold(rx_threshold_w),
            sense_range_m=model.range_for_threshold(cs_threshold_w),
        )
