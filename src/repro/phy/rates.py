"""PHY rates and frame air-time computation for IEEE 802.11b DSSS.

The testbed and the ns-2 simulations both run at the fixed 1 Mb/s DSSS
rate with long preambles; air time of a frame is the PLCP preamble +
header time plus payload bits at the data rate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhyRates:
    """Timing parameters of one 802.11 PHY mode."""

    name: str
    data_rate_bps: int
    basic_rate_bps: int
    slot_time_us: int
    sifs_us: int
    plcp_preamble_us: int
    plcp_header_us: int
    cca_time_us: int = 15

    def __post_init__(self):
        # Air times are pure functions of the (frozen) fields and sit on
        # the per-frame hot path; memoise them once per instance.
        object.__setattr__(self, "_frame_us_cache", {})
        ack = self.frame_tx_time_us(14, self.basic_rate_bps)
        difs = self.sifs_us + 2 * self.slot_time_us
        object.__setattr__(self, "_ack_us", ack)
        object.__setattr__(self, "_difs_us", difs)
        object.__setattr__(self, "_eifs_us", self.sifs_us + ack + difs)

    @property
    def difs_us(self) -> int:
        """DIFS = SIFS + 2 * slot."""
        return self._difs_us

    @property
    def eifs_us(self) -> int:
        """EIFS used after an undecodable frame: SIFS + ACK-at-basic + DIFS."""
        return self._eifs_us

    def plcp_overhead_us(self) -> int:
        """PLCP preamble + header air time prepended to every frame."""
        return self.plcp_preamble_us + self.plcp_header_us

    def frame_tx_time_us(self, payload_bytes: int, rate_bps: int = 0) -> int:
        """Air time of a frame with ``payload_bytes`` of MAC payload.

        ``rate_bps`` defaults to the data rate. The result is PLCP
        overhead plus payload bits at the rate, rounded up to a whole
        microsecond.
        """
        key = (payload_bytes, rate_bps)
        cached = self._frame_us_cache.get(key)
        if cached is None:
            rate = rate_bps or self.data_rate_bps
            bits = payload_bytes * 8
            cached = self.plcp_overhead_us() + -(-bits * 1_000_000 // rate)
            self._frame_us_cache[key] = cached
        return cached

    def ack_tx_time_us(self) -> int:
        """Air time of a 14-byte ACK frame at the basic rate."""
        return self._ack_us


#: 802.11b DSSS at 1 Mb/s with long preamble (the paper's configuration).
DSSS_1MBPS = PhyRates(
    name="802.11b-1Mbps",
    data_rate_bps=1_000_000,
    basic_rate_bps=1_000_000,
    slot_time_us=20,
    sifs_us=10,
    plcp_preamble_us=144,
    plcp_header_us=48,
)

#: 802.11b DSSS at 11 Mb/s (for rate-sweep ablations).
DSSS_11MBPS = PhyRates(
    name="802.11b-11Mbps",
    data_rate_bps=11_000_000,
    basic_rate_bps=1_000_000,
    slot_time_us=20,
    sifs_us=10,
    plcp_preamble_us=144,
    plcp_header_us=48,
)
