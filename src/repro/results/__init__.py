"""The first-class results API: the repo's stable programmatic surface.

Everything analysis code, notebooks and external tooling should touch
lives here (see EXPERIMENTS.md, "Programmatic API"):

* :class:`RunResult` — one run, typed: parameters, scalar metrics,
  named series, tables. Constructible in memory from a sweep record or
  by loading an exported run directory; both forms save byte-identical
  artefacts.
* :class:`ResultSet` — an ordered collection with pandas-free
  relational verbs (``filter``, ``split_by``, ``align_on``,
  ``scalars_frame``) plus ``load``/``save`` over ``--out`` export
  trees.
* :class:`Study` — the fluent sweep builder and recommended entry
  point: ``Study("meshgen").grid(nodes=[16, 25],
  algorithm=["none", "ezflow"]).seeds(3).run(jobs=2)`` → ``ResultSet``.
* :func:`compare` / :func:`render_compare` — cross-run algorithm-delta
  tables on aligned layouts (the ``compare`` CLI subcommand renders
  exactly these).
* :class:`ResultStore` and its backends (:class:`DirectoryStore`,
  :class:`SqliteStore`) plus :func:`open_store` — pluggable places for
  results to live, keyed by content ``(spec id, canonical params,
  seed)``: sweeps checkpoint into a store as runs finish, resume after
  a kill, and dedupe identical requests into cache hits
  (``Study(...).run(store=...)``, the CLI's ``--store``/``--resume``).
* :class:`ErrorPolicy` / :class:`RunFailure` / :class:`FaultPlan` —
  fault-tolerant sweep execution: per-run failure isolation with
  retries and timeouts (``Study(...).run(on_error="continue")``, the
  CLI's ``--on-error``/``--run-timeout``), typed failure records that
  checkpoint into stores and surface on ``ResultSet.failures``, and the
  deterministic chaos harness that tests all of it.
* :func:`validate_fidelity` / :class:`Tolerance` — engine-tier
  agreement reports pairing ``fidelity=event`` runs with their
  ``fidelity=slotted`` twins (the ``validate-fidelity`` CLI subcommand
  and the CI ``fidelity-smoke`` job render exactly these).

The CLI (``python -m repro.experiments``) and the benchmark suite are
built on this layer.
"""

from repro.experiments.faults import FaultPlan
from repro.experiments.runner import RUN_FAILURE_SCHEMA, ErrorPolicy, RunFailure
from repro.results.compare import (
    COMPARE_TABLE_SCHEMA,
    ComparisonError,
    IncompleteSweepWarning,
    compare,
    compare_json_dict,
    default_metrics,
    render_compare,
)
from repro.results.validation import (
    DEFAULT_TOLERANCES,
    Tolerance,
    ValidationError,
    ValidationReport,
    validate_fidelity,
    validation_study,
)
from repro.results.metrics import (
    DEFAULT_ALIGN_KEYS,
    DEFAULT_BASELINE,
    DEFAULT_COMPARE_METRICS,
    MESHGEN_SUMMARY_COLUMNS,
)
from repro.results.store import (
    DirectoryStore,
    ResultStore,
    SqliteStore,
    content_key,
    open_store,
)
from repro.results.study import Study, execute_requests
from repro.results.types import (
    RUN_RESULT_SCHEMA,
    ResultLoadError,
    ResultSet,
    RunResult,
    canonical_result_dict,
)

__all__ = [
    "COMPARE_TABLE_SCHEMA",
    "ComparisonError",
    "DirectoryStore",
    "ErrorPolicy",
    "FaultPlan",
    "IncompleteSweepWarning",
    "RUN_FAILURE_SCHEMA",
    "RUN_RESULT_SCHEMA",
    "ResultLoadError",
    "ResultStore",
    "RunFailure",
    "SqliteStore",
    "content_key",
    "open_store",
    "DEFAULT_ALIGN_KEYS",
    "DEFAULT_BASELINE",
    "DEFAULT_COMPARE_METRICS",
    "DEFAULT_TOLERANCES",
    "MESHGEN_SUMMARY_COLUMNS",
    "ResultSet",
    "RunResult",
    "Study",
    "Tolerance",
    "ValidationError",
    "ValidationReport",
    "canonical_result_dict",
    "compare",
    "compare_json_dict",
    "default_metrics",
    "execute_requests",
    "render_compare",
    "validate_fidelity",
    "validation_study",
]
