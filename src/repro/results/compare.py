"""Cross-run comparison tables: algorithm deltas on aligned layouts.

The paper's headline claims are comparative — EZ-flow vs. no control
vs. DiffQ vs. static penalty *on the same topology*. :func:`compare`
turns a :class:`~repro.results.ResultSet` into exactly that table: runs
are grouped so that every group shares one generated layout, a baseline
run is picked per group (``algorithm=none`` by convention), and each
metric row reports the baseline value plus every other variant's value
and its percentage delta.

The table is a pure function of the result set, so it is byte-identical
whether the runs came from a live parallel sweep or from loading the
sweep's ``--out`` export (the CI ``compare-smoke`` job pins this).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.common import Table
from repro.results.metrics import DEFAULT_BASELINE, DEFAULT_COMPARE_METRICS
from repro.results.types import ResultSet, RunResult, _param_matches


#: Schema tag of the compare-table wire form (:func:`compare_json_dict`).
COMPARE_TABLE_SCHEMA = "repro.results/compare/1"


class ComparisonError(ValueError):
    """The result set cannot be arranged into a comparison table."""


class IncompleteSweepWarning(UserWarning):
    """The compared result set is missing runs that failed in its sweep.

    Emitted by :func:`compare` when the set carries
    :class:`~repro.experiments.runner.RunFailure` records: the table is
    still built over the surviving runs, but groups that lost their
    baseline or a variant silently drop out, so deltas may not mean
    what a complete sweep's would.
    """


def _variant_of(run: RunResult, vary: Sequence[str]) -> Tuple[str, ...]:
    # effective_param so axes elided from exports at their default
    # (e.g. fidelity=event) still classify: a fidelity sweep's event
    # runs carry the axis only in their request kwargs.
    return tuple(str(run.effective_param(name)) for name in vary)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def default_metrics(results: ResultSet) -> List[str]:
    """Metric names to compare when the caller picks none.

    The canonical goodput/fairness/delivery triple when the set exposes
    it (any meshgen sweep does); otherwise every numeric scalar the
    runs share, sorted.
    """
    available = set()
    for run in results:
        available.update(run.numeric_scalars())
    preferred = [name for name in DEFAULT_COMPARE_METRICS if name in available]
    if preferred:
        return preferred
    shared = set.intersection(
        *(set(run.numeric_scalars()) for run in results)
    ) if len(results) else set()
    return sorted(shared)


def compare(
    results: ResultSet,
    baseline: Optional[Mapping[str, object]] = None,
    metrics: Optional[Sequence[str]] = None,
    align: Optional[Sequence[str]] = None,
) -> Table:
    """Build the cross-run delta table for a result set.

    ``baseline`` filters the reference run of each aligned group
    (default ``{"algorithm": "none"}``); its keys are the *varied*
    dimension — every other observed value of those keys becomes a
    variant column pair (value, Δ% vs. baseline). ``align`` names the
    parameters that identify a group; by default every parameter that
    varies across the set and is not a baseline key aligns, which
    subsumes the layout identity (topology, nodes, seed) and keeps
    extra swept axes (workload, rate, ...) from colliding. A group
    holding two runs of the same variant — baseline included — is
    ambiguous and raises :class:`ComparisonError`; add the
    distinguishing axis to ``align``. Groups without a baseline run
    are skipped.
    """
    failures = getattr(results, "failures", ())
    if failures:
        warnings.warn(
            f"comparing an incomplete sweep: {len(failures)} run(s) failed "
            f"({', '.join(sorted(f.run_id for f in failures))}); deltas "
            f"cover the surviving runs only",
            IncompleteSweepWarning,
            stacklevel=2,
        )
    if not len(results):
        raise ComparisonError("empty result set")
    baseline = dict(DEFAULT_BASELINE if baseline is None else baseline)
    if not baseline:
        raise ComparisonError("baseline filter must name at least one parameter")
    vary = sorted(baseline)
    if align is None:
        align = results.varying_keys(exclude=vary)
    align = list(align)
    metrics = list(metrics) if metrics is not None else default_metrics(results)
    if not metrics:
        raise ComparisonError("no comparable numeric scalar metrics in the set")

    base_variant = tuple(str(baseline[name]) for name in vary)
    variants = sorted(
        {_variant_of(run, vary) for run in results} - {base_variant}
    )
    if not variants:
        raise ComparisonError(
            f"every run matches the baseline {baseline!r}; nothing to compare"
        )
    baseline_label = ",".join(f"{name}={baseline[name]}" for name in vary)
    columns = list(align) + ["metric", baseline_label]
    for variant in variants:
        label = "+".join(variant)
        columns += [label, f"{label} Δ%"]
    table = Table(f"Deltas vs {baseline_label}", columns)

    # No align keys (nothing else varies) -> one group holding every
    # run; align_on() without args would instead fall back to the
    # layout-identity defaults, which is not what an explicit empty
    # alignment means.
    groups = results.align_on(*align) if align else [((), results)]
    matched_baseline = False
    for key, group in groups:
        base_runs = [
            run
            for run in group
            if all(
                _param_matches(run.effective_param(name), value)
                for name, value in baseline.items()
            )
        ]
        if not base_runs:
            continue
        if len(base_runs) > 1:
            raise ComparisonError(
                f"aligned group {dict(zip(align, key))} holds "
                f"{len(base_runs)} baseline runs; add the distinguishing "
                f"parameter to align"
            )
        matched_baseline = True
        base = base_runs[0]
        by_variant: Dict[Tuple[str, ...], RunResult] = {}
        for run in group:
            variant = _variant_of(run, vary)
            if variant == base_variant:
                continue
            if variant in by_variant:
                raise ComparisonError(
                    f"aligned group {dict(zip(align, key))} holds several "
                    f"runs of variant {'+'.join(variant)}; add the "
                    f"distinguishing parameter to align"
                )
            by_variant[variant] = run
        for metric in metrics:
            base_value = base.scalar(metric)
            row: List[object] = list(key) + [
                metric,
                base_value if base_value is not None else "",
            ]
            for variant in variants:
                run = by_variant.get(variant)
                value = None if run is None else run.scalar(metric)
                row.append(value if value is not None else "")
                if (
                    _is_number(value)
                    and _is_number(base_value)
                    and base_value != 0
                ):
                    row.append((value - base_value) / base_value * 100.0)
                else:
                    row.append("")
            table.add(*row)
    if not matched_baseline:
        raise ComparisonError(f"no run matches the baseline {baseline!r}")
    return table


def render_compare(table: Table) -> str:
    """The delta table as GitHub-flavoured markdown (deterministic bytes)."""
    from repro.experiments.export import table_to_markdown

    return table_to_markdown(table)


def compare_json_dict(table: Table) -> Dict[str, object]:
    """The schema-versioned wire form of a compare table (HTTP responses).

    Body is :meth:`~repro.experiments.common.Table.to_json_dict` — the
    same serialisation every exported table uses — plus the rendered
    markdown, which is byte-identical to the CLI ``compare`` output (and
    the ``compare.md`` it writes, sans trailing newline), wrapped with a
    ``schema`` tag at the envelope.
    """
    return {
        "schema": COMPARE_TABLE_SCHEMA,
        **table.to_json_dict(),
        "markdown": render_compare(table),
    }
