"""Canonical metric and alignment names shared across the results layer.

These constants are the single place where the repo spells the headline
scalar metrics of the generated-topology (meshgen) family and the keys
that identify a generated layout. The meshgen harness builds its
``Summary`` table from :data:`MESHGEN_SUMMARY_COLUMNS`, the comparison
layer defaults to :data:`DEFAULT_COMPARE_METRICS`, and
``ResultSet.align_on`` defaults to :data:`DEFAULT_ALIGN_KEYS` — so a
rename can never silently desynchronise the harness, the compare tables
and the docs.

This module must stay import-light (stdlib only): it is imported both by
harness modules and by the public API layer.
"""

from __future__ import annotations

#: Columns of the meshgen ``Summary`` table, in export order. The table
#: has exactly one row, so each column surfaces as a scalar metric on
#: :class:`repro.results.RunResult`.
MESHGEN_SUMMARY_COLUMNS = (
    "jain_fairness",
    "aggregate_kbps",
    "delivered_ratio",
    "relay_backlog",
)

#: The algorithm-delta metrics the paper's comparative claims are about:
#: aggregate goodput, Jain fairness, end-to-end delivery. Used as the
#: default metric list by :func:`repro.results.compare` when the result
#: set exposes them.
DEFAULT_COMPARE_METRICS = (
    "aggregate_kbps",
    "jain_fairness",
    "delivered_ratio",
)

#: Parameters that identify one *generated layout*: two runs agreeing on
#: all three executed against the same topology, node placement and
#: sampled flows, so their metrics are directly comparable.
DEFAULT_ALIGN_KEYS = ("topology", "nodes", "seed")

#: The conventional baseline for algorithm-delta tables: standard 802.11
#: with no congestion control.
DEFAULT_BASELINE = {"algorithm": "none"}
