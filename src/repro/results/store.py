"""Pluggable result stores: where sweep results live, decoupled from what they are.

A :class:`ResultStore` keyed by *content* — the pair ``(spec id,
canonical effective parameters)``, seed included — holds one
:class:`~repro.experiments.runner.RunRecord` per distinct run. The sweep
runner checkpoints every completed run into the store as it finishes and
skips any request whose content key is already present, which gives two
properties for free:

* **resume** — a killed ``sweep`` re-issued against the same store picks
  up where it left off instead of restarting from zero, and
* **dedupe** — identical requests (even spelled differently, e.g. with a
  default elided vs. set explicitly) become cache hits.

Two backends implement the interface:

* :class:`DirectoryStore` — the compatibility path: a store *is* a
  ``--out`` export tree, byte-identical to what the CLI has always
  written. Mid-sweep state lives in a ``.sweep-checkpoint.json`` sidecar
  that :meth:`~DirectoryStore.finalize` removes, so a completed (or
  completed-after-resume) tree is indistinguishable from an
  uninterrupted export.
* :class:`SqliteStore` — the scale path: one row per run in a single
  schema-versioned sqlite file, identity and scalar metrics in indexed
  columns, series/tables as compact compressed blobs. Aggregation verbs
  (``scalars_frame``, :func:`repro.results.compare`) stream over the
  columnar side without ever materialising payloads.

Determinism contract: runs are pure functions of their requests, so a
resumed sweep's store contents (see :meth:`ResultStore.canonical_dump`)
and any re-export through the directory path are identical to an
uninterrupted run's at any ``--jobs`` count — the CI ``resume-smoke``
job locks this in.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import warnings
import zlib
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.specs import ParameterValueError, get_spec
from repro.results.types import (
    ResultLoadError,
    ResultSet,
    RunResult,
    _param_matches,
)

#: Schema version of the sqlite backend; bumped on layout changes.
SQLITE_SCHEMA = 1

#: Sidecar file a DirectoryStore keeps while a sweep is in flight.
CHECKPOINT_SIDECAR = ".sweep-checkpoint.json"

#: File suffixes that make ``open_store`` pick the sqlite backend when
#: given a bare path (the legacy spelling; explicit ``sqlite:``/``dir:``
#: URL schemes are the public dispatch).
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: URL schemes ``open_store`` understands: scheme -> backend class name.
STORE_SCHEMES = ("sqlite", "dir")


def canonical_params(spec_id: str, kwargs: Mapping[str, object]) -> Dict[str, object]:
    """The effective parameter dict of a request: defaults overlaid by kwargs.

    Folding the declared defaults in makes the content key independent
    of *spelling*: ``seed=11`` set explicitly and ``seed`` left at its
    default produce the same key, so they dedupe onto one stored run.
    """
    spec = get_spec(spec_id)
    params = spec.defaults()
    params.update(spec.validate(kwargs))
    return params


def content_key(spec_id: str, kwargs: Mapping[str, object]) -> str:
    """The run-identity key: sha256 of (spec id, canonical params, seed).

    The seed participates through the canonical params (every scenario
    declares it), so two runs differing only by seed never collide.
    """
    spec = get_spec(spec_id)
    body = json.dumps(
        {"spec": spec.id, "params": canonical_params(spec.id, kwargs)},
        sort_keys=True,
        default=list,
    )
    return hashlib.sha256(body.encode()).hexdigest()


def request_key(request) -> str:
    """Content key of one :class:`~repro.experiments.runner.RunRequest`."""
    return content_key(request.spec_id, request.kwargs_dict)


def _restore_params(params: Mapping[str, object]) -> Dict[str, object]:
    # Same rule as ExperimentResult.from_dict: sequence-kind parameters
    # are tuples in memory, JSON can only spell lists.
    return {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in params.items()
    }


def _params_json(params: Mapping[str, object]) -> str:
    return json.dumps(dict(params), sort_keys=True, default=list)


class ResultStore:
    """The store interface: put/get/iter/query by run identity.

    Subclasses implement the storage-specific primitives; the shared
    verbs (:meth:`result_set`, :meth:`canonical_dump`, containment) are
    defined here. Stores are context managers; :meth:`close` is
    idempotent.
    """

    path: str

    # -- storage primitives (backend-specific) ------------------------

    def put(self, record) -> str:
        """Checkpoint one completed run; returns its content key."""
        raise NotImplementedError

    def put_failure(self, request, failure) -> str:
        """Checkpoint one run's :class:`RunFailure`; returns its content key.

        A failure record is *not* a cached result — :meth:`get` keeps
        missing for that request, so a resume re-executes exactly the
        failed (and never-ran) runs while cache hits are still served
        first. A later successful :meth:`put` for the same content key
        supersedes the failure record.
        """
        raise NotImplementedError

    def failures(self) -> List["RunFailure"]:
        """Every stored failure record, sorted by run id."""
        raise NotImplementedError

    def get(self, request):
        """The cached record for this request, or ``None``.

        A hit comes back as a :class:`~repro.experiments.runner.RunRecord`
        carrying the *incoming* request (so run ids follow the current
        sweep's naming) with ``cached=True`` and the originally measured
        wall seconds.
        """
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Every stored content key, sorted."""
        raise NotImplementedError

    def index(self) -> Iterator[Dict[str, object]]:
        """Stream light index entries (no payloads), sorted by run id.

        Each entry has ``content_key``, ``run_id``, ``spec_id``,
        ``kwargs``, ``parameters``, ``scalars`` and ``wall_s``.
        """
        raise NotImplementedError

    def load_result(self, key: str) -> ExperimentResult:
        """Materialise the full result payload of one stored run."""
        raise NotImplementedError

    def finalize(self, records) -> None:
        """Mark a completed batch (backend-specific bookkeeping)."""

    def close(self) -> None:
        """Release backend resources; the store must not be used after."""

    # -- shared verbs --------------------------------------------------

    def __contains__(self, request) -> bool:
        key = request if isinstance(request, str) else request_key(request)
        return key in set(self.keys())

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.keys())

    def result_set(self, **params: object) -> ResultSet:
        """The store's runs as a :class:`~repro.results.ResultSet`.

        Runs are ordered by run id. Parameters and scalar metrics come
        from the store index; payloads load lazily per run on first
        access (:class:`SqliteStore`) or eagerly where the backend has
        no columnar side (:class:`DirectoryStore`). ``params`` filter
        CLI-tolerantly before anything is materialised.
        """
        runs: List[RunResult] = []
        for entry in self.index():
            if not all(
                _param_matches(entry["parameters"].get(name), value)
                for name, value in params.items()
            ):
                continue
            runs.append(self._entry_run(entry))
        return ResultSet(runs, failures=tuple(self.failures()))

    def _entry_run(self, entry: Dict[str, object]) -> RunResult:
        key = entry["content_key"]
        return RunResult(
            None,
            run_id=entry["run_id"],
            spec_id=entry["spec_id"],
            kwargs=entry["kwargs"],
            wall_s=entry["wall_s"],
            loader=lambda key=key: self.load_result(key),
            parameters=entry["parameters"],
            scalars=entry["scalars"],
        )

    def canonical_dump(self) -> Dict[str, object]:
        """The store's full logical contents as one canonical document.

        Two stores hold the same results exactly when their dumps are
        equal — the backend- and history-independent equality the CI
        resume smoke compares (raw sqlite bytes depend on page-allocation
        history; this does not).
        """
        runs: Dict[str, object] = {}
        for entry in self.index():
            result = self.load_result(entry["content_key"])
            runs[entry["run_id"]] = {
                "content_key": entry["content_key"],
                "spec_id": entry["spec_id"],
                "kwargs": json.loads(_params_json(entry["kwargs"])),
                "result": json.loads(
                    json.dumps(result.to_dict(), sort_keys=True, default=list)
                ),
            }
        failures = {
            failure.run_id: json.loads(
                json.dumps(failure.to_dict(), sort_keys=True, default=list)
            )
            for failure in self.failures()
        }
        return {"runs": runs, "failures": failures}

    def digest(self) -> str:
        """sha256 over :meth:`canonical_dump` (cheap equality check)."""
        body = json.dumps(self.canonical_dump(), sort_keys=True)
        return hashlib.sha256(body.encode()).hexdigest()


class DirectoryStore(ResultStore):
    """A store that *is* a ``--out`` export tree (the compatibility path).

    ``put`` exports the run directory immediately (the checkpoint) and
    records its identity in the sidecar; ``finalize`` writes the
    manifest + EXPERIMENTS.md through the same
    :func:`~repro.experiments.export.export_records` path the CLI has
    always used and removes the sidecar — so a finished tree is
    byte-identical to a plain ``--out`` export of the same batch. One
    DirectoryStore corresponds to one sweep's export tree (the manifest
    indexes the last finalized batch); use :class:`SqliteStore` to pool
    many studies in one store.
    """

    def __init__(self, path: str):
        self.path = path
        os.makedirs(path, exist_ok=True)

    # -- identity bookkeeping -----------------------------------------

    @property
    def _sidecar_path(self) -> str:
        return os.path.join(self.path, CHECKPOINT_SIDECAR)

    def _load_sidecar(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        try:
            with open(self._sidecar_path) as handle:
                data = json.load(handle)
            return {
                "runs": dict(data.get("runs", {})),
                "failures": dict(data.get("failures", {})),
            }
        except FileNotFoundError:
            return {"runs": {}, "failures": {}}
        except (json.JSONDecodeError, AttributeError):
            # A torn sidecar write: every checkpoint it indexed is
            # unreachable and simply re-runs.
            return {"runs": {}, "failures": {}}

    def _entries(self) -> Dict[str, Dict[str, object]]:
        """content key -> identity entry, from sidecar and/or manifest."""
        entries = dict(self._load_sidecar()["runs"])
        manifest_path = os.path.join(self.path, "manifest.json")
        if os.path.isfile(manifest_path):
            try:
                with open(manifest_path) as handle:
                    manifest = json.load(handle)
            except json.JSONDecodeError:
                return entries
            timing = manifest.get("timing", {}).get("runs", {})
            for run in manifest.get("runs", []):
                key = content_key(run["experiment"], run.get("kwargs", {}))
                entries.setdefault(
                    key,
                    {
                        "run_id": run["run_id"],
                        "spec_id": run["experiment"],
                        "kwargs": run.get("kwargs", {}),
                        "wall_s": timing.get(run["run_id"], {}).get("wall_s", 0.0),
                    },
                )
        return entries

    def _write_sidecar(
        self, data: Dict[str, Dict[str, Dict[str, object]]]
    ) -> None:
        tmp = self._sidecar_path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(data, handle, sort_keys=True, default=list)
            handle.write("\n")
        os.replace(tmp, self._sidecar_path)

    # -- ResultStore primitives ---------------------------------------

    def put(self, record) -> str:
        from repro.experiments.export import export_result

        key = request_key(record.request)
        export_result(record.result, self.path, record.request.run_id)
        # Sidecar last: a kill between the two writes leaves the run dir
        # unindexed, so resume re-runs (and byte-identically rewrites) it.
        sidecar = self._load_sidecar()
        sidecar["runs"][key] = {
            "run_id": record.request.run_id,
            "spec_id": record.request.spec_id,
            "kwargs": record.request.kwargs_dict,
            "wall_s": record.wall_s,
        }
        # A success supersedes any earlier failure record (retried resume).
        sidecar["failures"].pop(key, None)
        self._write_sidecar(sidecar)
        return key

    def put_failure(self, request, failure) -> str:
        key = request_key(request)
        sidecar = self._load_sidecar()
        # to_dict() is the deterministic form; wall seconds ride along in
        # the sidecar only (never exported).
        sidecar["failures"][key] = dict(failure.to_dict(), wall_s=failure.wall_s)
        self._write_sidecar(sidecar)
        return key

    def failures(self) -> List["RunFailure"]:
        from repro.experiments.runner import RunFailure

        entries = self._load_sidecar()["failures"]
        records = [RunFailure.from_dict(entry) for entry in entries.values()]
        return sorted(records, key=lambda f: f.run_id)

    def get(self, request):
        from repro.experiments.runner import RunRecord

        entry = self._entries().get(request_key(request))
        if entry is None:
            return None
        try:
            run = RunResult.load(
                os.path.join(self.path, entry["run_id"]), run_id=entry["run_id"]
            )
        except ResultLoadError:
            return None  # torn checkpoint: treat as absent, re-run
        return RunRecord(request, run.result, entry.get("wall_s", 0.0), cached=True)

    def keys(self) -> List[str]:
        return sorted(self._entries())

    def index(self) -> Iterator[Dict[str, object]]:
        entries = self._entries()
        for key in sorted(entries, key=lambda k: entries[k]["run_id"]):
            entry = entries[key]
            run = RunResult.load(
                os.path.join(self.path, entry["run_id"]), run_id=entry["run_id"]
            )
            yield {
                "content_key": key,
                "run_id": entry["run_id"],
                "spec_id": entry["spec_id"],
                "kwargs": _restore_params(dict(entry.get("kwargs", {}))),
                "parameters": run.parameters,
                "scalars": run.scalars,
                "wall_s": entry.get("wall_s", 0.0),
                "_result": run.result,
            }

    def _entry_run(self, entry: Dict[str, object]) -> RunResult:
        # No columnar side to stream from: the run directory was already
        # read to build the entry, so wrap it eagerly.
        return RunResult(
            entry["_result"],
            run_id=entry["run_id"],
            spec_id=entry["spec_id"],
            kwargs=entry["kwargs"],
            wall_s=entry["wall_s"],
        )

    def load_result(self, key: str) -> ExperimentResult:
        entry = self._entries()[key]
        return RunResult.load(
            os.path.join(self.path, entry["run_id"]), run_id=entry["run_id"]
        ).result

    def finalize(self, records) -> None:
        """Write manifest + index for the completed batch, drop the sidecar.

        With failures present, ``failures.json`` is written alongside the
        manifest and the sidecar is *kept* — it carries the failure
        records' identity keys, and a tree with failed runs is still
        in flight until a resume turns them into runs. A fully successful
        batch removes both, leaving the tree byte-identical to an
        uninterrupted export.
        """
        from repro.experiments.export import export_failures, export_records

        export_records(
            [r for r in records if getattr(r, "failure", None) is None],
            self.path,
        )
        failures = self.failures()
        export_failures(failures, self.path)
        if failures:
            return
        try:
            os.remove(self._sidecar_path)
        except FileNotFoundError:
            pass


class SqliteStore(ResultStore):
    """A single-file columnar store (the million-row aggregation path).

    One ``runs`` row per distinct content key: identity columns indexed,
    the full result payload as one zlib-compressed canonical-JSON blob.
    Scalar metrics live in a separate ``scalars`` table, one row per
    (run, metric), numerically indexed — ``scalars_frame``/``compare``
    over :meth:`result_set` read only these columns and never touch the
    blobs. Each ``put`` commits, so every completed run survives a
    process kill (``synchronous=OFF``: crash-of-the-process safe, which
    is the resume contract; machine-crash durability is not).
    """

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA synchronous=OFF")
        self._init_schema()

    def _init_schema(self) -> None:
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta(key TEXT PRIMARY KEY, value TEXT)"
            )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS runs(
                    content_key TEXT PRIMARY KEY,
                    run_id TEXT NOT NULL,
                    spec_id TEXT NOT NULL,
                    kwargs TEXT NOT NULL,
                    parameters TEXT NOT NULL,
                    wall_s REAL NOT NULL,
                    payload BLOB NOT NULL
                )
                """
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS runs_by_run_id ON runs(run_id)"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS runs_by_spec ON runs(spec_id)"
            )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS scalars(
                    content_key TEXT NOT NULL,
                    name TEXT NOT NULL,
                    num REAL,
                    value TEXT NOT NULL,
                    PRIMARY KEY(content_key, name)
                ) WITHOUT ROWID
                """
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS scalars_by_name ON scalars(name, num)"
            )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS failures(
                    content_key TEXT PRIMARY KEY,
                    run_id TEXT NOT NULL,
                    spec_id TEXT NOT NULL,
                    kwargs TEXT NOT NULL,
                    kind TEXT NOT NULL,
                    error TEXT NOT NULL,
                    message TEXT NOT NULL,
                    traceback TEXT,
                    attempts INTEGER NOT NULL,
                    wall_s REAL NOT NULL
                )
                """
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES('schema', ?)",
                (str(SQLITE_SCHEMA),),
            )
        stored = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema'"
        ).fetchone()
        if stored and int(stored[0]) != SQLITE_SCHEMA:
            raise ResultLoadError(
                f"{self.path}: store schema v{stored[0]} != supported "
                f"v{SQLITE_SCHEMA}",
                artifact=self.path,
            )

    # -- ResultStore primitives ---------------------------------------

    def put(self, record) -> str:
        key = request_key(record.request)
        payload = zlib.compress(
            json.dumps(
                record.result.to_dict(), sort_keys=True, default=list
            ).encode()
        )
        scalars = RunResult(
            record.result, run_id=record.request.run_id
        ).scalars
        with self._conn:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO runs"
                "(content_key, run_id, spec_id, kwargs, parameters, wall_s, payload)"
                " VALUES(?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    record.request.run_id,
                    record.request.spec_id,
                    _params_json(record.request.kwargs_dict),
                    _params_json(record.result.parameters),
                    float(record.wall_s),
                    payload,
                ),
            )
            if cursor.rowcount:
                self._conn.executemany(
                    "INSERT INTO scalars(content_key, name, num, value)"
                    " VALUES(?, ?, ?, ?)",
                    [
                        (
                            key,
                            name,
                            float(value)
                            if isinstance(value, (int, float))
                            and not isinstance(value, bool)
                            else None,
                            json.dumps(value, default=list),
                        )
                        for name, value in scalars.items()
                    ],
                )
            # A success supersedes any earlier failure record.
            self._conn.execute("DELETE FROM failures WHERE content_key=?", (key,))
        return key

    def put_failure(self, request, failure) -> str:
        key = request_key(request)
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO failures"
                "(content_key, run_id, spec_id, kwargs, kind, error, message,"
                " traceback, attempts, wall_s)"
                " VALUES(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    failure.run_id,
                    failure.spec_id,
                    _params_json(failure.kwargs),
                    failure.kind,
                    failure.error,
                    failure.message,
                    failure.traceback,
                    int(failure.attempts),
                    float(failure.wall_s),
                ),
            )
        return key

    def failures(self) -> List["RunFailure"]:
        from repro.experiments.runner import RunFailure

        rows = self._conn.execute(
            "SELECT run_id, spec_id, kwargs, kind, error, message, traceback,"
            " attempts, wall_s FROM failures ORDER BY run_id"
        )
        return [
            RunFailure(
                run_id=row[0],
                spec_id=row[1],
                kwargs=_restore_params(json.loads(row[2])),
                kind=row[3],
                error=row[4],
                message=row[5],
                traceback=row[6],
                attempts=int(row[7]),
                wall_s=float(row[8]),
            )
            for row in rows
        ]

    def get(self, request):
        from repro.experiments.runner import RunRecord

        key = request_key(request)
        row = self._conn.execute(
            "SELECT payload, wall_s FROM runs WHERE content_key=?", (key,)
        ).fetchone()
        if row is None:
            return None
        result = ExperimentResult.from_dict(json.loads(zlib.decompress(row[0])))
        return RunRecord(request, result, row[1], cached=True)

    def keys(self) -> List[str]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT content_key FROM runs ORDER BY content_key"
            )
        ]

    def index(self) -> Iterator[Dict[str, object]]:
        scalars: Dict[str, Dict[str, object]] = {}
        for key, name, value in self._conn.execute(
            "SELECT content_key, name, value FROM scalars ORDER BY content_key, name"
        ):
            scalars.setdefault(key, {})[name] = json.loads(value)
        for key, run_id, spec_id, kwargs, parameters, wall_s in self._conn.execute(
            "SELECT content_key, run_id, spec_id, kwargs, parameters, wall_s"
            " FROM runs ORDER BY run_id"
        ):
            yield {
                "content_key": key,
                "run_id": run_id,
                "spec_id": spec_id,
                "kwargs": _restore_params(json.loads(kwargs)),
                "parameters": _restore_params(json.loads(parameters)),
                "scalars": scalars.get(key, {}),
                "wall_s": wall_s,
            }

    def load_result(self, key: str) -> ExperimentResult:
        row = self._conn.execute(
            "SELECT payload FROM runs WHERE content_key=?", (key,)
        ).fetchone()
        if row is None:
            raise ResultLoadError(
                f"{self.path}: no stored run with content key {key}",
                artifact=self.path,
            )
        return ExperimentResult.from_dict(json.loads(zlib.decompress(row[0])))

    def close(self) -> None:
        """Close the sqlite connection; subsequent access raises."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def open_store(url: str) -> ResultStore:
    """Open (creating if needed) the store named by ``url``.

    The public spelling is an explicit URL scheme, which makes the
    backend choice part of the name instead of a filename convention:

    * ``sqlite:PATH`` — a columnar :class:`SqliteStore` file;
    * ``dir:PATH`` — a :class:`DirectoryStore` export tree.

    A bare path (no scheme) keeps the legacy suffix dispatch as a shim
    — now with a :class:`DeprecationWarning`: a sqlite suffix
    (``.sqlite``/``.sqlite3``/``.db``) — or an existing regular file —
    opens a :class:`SqliteStore`; anything else is a
    :class:`DirectoryStore`. The CLI's ``--store``, ``Study.run`` and
    the sweep service all resolve store names through this one factory.
    """
    scheme, sep, rest = url.partition(":")
    if sep and scheme in STORE_SCHEMES:
        if not rest:
            # ParameterValueError so the CLI reports it as a clean
            # input error (exit 2), like any other bad option value.
            raise ParameterValueError(
                f"store url {url!r}: empty path after {scheme!r} scheme"
            )
        return SqliteStore(rest) if scheme == "sqlite" else DirectoryStore(rest)
    warnings.warn(
        f"bare store path {url!r}: suffix-based backend dispatch is "
        f"deprecated; spell the url with an explicit scheme "
        f"('sqlite:{url}' or 'dir:{url}')",
        DeprecationWarning,
        stacklevel=2,
    )
    lowered = url.lower()
    if lowered.endswith(SQLITE_SUFFIXES) or os.path.isfile(url):
        return SqliteStore(url)
    return DirectoryStore(url)
