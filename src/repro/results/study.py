"""The fluent :class:`Study` builder: declare a sweep, run it, get results.

``Study`` is the recommended programmatic entry point for parameter
sweeps — it replaces hand-assembled ``grid_requests`` plumbing with a
declarative builder over the scenario catalogue::

    from repro.results import Study

    results = (
        Study("meshgen")
        .grid(nodes=[16, 25], algorithm=["none", "ezflow", "diffq"])
        .seeds(3)
        .run(jobs=2)
    )                      # -> ResultSet, 3 topologies x 2 x 3 x 3 seeds

Every run's identity (run id, derived seed) is a pure function of the
declared grid, so a study executed at any ``jobs`` count — or exported
and reloaded — yields the identical :class:`~repro.results.ResultSet`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.runner import (
    RunRecord,
    RunRequest,
    SweepRunner,
    _grid_requests,
    default_jobs,
)
from repro.experiments.specs import ScenarioSpec, get_spec
from repro.results.types import ResultSet


class Study:
    """A declarative parameter study over one catalogue scenario.

    Builder methods mutate and return ``self`` (fluent chaining).
    Axes a scenario declares as sweep defaults (meshgen's
    ``topology=mesh,grid,tree``) expand automatically unless the study
    pins them — the same rule the ``sweep`` CLI applies — so CLI and
    programmatic sweeps of the same grid produce the same run set.
    """

    def __init__(self, experiment: str, **fixed: object):
        self._spec: ScenarioSpec = get_spec(experiment)
        self._grid: Dict[str, List[object]] = {}
        self._replicates = 1
        self._base_seed: Optional[int] = None
        self._default_axes = True
        if fixed:
            self.set(**fixed)

    @property
    def spec(self) -> ScenarioSpec:
        return self._spec

    # -- declaration --------------------------------------------------

    def _axis_values(self, name: str, value: object) -> List[object]:
        param = self._spec.param(name)  # unknown axis raises here
        if isinstance(value, list):
            if not value:
                raise ValueError(f"axis {name!r}: no values given")
            return list(value)
        if isinstance(value, tuple) and param.kind not in ("ints", "floats"):
            if not value:
                raise ValueError(f"axis {name!r}: no values given")
            return list(value)
        # Scalars — and bare tuples for sequence-kind parameters like
        # ``cw`` or ``loads_kbps``, which are ONE value each — pin the
        # axis to a single point. Sweep a sequence-kind parameter by
        # passing a list of tuples.
        return [value]

    def grid(self, **axes: object) -> "Study":
        """Add cartesian axes: ``grid(nodes=[16, 25], algorithm=["none"])``.

        A list (or, for scalar-kind parameters, a tuple) is an axis of
        values; anything else pins the parameter to one value. Values
        may be typed or CLI strings — they validate against the
        scenario's declared schema when requests are built.
        """
        for name, value in axes.items():
            self._grid[name] = self._axis_values(name, value)
        return self

    def set(self, **fixed: object) -> "Study":
        """Pin parameters to single values (``set(topology="mesh")``)."""
        for name, value in fixed.items():
            self._spec.param(name)
            self._grid[name] = [value]
        return self

    def seeds(self, seeds: Union[int, Sequence[int]], base: Optional[int] = None) -> "Study":
        """Declare the seed dimension.

        ``seeds(3)`` adds a three-value ``seed`` axis derived from a
        base seed (``base``, defaulting to the scenario's declared
        default seed) via :meth:`ScenarioSpec.derive_seed` — a pure
        function of (base, scenario id, replicate index). Crucially the
        *same* seed set applies to every grid point, so replicate k of
        ``algorithm=none`` and replicate k of ``algorithm=ezflow`` run
        the identical generated layout and ``align_on``/:func:`compare`
        can pair them. ``seeds([1, 2, 3])`` sweeps an explicit seed
        axis instead. (Contrast :meth:`replicates`, the CLI's
        per-run-index derivation, where seeds are all distinct across
        the whole sweep and therefore never align across variants.)
        """
        if isinstance(seeds, bool) or not isinstance(seeds, int):
            return self.grid(seed=list(seeds))
        if seeds < 1:
            raise ValueError("seeds count must be >= 1")
        if base is None:
            declared = self._spec.defaults().get("seed")
            base = int(declared) if declared is not None else 0
        return self.grid(
            seed=[self._spec.derive_seed(base, index) for index in range(seeds)]
        )

    def replicates(self, count: int, base_seed: Optional[int] = None) -> "Study":
        """Raw replicate control (the CLI's ``--replicates/--base-seed``).

        Unlike :meth:`seeds`, no base seed is assumed: replicates > 1
        without ``base_seed`` or a ``seed`` axis is rejected when
        requests are built, exactly as the CLI rejects it.
        """
        self._replicates = count
        self._base_seed = base_seed
        return self

    def no_default_axes(self) -> "Study":
        """Do not expand the scenario's declared default sweep axes."""
        self._default_axes = False
        return self

    # -- execution ----------------------------------------------------

    def axes(self) -> Dict[str, List[object]]:
        """The effective grid: declared axes plus unpinned default axes."""
        grid = dict(self._grid)
        if self._default_axes:
            for name, values in self._spec.sweep_defaults:
                if name not in grid:
                    grid[name] = list(values)
        return grid

    def requests(self) -> List[RunRequest]:
        """The validated request list this study would run, in order."""
        grid = self.axes()
        return _grid_requests(
            self._spec.id,
            grid,
            base_seed=self._base_seed,
            replicates=self._replicates,
        )

    def run(
        self,
        jobs: int = 1,
        out: Optional[str] = None,
        on_record=None,
        runner: Optional[SweepRunner] = None,
        store=None,
        on_error=None,
        run_timeout: Optional[float] = None,
        faults=None,
        telemetry=None,
    ) -> ResultSet:
        """Execute the study and return its :class:`~repro.results.ResultSet`.

        ``jobs`` fans runs out over worker processes (0 = every core);
        ``out`` additionally exports the deterministic artefact tree
        (per-run dirs + manifest + index), byte-identical to the CLI's
        ``sweep ... --out``. Pass an existing ``runner`` to reuse a
        persistent worker pool across several studies. ``store`` (a
        :class:`~repro.results.store.ResultStore`, or a store url such
        as ``"sqlite:runs.sqlite"``/``"dir:out"`` resolved through
        :func:`~repro.results.store.open_store` and closed on return)
        checkpoints every completed run and turns already-stored
        requests into cache hits, so re-running an interrupted study
        against the same store resumes instead of restarting.

        ``on_error`` (an :class:`~repro.experiments.runner.ErrorPolicy`
        or ``"fail"``/``"continue"``/``"retry:N"``), ``run_timeout`` and
        ``faults`` configure fault-tolerant execution — see
        :meth:`~repro.experiments.runner.SweepRunner.run`. Under
        ``continue``, failed runs surface on the returned set's
        ``failures`` list instead of aborting the study.

        ``telemetry`` (a :class:`~repro.telemetry.hub.TelemetryHub`)
        streams live run events to its subscribers while the study
        executes; exports and records are unaffected.
        """
        requests = self.requests()
        store, opened = _resolve_store(store)
        try:
            if runner is not None:
                results = ResultSet.from_records(
                    runner.run(
                        requests,
                        on_record=on_record,
                        store=store,
                        policy=on_error,
                        run_timeout=run_timeout,
                        faults=faults,
                        telemetry=telemetry,
                    )
                )
            else:
                results = execute_requests(
                    requests,
                    jobs=jobs,
                    on_record=on_record,
                    store=store,
                    on_error=on_error,
                    run_timeout=run_timeout,
                    faults=faults,
                    telemetry=telemetry,
                )
        finally:
            if opened:
                store.close()
        if out is not None:
            results.save(out)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        axes = ", ".join(f"{k}x{len(v)}" for k, v in self._grid.items())
        return f"Study({self._spec.id!r}, {axes or 'defaults'})"


def _resolve_store(store):
    """Resolve a store argument: pass instances through, open url strings.

    Returns ``(store, opened)`` — ``opened`` is True when this call
    created the instance (from a ``sqlite:``/``dir:``/bare-path url via
    :func:`~repro.results.store.open_store`) and the caller therefore
    owns closing it.
    """
    if isinstance(store, str):
        from repro.results.store import open_store

        return open_store(store), True
    return store, False


def execute_requests(
    requests: Sequence[RunRequest],
    jobs: int = 1,
    on_record=None,
    store=None,
    on_error=None,
    run_timeout: Optional[float] = None,
    faults=None,
    telemetry=None,
) -> ResultSet:
    """Run pre-built requests and wrap the records (CLI plumbing helper).

    ``store`` (an instance or a store url string) enables checkpoint/
    resume/dedupe semantics; ``on_error``, ``run_timeout`` and
    ``faults`` configure fault-tolerant execution, and ``telemetry``
    (a :class:`~repro.telemetry.hub.TelemetryHub`) streams live run
    events — see :meth:`~repro.experiments.runner.SweepRunner.run`.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all available cores)")
    store, opened = _resolve_store(store)
    try:
        with SweepRunner(jobs=default_jobs() if jobs == 0 else jobs) as runner:
            records: List[RunRecord] = runner.run(
                requests,
                on_record=on_record,
                store=store,
                policy=on_error,
                run_timeout=run_timeout,
                faults=faults,
                telemetry=telemetry,
            )
    finally:
        if opened:
            store.close()
    return ResultSet.from_records(records)
