"""Typed results: :class:`RunResult` and the :class:`ResultSet` collection.

``RunResult`` wraps one :class:`~repro.experiments.common.ExperimentResult`
with its identity (run id, spec id, request kwargs) and derived scalar
metrics; it is constructible both in memory (from a sweep
:class:`~repro.experiments.runner.RunRecord`) and by loading an exported
run directory, and saving either form writes byte-identical artefacts.

``ResultSet`` is an immutable ordered collection of runs with
pandas-free relational verbs: ``filter``, ``split_by``, ``align_on``
(group runs sharing a generated layout) and ``scalars_frame``. It loads
a whole ``--out`` export directory (manifest-ordered) and saves through
the same deterministic export path the CLI uses.
"""

from __future__ import annotations

import json
import os
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.common import ExperimentResult, Table
from repro.results.metrics import DEFAULT_ALIGN_KEYS

RESULT_JSON = "result.json"
MANIFEST_JSON = "manifest.json"
FAILURES_JSON = "failures.json"

#: Schema tag of the run wire form (:meth:`RunResult.to_json_dict`).
RUN_RESULT_SCHEMA = "repro.results/run/1"


class ResultLoadError(RuntimeError):
    """A stored run could not be loaded: missing or corrupt artefact.

    Raised by :meth:`RunResult.load` / :meth:`ResultSet.load` instead of
    the bare ``FileNotFoundError`` / ``json.JSONDecodeError`` that used
    to escape from deep inside the export layer. Always names the run id
    and the offending artefact, so a failed load is diagnosable — and so
    the resume machinery (:mod:`repro.results.store`) can treat a torn
    checkpoint (a run directory the killed process only half wrote) as
    "not present" and simply re-run it.
    """

    def __init__(self, message: str, run_id: Optional[str] = None,
                 artifact: Optional[str] = None):
        super().__init__(message)
        self.run_id = run_id
        self.artifact = artifact


def canonical_result_dict(result: ExperimentResult) -> Dict[str, object]:
    """The JSON-normalised plain-data form of a result.

    Round-tripping through ``json`` collapses the representation
    differences that do not survive export (tuples become lists), so an
    in-memory result and its loaded export compare equal exactly when
    their ``result.json`` bytes would be identical.
    """
    return json.loads(json.dumps(result.to_dict(), sort_keys=True, default=list))


def _param_matches(actual: object, expected: object) -> bool:
    """Tolerant parameter equality: typed values or their CLI spellings."""
    return actual == expected or str(actual) == str(expected)


def _load_failures(out_dir: str) -> List[object]:
    """The failure records of an export tree (``failures.json``), if any."""
    from repro.experiments.runner import RunFailure

    path = os.path.join(out_dir, FAILURES_JSON)
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return []
    except json.JSONDecodeError as error:
        raise ResultLoadError(
            f"corrupt failures file {path} ({error})", artifact=path
        ) from error
    try:
        return [RunFailure.from_dict(entry) for entry in data.get("failures", [])]
    except (KeyError, TypeError, AttributeError) as error:
        raise ResultLoadError(
            f"corrupt failures file {path} ({error})", artifact=path
        ) from error


class RunResult:
    """One run's typed result: identity, parameters, scalars, series, tables.

    Thin and immutable by convention: the wrapped
    :class:`~repro.experiments.common.ExperimentResult` is shared, not
    copied. Two construction paths are equivalent (and round-trip
    tested byte-for-byte): :meth:`from_record` after a live run, and
    :meth:`load` on a directory a previous run exported.
    """

    __slots__ = (
        "run_id",
        "spec_id",
        "kwargs",
        "wall_s",
        "_result",
        "_loader",
        "_parameters",
        "_scalars",
    )

    def __init__(
        self,
        result: Optional[ExperimentResult],
        run_id: Optional[str] = None,
        spec_id: Optional[str] = None,
        kwargs: Optional[Mapping[str, object]] = None,
        wall_s: Optional[float] = None,
        *,
        loader: Optional[Callable[[], ExperimentResult]] = None,
        parameters: Optional[Mapping[str, object]] = None,
        scalars: Optional[Mapping[str, object]] = None,
    ):
        if result is None and loader is None:
            raise ValueError("RunResult needs a result or a lazy loader")
        if result is None and run_id is None:
            raise ValueError("a lazily loaded RunResult needs an explicit run_id")
        self._result = result
        self._loader = loader
        self.run_id = run_id or result.experiment
        self.spec_id = spec_id or (result.experiment if result else self.run_id)
        self.kwargs = dict(kwargs or {})
        self.wall_s = wall_s
        self._parameters = None if parameters is None else dict(parameters)
        self._scalars: Optional[Dict[str, object]] = (
            None if scalars is None else dict(scalars)
        )

    @property
    def result(self) -> ExperimentResult:
        """The wrapped experiment result, materialised on first access.

        A store-backed run (see :meth:`repro.results.store.ResultStore.
        result_set`) starts with only its columnar side — parameters and
        scalar metrics — and fetches the full payload (series, tables)
        through ``loader`` the first time something needs it. Streaming
        verbs like ``scalars_frame`` and :func:`repro.results.compare`
        therefore never materialise payloads at all.
        """
        if self._result is None:
            self._result = self._loader()
        return self._result

    @property
    def materialized(self) -> bool:
        """Whether the full payload has been fetched (False = columnar only)."""
        return self._result is not None

    # -- construction -------------------------------------------------

    @classmethod
    def from_result(
        cls, result: ExperimentResult, run_id: Optional[str] = None
    ) -> "RunResult":
        """Wrap an in-memory experiment result."""
        return cls(result, run_id=run_id)

    @classmethod
    def from_record(cls, record) -> "RunResult":
        """Wrap one sweep :class:`~repro.experiments.runner.RunRecord`."""
        return cls(
            record.result,
            run_id=record.request.run_id,
            spec_id=record.request.spec_id,
            kwargs=record.request.kwargs_dict,
            wall_s=record.wall_s,
        )

    @classmethod
    def load(cls, path: str, **identity) -> "RunResult":
        """Load one exported run directory (``<path>/result.json``).

        The directory name is the run id (the export layer names run
        directories that way); ``identity`` keyword overrides
        (``run_id``, ``spec_id``, ``kwargs``) let a manifest-aware
        caller supply richer identity. A missing or corrupt artefact
        raises :class:`ResultLoadError` naming the run id and the file.
        """
        identity.setdefault("run_id", os.path.basename(os.path.normpath(path)))
        run_id = identity["run_id"]
        artifact = os.path.join(path, RESULT_JSON)
        try:
            with open(artifact) as handle:
                data = json.load(handle)
            result = ExperimentResult.from_dict(data)
        except FileNotFoundError:
            raise ResultLoadError(
                f"run {run_id!r}: missing artefact {artifact}",
                run_id=run_id,
                artifact=artifact,
            ) from None
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ResultLoadError(
                f"run {run_id!r}: corrupt artefact {artifact} ({error})",
                run_id=run_id,
                artifact=artifact,
            ) from error
        return cls(result, **identity)

    # -- delegation ---------------------------------------------------

    @property
    def experiment(self) -> str:
        return self.result.experiment

    @property
    def description(self) -> str:
        return self.result.description

    @property
    def parameters(self) -> Dict[str, object]:
        if self._parameters is not None and self._result is None:
            return self._parameters
        return self.result.parameters

    @property
    def series(self) -> Dict[str, List[Tuple[float, float]]]:
        return self.result.series

    @property
    def tables(self) -> List[Table]:
        return self.result.tables

    @property
    def notes(self) -> List[str]:
        return self.result.notes

    def table(self, title_fragment: str) -> Table:
        """First table whose title contains the fragment (KeyError if none)."""
        return self.result.find_table(title_fragment)

    def param(self, name: str, default: object = None) -> object:
        """One parameter value (``default`` when the run does not set it)."""
        return self.parameters.get(name, default)

    def effective_param(self, name: str, default: object = None) -> object:
        """The run's value for ``name``: exported, requested, or ``default``.

        Exported ``parameters`` win; the request ``kwargs`` fill in axes
        the exporter elides when they sit at their default (the
        byte-identity rule — e.g. ``fidelity`` is only exported when it
        is not ``event``). Manifests persist kwargs, so loaded sweeps
        resolve the same way live ones do.
        """
        if name in self.parameters:
            return self.parameters[name]
        return self.kwargs.get(name, default)

    # -- scalars ------------------------------------------------------

    @property
    def scalars(self) -> Dict[str, object]:
        """Named scalar metrics (every single-row table, flattened)."""
        if self._scalars is None:
            self._scalars = self.result.scalars()
        return self._scalars

    def scalar(self, name: str, default: object = None) -> object:
        """One scalar metric by name (``default`` when absent)."""
        return self.scalars.get(name, default)

    def numeric_scalars(self) -> Dict[str, float]:
        """The scalar metrics that are numbers (bools excluded)."""
        return {
            name: value
            for name, value in self.scalars.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    def key(self, *names: str) -> Tuple[object, ...]:
        """Parameter values as an alignment key tuple."""
        return tuple(self.parameters.get(name) for name in names)

    # -- persistence & identity --------------------------------------

    def save(self, out_dir: str, dir_name: Optional[str] = None) -> str:
        """Export this run under ``out_dir`` (default subdir: the run id).

        Delegates to the deterministic export layer, so the written
        bytes are identical whether the run lives in memory or was
        itself loaded from an export.
        """
        from repro.experiments.export import export_result

        return export_result(self.result, out_dir, dir_name or self.run_id)

    def canonical(self) -> Dict[str, object]:
        """JSON-normalised plain-data form (see :func:`canonical_result_dict`)."""
        return canonical_result_dict(self.result)

    def to_json_dict(self) -> Dict[str, object]:
        """The schema-versioned wire form (HTTP responses).

        The ``result`` value is :func:`canonical_result_dict` — the
        exact document ``result.json`` serialises (the export layer
        writes it through the same function), so a service response and
        an exported artefact can never drift. Identity (run id, spec
        id, normalised request kwargs) rides in the envelope alongside
        the ``schema`` tag; wall seconds are deliberately absent, like
        everywhere else in the deterministic surface.
        """
        return {
            "schema": RUN_RESULT_SCHEMA,
            "run_id": self.run_id,
            "spec_id": self.spec_id,
            "kwargs": json.loads(json.dumps(self.kwargs, sort_keys=True, default=list)),
            "result": self.canonical(),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunResult):
            return NotImplemented
        return self.run_id == other.run_id and self.canonical() == other.canonical()

    __hash__ = None  # mutable payload; identity-hash would break == semantics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunResult({self.run_id!r}, {len(self.tables)} table(s), "
            f"{len(self.series)} series)"
        )


GroupKey = Union[object, Tuple[object, ...]]


class ResultSet:
    """An immutable ordered collection of :class:`RunResult`\\ s.

    Every verb returns a new ``ResultSet`` (or a mapping of them), so
    analysis code composes without mutating anything:
    ``study.run().filter(topology="mesh").split_by("algorithm")``.
    Run ids are unique within a set — the same invariant the sweep
    runner enforces — which keeps exports collision-free.

    A set produced by a fault-tolerant sweep (``--on-error continue``)
    additionally carries the failed runs as
    :class:`~repro.experiments.runner.RunFailure` records in
    ``failures``: the surviving runs stay first-class (every verb works
    over them), the failures stay visible instead of silently vanishing.
    ``filter`` and slices keep the failures; grouped sub-sets
    (``split_by``/``align_on``) do not, since failures produced no
    parameters to group on.
    """

    def __init__(self, runs: Iterable[RunResult], failures: Iterable = ()):
        self.runs: Tuple[RunResult, ...] = tuple(runs)
        self.failures: Tuple[object, ...] = tuple(failures)
        run_ids = [run.run_id for run in self.runs]
        if len(set(run_ids)) != len(run_ids):
            raise ValueError("duplicate run ids in result set")
        self._by_id = {run.run_id: run for run in self.runs}

    @property
    def ok(self) -> bool:
        """Whether every run of the originating sweep succeeded."""
        return not self.failures

    # -- construction -------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable) -> "ResultSet":
        """Wrap sweep :class:`~repro.experiments.runner.RunRecord`\\ s.

        Failed records (``record.failure`` set, no result payload)
        become entries in ``failures`` rather than runs.
        """
        records = list(records)
        failures = [
            record.failure
            for record in records
            if getattr(record, "failure", None) is not None
        ]
        return cls(
            (
                RunResult.from_record(record)
                for record in records
                if getattr(record, "failure", None) is None
            ),
            failures=failures,
        )

    @classmethod
    def load(cls, out_dir: str) -> "ResultSet":
        """Load every run of an exported ``--out`` directory.

        With a ``manifest.json`` present, runs load in manifest order
        with full identity (spec id, request kwargs). Without one (e.g.
        a directory of hand-collected run dirs), every subdirectory
        containing a ``result.json`` loads in sorted name order.
        """
        manifest_path = os.path.join(out_dir, MANIFEST_JSON)
        failures = _load_failures(out_dir)
        runs: List[RunResult] = []
        if os.path.isfile(manifest_path):
            try:
                with open(manifest_path) as handle:
                    manifest = json.load(handle)
            except json.JSONDecodeError as error:
                raise ResultLoadError(
                    f"corrupt manifest {manifest_path} ({error})",
                    artifact=manifest_path,
                ) from error
            for entry in manifest.get("runs", []):
                runs.append(
                    RunResult.load(
                        os.path.join(out_dir, entry["run_id"]),
                        run_id=entry["run_id"],
                        spec_id=entry.get("experiment"),
                        kwargs=entry.get("kwargs"),
                    )
                )
            return cls(runs, failures=failures)
        try:
            names = sorted(os.listdir(out_dir))
        except FileNotFoundError:
            raise ResultLoadError(
                f"{out_dir}: no such export directory", artifact=out_dir
            ) from None
        for name in names:
            run_dir = os.path.join(out_dir, name)
            if os.path.isfile(os.path.join(run_dir, RESULT_JSON)):
                runs.append(RunResult.load(run_dir))
        if not runs and not failures:
            raise ResultLoadError(
                f"{out_dir}: no manifest.json and no run directories "
                f"containing {RESULT_JSON}",
                artifact=out_dir,
            )
        return cls(runs, failures=failures)

    @classmethod
    def from_store(cls, store, **params: object) -> "ResultSet":
        """All runs of a :class:`~repro.results.store.ResultStore`.

        Runs come back in sorted-run-id order with their columnar side
        (parameters, scalar metrics) populated eagerly and the full
        payload (series, tables) loaded lazily per run on first access —
        ``scalars_frame``/:func:`~repro.results.compare` over the
        returned set therefore stream over the store index instead of
        materialising every payload. ``params`` filter CLI-tolerantly,
        like :meth:`filter`.
        """
        return store.result_set(**params)

    # -- sequence protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.runs)

    def __getitem__(self, key) -> Union[RunResult, "ResultSet"]:
        if isinstance(key, slice):
            return ResultSet(self.runs[key], failures=self.failures)
        if isinstance(key, str):
            return self._by_id[key]
        return self.runs[key]

    def get(self, run_id: str) -> Optional[RunResult]:
        """The run with this id, or None."""
        return self._by_id.get(run_id)

    @property
    def run_ids(self) -> Tuple[str, ...]:
        return tuple(run.run_id for run in self.runs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet({len(self.runs)} run(s))"

    # -- relational verbs ---------------------------------------------

    def filter(
        self,
        predicate: Optional[Callable[[RunResult], bool]] = None,
        **params: object,
    ) -> "ResultSet":
        """Runs matching a predicate and/or parameter equalities.

        Parameter matching is CLI-tolerant: ``nodes=16`` and
        ``nodes="16"`` both match a run with ``nodes: 16``.
        """
        return ResultSet(
            (
                run
                for run in self.runs
                if (predicate is None or predicate(run))
                and all(
                    _param_matches(run.parameters.get(name), value)
                    for name, value in params.items()
                )
            ),
            failures=self.failures,
        )

    def param_keys(self) -> List[str]:
        """Union of parameter names: first run's order, extras sorted."""
        keys: List[str] = []
        seen = set()
        for run in self.runs:
            extra = [k for k in run.parameters if k not in seen]
            if not keys:
                keys.extend(extra)  # first run: declaration order
            else:
                keys.extend(sorted(extra))
            seen.update(extra)
        return keys

    def varying_keys(self, exclude: Sequence[str] = ()) -> List[str]:
        """Parameter names whose values differ across the set."""
        varying: List[str] = []
        for name in self.param_keys():
            if name in exclude:
                continue
            values = {str(run.parameters.get(name)) for run in self.runs}
            if len(values) > 1:
                varying.append(name)
        return varying

    def _group(self, keys: Sequence[str]) -> List[Tuple[Tuple[object, ...], "ResultSet"]]:
        groups: Dict[Tuple[object, ...], List[RunResult]] = {}
        for run in self.runs:
            groups.setdefault(run.key(*keys), []).append(run)
        ordered = sorted(groups, key=lambda key: tuple(str(v) for v in key))
        return [(key, ResultSet(groups[key])) for key in ordered]

    def split_by(self, *keys: str) -> Dict[GroupKey, "ResultSet"]:
        """Partition by parameter value(s): key -> sub-set.

        One key yields scalar mapping keys (``{"mesh": ..., ...}``);
        several yield tuples. Groups are ordered by stringified key, so
        iteration order is deterministic whatever the run order.
        """
        if not keys:
            raise ValueError("split_by needs at least one parameter name")
        return {
            key[0] if len(keys) == 1 else key: group
            for key, group in self._group(keys)
        }

    def align_on(
        self, *keys: str
    ) -> List[Tuple[Tuple[object, ...], "ResultSet"]]:
        """Group runs that share a generated layout.

        Without arguments, aligns on the layout identity keys
        (``topology``, ``nodes``, ``seed``) that actually occur in the
        set — two meshgen runs in the same group executed against the
        identical generated topology and sampled flows, so their
        metrics are directly comparable. Returns ``(key, group)`` pairs
        sorted by key; keys are always tuples here (unlike
        :meth:`split_by`) because alignment keys are usually composite.
        """
        if not keys:
            keys = tuple(
                name
                for name in DEFAULT_ALIGN_KEYS
                if any(name in run.parameters for run in self.runs)
            )
        return self._group(keys)

    def scalars_frame(self, *columns: str) -> Table:
        """A flat parameters+scalars table, one row per run.

        Without ``columns``, includes every parameter and every scalar
        metric occurring in the set (parameters first). Cells for
        values a run does not define are empty strings. The returned
        :class:`~repro.experiments.common.Table` renders to monospace
        text or markdown like any result table — the pandas-free
        answer to ``DataFrame``.
        """
        if columns:
            names = list(columns)
        else:
            names = list(self.param_keys())
            seen = set(names)
            scalar_names: List[str] = []
            for run in self.runs:
                scalar_names.extend(
                    sorted(k for k in run.scalars if k not in seen)
                )
                seen.update(run.scalars)
            names.extend(scalar_names)
        frame = Table("scalars", ["run_id"] + names)
        for run in self.runs:
            row: List[object] = [run.run_id]
            for name in names:
                if name in run.parameters:
                    row.append(run.parameters[name])
                else:
                    value = run.scalar(name, "")
                    row.append(value)
            frame.add(*row)
        return frame

    # -- persistence --------------------------------------------------

    def save(self, out_dir: str) -> List[str]:
        """Export every run plus manifest and index, deterministically.

        Delegates to the same export path the CLI's ``--out`` uses, so
        per-run artefacts are byte-identical to a live ``sweep``
        export. Manifest timing reflects what this set knows: live
        runs carry their wall seconds, loaded runs re-save with zeroed
        timing (artefact bytes are unaffected — timing lives only in
        the manifest). A set carrying failures additionally writes
        ``failures.json``; a fully successful set removes any stale one,
        so a resumed-then-completed tree re-saves byte-identically to an
        uninterrupted export.
        """
        from repro.experiments.export import export_failures, export_records
        from repro.experiments.runner import RunRecord, RunRequest

        records = [
            RunRecord(
                RunRequest(
                    spec_id=run.spec_id,
                    kwargs=tuple(sorted(run.kwargs.items())),
                    run_id=run.run_id,
                ),
                run.result,
                run.wall_s or 0.0,
            )
            for run in self.runs
        ]
        paths = export_records(records, out_dir)
        export_failures(list(self.failures), out_dir)
        return paths
