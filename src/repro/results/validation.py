"""Cross-tier validation: does the slotted fast tier agree with the core?

The slot-synchronous tier (``fidelity=slotted``) buys its speed with
abstractions — one contention phase per slot, instant ACKs, a fair
winner process instead of per-frame binary exponential backoff. Those
are *modelling* choices, so agreement with the event core is measured,
never assumed: :func:`validate_fidelity` pairs event/slotted runs of
the same scenario (same topology, nodes, seed, algorithm, ...) and
checks each headline metric's delta against an explicit tolerance.

Tolerances encode the calibrated envelope of the abstraction gap, not
wishful thinking. The defaults come from sweeping the 2-topology x
3-algorithm CI matrix: aggregate goodput and delivery ratio track
within tens of percent, while Jain fairness needs a wide band — the
event MAC's exponential-backoff capture effect starves multi-hop flows
far harder than the paper's fair winner process, a divergence the
slotted model inherits *by design* (it generalises the paper's
analytical chain model). CI gates on these bands so the gap can only
shrink silently, never grow.

``python -m repro.experiments validate-fidelity`` runs a fresh matrix
and renders the report; exit status 1 flags any tolerance violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.common import Table
from repro.results.types import ResultSet, RunResult

#: The fidelity axis value whose runs are the reference side of a pair.
BASELINE_FIDELITY = "event"


class ValidationError(ValueError):
    """The result set cannot be arranged into event/slotted pairs."""


@dataclass(frozen=True)
class Tolerance:
    """Agreement band for one scalar metric.

    A delta passes when it is inside *either* bound (``math.isclose``
    semantics): ``abs_tol`` is an absolute band, ``rel_tol`` is
    relative to the baseline magnitude (floored to dodge divide-by-
    zero on dead metrics). At least one bound must be set.
    """

    metric: str
    rel_tol: Optional[float] = None
    abs_tol: Optional[float] = None
    floor: float = 1e-9

    def __post_init__(self):
        if self.rel_tol is None and self.abs_tol is None:
            raise ValueError(f"tolerance for {self.metric!r} needs a bound")

    def deltas(self, base: float, candidate: float) -> Tuple[float, float]:
        """(absolute delta, relative delta) of candidate vs base."""
        abs_delta = abs(candidate - base)
        return abs_delta, abs_delta / max(abs(base), self.floor)

    def accepts(self, base: float, candidate: float) -> bool:
        """True when either configured bound (abs or rel) is met."""
        abs_delta, rel_delta = self.deltas(base, candidate)
        if self.abs_tol is not None and abs_delta <= self.abs_tol:
            return True
        return self.rel_tol is not None and rel_delta <= self.rel_tol

    def describe(self) -> str:
        """Render the bounds for report tables, e.g. ``abs<=30|rel<=0.4``."""
        parts = []
        if self.abs_tol is not None:
            parts.append(f"abs<={self.abs_tol:g}")
        if self.rel_tol is not None:
            parts.append(f"rel<={self.rel_tol:g}")
        return "|".join(parts)


#: Calibrated default bands (see module docstring for provenance).
#: Worst observed deltas on the default matrix (n16, 30 s): aggregate
#: rel 0.28, delivered rel 0.29 / abs 0.17, jain abs 0.46 — each limit
#: leaves ~20-40% headroom over the measured envelope. The dynamic
#: link-state cases (:data:`DYNAMIC_CASES`) sit inside the same bands.
DEFAULT_TOLERANCES: Tuple[Tolerance, ...] = (
    Tolerance("aggregate_kbps", rel_tol=0.40, abs_tol=30.0),
    Tolerance("delivered_ratio", rel_tol=0.35, abs_tol=0.15),
    Tolerance("jain_fairness", abs_tol=0.55),
)

#: Dynamic link-state pair blocks appended to the standard matrix: one
#: lossy case and one churn case, each a single (topology, algorithm)
#: point run on both tiers. Loss and churn exercise entirely different
#: slotted-tier code paths (per-slot loss draws, plan invalidation +
#: re-routing) than the static grid, so the agreement gate covers them
#: explicitly rather than by hope. The timeline of the churn case (node
#: 2 — a relay the default layout actually routes through, so the
#: outage forces a detour on both tiers — down at t=10 s, back at
#: t=20 s) assumes the default 30 s duration; callers shrinking
#: ``duration_s`` below 20 s should pass their own cases (or none).
#: Measured envelope of the dynamic pairs (n16, 30 s, seed 11): churn
#: aggregate rel 0.31 / delivered abs 0.08 / jain abs 0.31; loss
#: aggregate rel 0.22 / delivered abs 0.06 / jain abs 0.50 — the loss
#: pair's jain delta is the tightest check in the whole matrix.
DYNAMIC_CASES: Tuple[Mapping[str, object], ...] = (
    {"topology": "mesh", "algorithm": "ezflow", "loss": "iid:0.1"},
    {"topology": "mesh", "algorithm": "ezflow", "churn": "down:2@10+up:2@20"},
)


@dataclass(frozen=True)
class ValidationRow:
    """One (scenario, metric) agreement check."""

    scenario: Tuple[Tuple[str, object], ...]  # aligned key, as sorted items
    metric: str
    baseline: float
    candidate: float
    abs_delta: float
    rel_delta: float
    limit: str
    ok: bool

    @property
    def scenario_dict(self) -> Dict[str, object]:
        return dict(self.scenario)


@dataclass(frozen=True)
class ValidationReport:
    """Every checked pair's deltas plus the bookkeeping CI needs."""

    rows: Tuple[ValidationRow, ...]
    pair_count: int
    unpaired: Tuple[str, ...]  # run ids with no partner on the other tier

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violations(self) -> Tuple[ValidationRow, ...]:
        return tuple(row for row in self.rows if not row.ok)

    def table(self, candidate: str = "slotted") -> Table:
        """The report as a result-style table (deterministic bytes)."""
        align = list(self.rows[0].scenario_dict) if self.rows else []
        columns = align + [
            "metric",
            BASELINE_FIDELITY,
            candidate,
            "Δabs",
            "Δrel",
            "limit",
            "ok",
        ]
        table = Table(f"Fidelity agreement: {candidate} vs {BASELINE_FIDELITY}", columns)
        for row in self.rows:
            table.add(
                *[row.scenario_dict.get(name, "") for name in align],
                row.metric,
                row.baseline,
                row.candidate,
                round(row.abs_delta, 4),
                round(row.rel_delta, 4),
                row.limit,
                "yes" if row.ok else "NO",
            )
        return table


def _fidelity_of(run: RunResult) -> str:
    # Exported parameters elide fidelity at its event default; the
    # request kwargs (when the sweep set the axis) fill it in.
    return str(run.effective_param("fidelity", BASELINE_FIDELITY))


def validate_fidelity(
    results: ResultSet,
    candidate: str = "slotted",
    tolerances: Optional[Sequence[Tolerance]] = None,
    align: Optional[Sequence[str]] = None,
) -> ValidationReport:
    """Pair event/``candidate`` runs and check metric agreement.

    Runs are grouped by ``align`` (default: every parameter that varies
    across the set except ``fidelity`` — which subsumes the layout
    identity topology/nodes/seed plus any swept axis). Each group must
    hold at most one run per tier; a group with both tiers yields one
    :class:`ValidationRow` per tolerance, a group with only one tier is
    reported in ``unpaired``. Runs on tiers other than the baseline and
    ``candidate`` are ignored.
    """
    if not len(results):
        raise ValidationError("empty result set")
    if candidate == BASELINE_FIDELITY:
        raise ValidationError("candidate tier must differ from the event baseline")
    tolerances = tuple(DEFAULT_TOLERANCES if tolerances is None else tolerances)
    if not tolerances:
        raise ValidationError("need at least one metric tolerance")
    if align is None:
        align = results.varying_keys(exclude=("fidelity",))
    align = list(align)

    groups: Dict[Tuple[str, ...], Dict[str, RunResult]] = {}
    order: List[Tuple[str, ...]] = []
    for run in results:
        tier = _fidelity_of(run)
        if tier not in (BASELINE_FIDELITY, candidate):
            continue
        key = tuple(str(run.effective_param(name)) for name in align)
        if key not in groups:
            groups[key] = {}
            order.append(key)
        if tier in groups[key]:
            raise ValidationError(
                f"aligned group {dict(zip(align, key))} holds several "
                f"{tier} runs; add the distinguishing parameter to align"
            )
        groups[key][tier] = run

    rows: List[ValidationRow] = []
    unpaired: List[str] = []
    pair_count = 0
    for key in sorted(order):
        pair = groups[key]
        if len(pair) < 2:
            unpaired.extend(run.run_id for run in pair.values())
            continue
        pair_count += 1
        base, cand = pair[BASELINE_FIDELITY], pair[candidate]
        scenario = tuple(zip(align, key))
        for tolerance in tolerances:
            base_value = base.scalar(tolerance.metric)
            cand_value = cand.scalar(tolerance.metric)
            if base_value is None or cand_value is None:
                raise ValidationError(
                    f"metric {tolerance.metric!r} missing from "
                    f"{base.run_id if base_value is None else cand.run_id}"
                )
            abs_delta, rel_delta = tolerance.deltas(base_value, cand_value)
            rows.append(
                ValidationRow(
                    scenario=scenario,
                    metric=tolerance.metric,
                    baseline=base_value,
                    candidate=cand_value,
                    abs_delta=abs_delta,
                    rel_delta=rel_delta,
                    limit=tolerance.describe(),
                    ok=tolerance.accepts(base_value, cand_value),
                )
            )
    if not pair_count:
        raise ValidationError(
            f"no {BASELINE_FIDELITY}/{candidate} pair shares an aligned "
            f"scenario; check the sweep's fidelity axis"
        )
    return ValidationReport(
        rows=tuple(rows), pair_count=pair_count, unpaired=tuple(unpaired)
    )


def validation_study(
    topologies: Sequence[str] = ("mesh", "grid"),
    algorithms: Sequence[str] = ("none", "ezflow", "diffq"),
    candidate: str = "slotted",
    nodes: int = 16,
    duration_s: float = 30.0,
    seed: int = 11,
    jobs: int = 1,
    dynamic_cases: Optional[Sequence[Mapping[str, object]]] = None,
    store=None,
) -> ResultSet:
    """Run the standard cross-tier matrix and return its result set.

    The CI ``fidelity-smoke`` job runs exactly this: the static grid (2
    topologies x 3 algorithms x both tiers = 12 runs) plus one
    event/``candidate`` pair per dynamic link-state case
    (:data:`DYNAMIC_CASES` unless overridden; pass ``()`` to skip, the
    CLI's ``--static-only``) before handing the set to
    :func:`validate_fidelity`. ``store`` checkpoints every block into
    one :class:`~repro.results.store.ResultStore`, so an interrupted
    matrix resumes instead of restarting.
    """
    from repro.results.study import Study

    runs: List[RunResult] = list(
        Study("meshgen")
        .grid(
            topology=list(topologies),
            algorithm=list(algorithms),
            fidelity=[BASELINE_FIDELITY, candidate],
        )
        .set(nodes=nodes, duration_s=duration_s, seed=seed)
        .run(jobs=jobs, store=store)
    )
    if dynamic_cases is None:
        dynamic_cases = DYNAMIC_CASES
    for case in dynamic_cases:
        runs.extend(
            Study("meshgen")
            .grid(fidelity=[BASELINE_FIDELITY, candidate])
            .set(nodes=nodes, duration_s=duration_s, seed=seed, **case)
            .run(jobs=jobs, store=store)
        )
    return ResultSet(runs)
