"""The long-running sweep service: HTTP studies over a shared store.

``python -m repro.service --store sqlite:runs.sqlite --jobs 4`` starts
a single-process service that accepts study submissions over HTTP (the
same JSON grid shape :class:`repro.results.Study` builds), queues them,
executes each across one persistent supervised worker pool, and
checkpoints every run into one shared result store — so concurrent
clients pool their work: overlapping grids dedupe into cache hits via
the store's content keys, and a resubmitted study costs nothing.

Layering (see EXPERIMENTS.md, "Sweep service"):

* :class:`SweepService` (:mod:`repro.service.jobs`) — the HTTP-free
  queue + scheduler core;
* :class:`ServiceApp` (:mod:`repro.service.app`) — a pure WSGI app
  rendering the service over the same code paths the CLI uses, so
  HTTP responses are byte-identical to ``compare``/``list --json``;
* :mod:`repro.service.http` — stdlib threaded WSGI hosting;
* :mod:`repro.service.__main__` — the CLI entry point with graceful
  SIGINT/SIGTERM drain.
"""

from repro.service.app import ServiceApp, make_app
from repro.service.jobs import (
    JOB_SCHEMA,
    STATUS_SCHEMA,
    Job,
    JobError,
    SweepService,
    build_study,
)

__all__ = [
    "JOB_SCHEMA",
    "STATUS_SCHEMA",
    "Job",
    "JobError",
    "ServiceApp",
    "SweepService",
    "build_study",
    "make_app",
]
