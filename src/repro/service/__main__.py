"""CLI entry point: ``python -m repro.service --store sqlite:runs.sqlite``.

Runs the sweep service in the foreground until SIGINT/SIGTERM, then
drains gracefully: the HTTP listener stops accepting, the running job
finishes (its completed runs are already checkpointed either way),
queued jobs are cancelled, and the worker pool and store close. Exit
status 0 on a clean drain — the service equivalent of the sweep CLI's
exit ladder, which lives instead in each job's ``exit_code`` field.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.experiments.runner import default_jobs
from repro.service.app import ServiceApp
from repro.service.http import serve
from repro.service.jobs import SweepService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="long-running sweep service: HTTP study submission, "
        "a job queue, shared-store results",
    )
    parser.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help="shared result store all jobs checkpoint into: "
        "sqlite:runs.sqlite | dir:results/ (bare paths dispatch on "
        "suffix, like the sweep CLI's --store)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8008, help="bind port (default 8008; 0 = ephemeral)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes each study fans out over (0 = all cores)",
    )
    parser.add_argument(
        "--on-error",
        default="fail",
        metavar="MODE",
        help="default failure policy for jobs that set none: "
        "fail | continue | retry:N (default fail)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-run wall-clock budget for jobs that set none",
    )
    parser.add_argument(
        "--mp-context",
        default="spawn",
        choices=("spawn", "fork", "forkserver"),
        help="worker start method (default spawn: forking from a "
        "threaded server is hazardous)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    jobs = default_jobs() if args.jobs == 0 else args.jobs
    service = SweepService(
        args.store,
        jobs=jobs,
        default_on_error=args.on_error,
        default_run_timeout=args.run_timeout,
        mp_context=args.mp_context,
    ).start()
    server = serve(ServiceApp(service), args.host, args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(
        f"repro sweep service on http://{host}:{port} "
        f"(store {args.store}, {jobs} worker(s)); Ctrl-C to drain",
        flush=True,
    )

    stop = threading.Event()
    # An explicit SIGINT handler (not just KeyboardInterrupt): processes
    # started with `&` from a non-interactive shell — the CI smoke job —
    # inherit SIGINT ignored, and only installing a handler undoes that.
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    try:
        while not stop.is_set():
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    print("draining: finishing the running job, cancelling the queue", flush=True)
    server.shutdown()
    serve_thread.join()
    server.server_close()
    service.shutdown()
    print("drained; store closed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
