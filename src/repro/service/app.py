"""The sweep service's HTTP surface: a pure WSGI application.

This module is deliberately a *thin rendering layer*: every response
body is produced by the same code paths the CLI uses — ``/scenarios``
is :func:`repro.experiments.specs.catalogue` (``list --json``), job
results are :meth:`RunResult.to_json_dict` /
:meth:`ResultSet.scalars_frame`, and ``/jobs/<id>/compare.md`` is
:func:`repro.results.render_compare` over the same
:func:`repro.results.compare` table the ``compare`` subcommand prints —
so HTTP bytes and CLI bytes match exactly. All queue logic lives in
:class:`repro.service.jobs.SweepService`.

Being plain WSGI (no framework, stdlib only) keeps the service free of
new dependencies and portable: :mod:`repro.service.http` serves it with
``wsgiref`` + a threading mix-in, and any other WSGI (or, via a
one-file adapter, ASGI) server could host the same callable.
"""

from __future__ import annotations

import json
import warnings
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.experiments.specs import (
    ParameterValueError,
    UnknownExperimentError,
    UnknownParameterError,
    catalogue,
)
from repro.results import ComparisonError, IncompleteSweepWarning, compare, compare_json_dict, render_compare
from repro.service.jobs import DONE, JobError, SweepService

#: Maximum accepted submission body, bytes. Grids are tiny documents;
#: anything bigger is a client error, not a study.
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "200 OK",
    202: "202 Accepted",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    413: "413 Payload Too Large",
    503: "503 Service Unavailable",
}

#: The submission-time error types that map to HTTP 400: invalid
#: documents plus the catalogue's typed validation errors (the same
#: ones the CLI reports as exit 2).
BAD_REQUEST_ERRORS = (
    JobError,
    UnknownExperimentError,
    UnknownParameterError,
    ParameterValueError,
    ValueError,
)

INDEX = {
    "service": "repro sweep service",
    "endpoints": {
        "GET /": "this index",
        "GET /scenarios": "the scenario catalogue (same document as list --json)",
        "GET /status": "queue depth, worker count, failure counts",
        "POST /studies": "submit a study; body mirrors the Study builder",
        "GET /jobs": "every job, newest last (summaries)",
        "GET /jobs/<id>": "one job: state, per-run progress, typed failures",
        "DELETE /jobs/<id>": "cancel a queued job",
        "GET /jobs/<id>/results": "flat parameters+scalars table, one row per run",
        "GET /jobs/<id>/runs/<run_id>": "one run's full result document",
        "GET /jobs/<id>/events": "live telemetry stream (Server-Sent Events; "
        "Last-Event-ID resumes)",
        "GET /jobs/<id>/compare": "cross-run delta table (query: baseline, metrics, align)",
        "GET /jobs/<id>/compare.md": "the same table as markdown, byte-identical to the CLI",
    },
}


class ServiceApp:
    """WSGI callable over one :class:`~repro.service.jobs.SweepService`."""

    #: Seconds between SSE keepalive comments while a job is idle. Short
    #: enough that a vanished client is detected (the keepalive write
    #: raises) well before a long run completes; tests shrink it.
    sse_keepalive_s = 15.0

    def __init__(self, service: SweepService):
        self.service = service

    # -- plumbing ------------------------------------------------------

    def __call__(self, environ: Mapping, start_response: Callable):
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/") or "/"
        try:
            status, body, content_type = self._route(method, path, environ)
        except BAD_REQUEST_ERRORS as error:
            status, body, content_type = 400, {"error": str(error)}, None
        if content_type == "text/event-stream":
            # Streaming response: no Content-Length (the connection
            # close delimits the stream) and no caching anywhere.
            start_response(
                _STATUS_TEXT[status],
                [
                    ("Content-Type", "text/event-stream; charset=utf-8"),
                    ("Cache-Control", "no-store"),
                ],
            )
            return body
        if content_type is None:
            content_type = "application/json"
            payload = (
                json.dumps(body, sort_keys=True, indent=2) + "\n"
            ).encode("utf-8")
        else:
            payload = body.encode("utf-8")
        start_response(
            _STATUS_TEXT[status],
            [
                ("Content-Type", f"{content_type}; charset=utf-8"),
                ("Content-Length", str(len(payload))),
            ],
        )
        return [payload]

    def _route(
        self, method: str, path: str, environ: Mapping
    ) -> Tuple[int, object, Optional[str]]:
        parts = [part for part in path.split("/") if part]
        if not parts:
            return self._expect(method, "GET") or (200, INDEX, None)
        head, rest = parts[0], parts[1:]
        if head == "scenarios" and not rest:
            return self._expect(method, "GET") or (200, catalogue(), None)
        if head == "status" and not rest:
            return self._expect(method, "GET") or (
                200,
                self.service.status_json_dict(),
                None,
            )
        if head == "studies" and not rest:
            return self._expect(method, "POST") or self._submit(environ)
        if head == "jobs":
            return self._jobs(method, rest, environ)
        return 404, {"error": f"no such resource: {path}"}, None

    @staticmethod
    def _expect(method: str, allowed: str):
        if method != allowed:
            return 405, {"error": f"method {method} not allowed; use {allowed}"}, None
        return None

    # -- handlers ------------------------------------------------------

    def _submit(self, environ: Mapping) -> Tuple[int, object, None]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            return 413, {"error": "submission body too large"}, None
        raw = environ["wsgi.input"].read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"submission is not valid JSON: {error}"}, None
        try:
            job = self.service.submit(payload)
        except JobError as error:
            if "shutting down" in str(error):
                return 503, {"error": str(error)}, None
            raise
        return 202, job.to_json_dict(), None

    def _jobs(
        self, method: str, rest: List[str], environ: Mapping
    ) -> Tuple[int, object, Optional[str]]:
        if not rest:
            denied = self._expect(method, "GET")
            if denied:
                return denied
            return (
                200,
                {"jobs": [job.to_json_dict(runs=False) for job in self.service.jobs_list()]},
                None,
            )
        job = self.service.job(rest[0])
        if job is None:
            return 404, {"error": f"no such job: {rest[0]}"}, None
        tail = rest[1:]
        if not tail:
            if method == "DELETE":
                if self.service.cancel(job.id):
                    return 200, job.to_json_dict(), None
                return (
                    409,
                    {"error": f"job {job.id} is {job.state}; only queued jobs cancel"},
                    None,
                )
            return self._expect(method, "GET") or (200, job.to_json_dict(), None)
        denied = self._expect(method, "GET")
        if denied:
            return denied
        if tail == ["events"]:
            # The live event stream is served in every job state —
            # queued jobs stream once they start, finished jobs replay
            # their recorded log and close.
            return 200, self._event_stream(job, environ), "text/event-stream"
        if job.state != DONE or job.results is None:
            return (
                409,
                {
                    "error": f"job {job.id} is {job.state}; results are served "
                    f"once the job is done",
                    "job": job.to_json_dict(runs=False),
                },
                None,
            )
        results = job.results
        if tail == ["results"]:
            return 200, results.scalars_frame().to_json_dict(), None
        if len(tail) == 2 and tail[0] == "runs":
            for run in results:
                if run.run_id == tail[1]:
                    return 200, run.to_json_dict(), None
            return 404, {"error": f"job {job.id} has no run {tail[1]!r}"}, None
        if tail in (["compare"], ["compare.md"]):
            table, incomplete = self._compare(results, environ)
            if tail == ["compare.md"]:
                # The CLI's exact stdout (and compare.md file) bytes.
                return 200, render_compare(table) + "\n", "text/markdown"
            doc = compare_json_dict(table)
            doc["incomplete"] = incomplete
            return 200, doc, None
        return 404, {"error": f"no such job resource: {'/'.join(tail)}"}, None

    def _event_stream(self, job, environ: Mapping):
        """The SSE body generator for one job's telemetry stream.

        Frames follow the EventSource wire format — ``id:`` is the
        job-monotonic event id, ``event:`` the telemetry kind, ``data:``
        the serialised event. A client reconnecting with
        ``Last-Event-ID`` (header, or ``last_event_id`` query parameter
        for curl-style consumers) receives exactly the events it has not
        seen. The stream closes cleanly once the job is terminal and its
        log is fully replayed; while waiting it emits comment keepalives
        so a dead connection surfaces as a write error here rather than
        a thread parked forever.
        """
        from urllib.parse import parse_qs

        last_id = 0
        raw = environ.get("HTTP_LAST_EVENT_ID")
        if raw is None:
            query = parse_qs(environ.get("QUERY_STRING", ""))
            raw = (query.get("last_event_id") or [None])[0]
        if raw is not None:
            try:
                last_id = max(0, int(raw))
            except ValueError:
                last_id = 0

        def stream():
            nonlocal last_id
            while True:
                events, terminal = self.service.wait_events(
                    job, last_id, timeout=self.sse_keepalive_s
                )
                for event_id, kind, data in events:
                    last_id = event_id
                    yield (
                        f"id: {event_id}\nevent: {kind}\ndata: {data}\n\n"
                    ).encode("utf-8")
                if terminal and not events:
                    return
                if not events:
                    yield b": keepalive\n\n"

        return stream()

    @staticmethod
    def _compare(results, environ: Mapping):
        """The delta table for a job, honouring the CLI's compare knobs.

        Query params mirror the subcommand flags: ``baseline=k=v`` is
        repeatable (``--baseline``), ``metrics``/``align`` are
        comma-separated lists. :class:`ComparisonError` propagates to
        the 400 handler; an incomplete-sweep warning (failed runs under
        ``continue``) is captured and returned as a flag instead of
        hitting a logger nobody watches.
        """
        from urllib.parse import parse_qs

        query = parse_qs(environ.get("QUERY_STRING", ""))
        baseline: Optional[Dict[str, str]] = None
        if "baseline" in query:
            baseline = {}
            for assignment in query["baseline"]:
                key, sep, value = assignment.partition("=")
                if not sep or not key:
                    raise ComparisonError(
                        f"baseline expects KEY=VALUE, got {assignment!r}"
                    )
                baseline[key.strip()] = value.strip()
        metrics = None
        if "metrics" in query:
            metrics = [
                m.strip() for m in ",".join(query["metrics"]).split(",") if m.strip()
            ]
        align = None
        if "align" in query:
            align = [
                k.strip() for k in ",".join(query["align"]).split(",") if k.strip()
            ]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", IncompleteSweepWarning)
            table = compare(results, baseline=baseline, metrics=metrics, align=align)
        incomplete = any(
            issubclass(w.category, IncompleteSweepWarning) for w in caught
        )
        return table, incomplete


def make_app(service: SweepService) -> ServiceApp:
    """The conventional WSGI factory (``make_app(service)`` → callable)."""
    return ServiceApp(service)
