"""Stdlib WSGI hosting for the sweep service: threads, no dependencies.

``wsgiref.simple_server`` is single-threaded by default, which would
let one slow poll block every other client *and* the submit path. The
classic fix is the :class:`socketserver.ThreadingMixIn` — each request
gets a daemon thread, which is plenty for a results API whose handlers
only take a lock and render JSON (all heavy work happens on the
service's scheduler thread, never in a request handler).
"""

from __future__ import annotations

import socketserver
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server


class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
    """A threaded WSGI server: one daemon thread per request."""

    daemon_threads = True
    allow_reuse_address = True


class QuietHandler(WSGIRequestHandler):
    """A request handler that skips per-request stderr logging."""

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass


def serve(app, host: str = "127.0.0.1", port: int = 8008, quiet: bool = False):
    """Bind a :class:`ThreadingWSGIServer` for ``app`` (not yet serving).

    Returns the server; callers own ``serve_forever()`` /
    ``shutdown()`` / ``server_close()``. Port 0 binds an ephemeral port
    (read it back from ``server.server_address``) — the tests and the
    CI smoke job use that to avoid collisions.
    """
    return make_server(
        host,
        port,
        app,
        server_class=ThreadingWSGIServer,
        handler_class=QuietHandler if quiet else WSGIRequestHandler,
    )
