"""The sweep service's job plane: submissions, the queue, the scheduler.

A *job* is one submitted study — a scenario plus a parameter grid,
exactly the shape :class:`repro.results.Study` builds — together with
its per-job execution policy (``on_error``, ``run_timeout``, an optional
fault plan). Jobs queue in submission order and a single scheduler
thread executes them one batch at a time, sharding each job's run grid
across one persistent supervised
:class:`~repro.experiments.runner.SweepRunner` pool that feeds a single
shared :class:`~repro.results.store.ResultStore`:

* the pool survives across jobs (and worker crashes — PR 8's
  supervision), so the service pays process spin-up once;
* every completed run checkpoints into the shared store under its
  content key, so a second job submitting an overlapping grid gets pure
  cache hits for the overlap — many clients share one warm store
  instead of re-simulating;
* a job whose policy is ``fail`` aborts *that job* on the first
  failure; the queue keeps draining. Typed
  :class:`~repro.experiments.runner.RunFailure` records surface in the
  job's status document, mirroring the CLI's exit-code ladder.

Everything here is HTTP-free — :mod:`repro.service.app` is the thin
WSGI layer over this object.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.experiments.faults import FaultPlan
from repro.experiments.runner import (
    ErrorPolicy,
    InjectedSweepFault,
    RunTimeoutError,
    SweepRunner,
    WorkerCrashError,
)
from repro.results import ResultSet, Study
from repro.results.store import open_store
from repro.telemetry.events import event_to_json_dict
from repro.telemetry.hub import TelemetryHub

#: Schema tags of the service's JSON documents.
JOB_SCHEMA = "repro.service/job/1"
STATUS_SCHEMA = "repro.service/status/1"

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
)


class JobError(ValueError):
    """A study submission is invalid (the HTTP layer maps this to 400)."""


def _require(payload: Mapping, key: str, kind, kindname: str):
    value = payload.get(key)
    if not isinstance(value, kind):
        raise JobError(f"submission field {key!r}: expected {kindname}")
    return value


def build_study(payload: Mapping) -> Study:
    """A :class:`~repro.results.Study` from a submission document.

    The document mirrors the builder verbs::

        {"experiment": "meshgen",
         "grid": {"nodes": [16, 25], "algorithm": ["none", "ezflow"]},
         "set": {"topology": "mesh"},          # pin single values
         "seeds": 3, "base_seed": 7,           # aligned seed axis, or
         "replicates": 2,                      # CLI-style replicates
         "no_default_axes": true}              # skip declared sweep axes

    ``grid`` values may be lists (axes) or scalars (pins); all values
    may be typed or CLI strings — they validate against the scenario's
    declared schema, and an unknown axis or unparsable value raises the
    same typed errors the CLI reports as exit 2.
    """
    if not isinstance(payload, Mapping):
        raise JobError("submission must be a JSON object")
    experiment = _require(payload, "experiment", str, "a scenario id string")
    study = Study(experiment)
    grid = payload.get("grid", {})
    if not isinstance(grid, Mapping):
        raise JobError("submission field 'grid': expected an object of axes")
    for name, value in grid.items():
        study.grid(**{name: value})
    fixed = payload.get("set", {})
    if not isinstance(fixed, Mapping):
        raise JobError("submission field 'set': expected an object of values")
    if fixed:
        study.set(**fixed)
    if payload.get("no_default_axes"):
        study.no_default_axes()
    seeds = payload.get("seeds")
    replicates = payload.get("replicates")
    if seeds is not None and replicates is not None:
        raise JobError("submission fields 'seeds' and 'replicates' are exclusive")
    base_seed = payload.get("base_seed")
    if base_seed is not None and not isinstance(base_seed, int):
        raise JobError("submission field 'base_seed': expected an integer")
    if seeds is not None:
        if not isinstance(seeds, (int, list)) or isinstance(seeds, bool):
            raise JobError(
                "submission field 'seeds': expected a count or a list of seeds"
            )
        study.seeds(seeds, base=base_seed)
    elif replicates is not None:
        if not isinstance(replicates, int) or isinstance(replicates, bool):
            raise JobError("submission field 'replicates': expected an integer")
        study.replicates(replicates, base_seed=base_seed)
    return study


class Job:
    """One submitted study and everything known about its execution.

    Mutable state is guarded by the owning service's lock; readers get
    consistent snapshots through :meth:`to_json_dict`. ``exit_code``
    mirrors the CLI's exit ladder so a job status reads like a ``sweep``
    invocation: 0 done, 1 aborted by a timeout/crash/exception under
    ``fail``, 3 the legacy injected kill, 4 completed under ``continue``
    with failures, 130 cancelled before it ran.
    """

    def __init__(
        self,
        job_id: str,
        study: Study,
        requests,
        policy: ErrorPolicy,
        run_timeout: Optional[float],
        faults: Optional[FaultPlan],
        fault_spec: Optional[str],
        on_error_spec: str,
    ):
        self.id = job_id
        self.study = study
        self.requests = list(requests)
        self.policy = policy
        self.run_timeout = run_timeout
        self.faults = faults
        self.fault_spec = fault_spec
        self.on_error_spec = on_error_spec
        self.state = QUEUED
        self.error: Optional[str] = None
        self.exit_code: Optional[int] = None
        self.results: Optional[ResultSet] = None
        self.failures: List[object] = []
        self.run_states: Dict[str, str] = {
            request.run_id: "pending" for request in self.requests
        }
        self.cached = 0
        self.executed = 0
        #: Telemetry event log: (event id, kind, serialised JSON). Event
        #: ids are monotonic per job and are the SSE ``id:`` values, so
        #: ``Last-Event-ID`` resume replays exactly the unseen suffix.
        self.events: List[Tuple[int, str, str]] = []
        self._event_seq = 0

    def add_event(self, event) -> None:
        """Append a telemetry event (caller holds the service lock)."""
        self._event_seq += 1
        self.events.append(
            (
                self._event_seq,
                event.kind,
                json.dumps(event_to_json_dict(event), sort_keys=True),
            )
        )

    # -- scheduler-side transitions (caller holds the service lock) ----

    def record(self, record) -> None:
        """Fold one completed run (request order) into the progress view."""
        if record.failure is not None:
            self.run_states[record.request.run_id] = "failed"
            self.executed += 1
        elif record.cached:
            self.run_states[record.request.run_id] = "cached"
            self.cached += 1
        else:
            self.run_states[record.request.run_id] = "done"
            self.executed += 1

    def finish(self, results: ResultSet) -> None:
        """Mark done; exit 4 when the set carries failures, else 0."""
        self.results = results
        self.failures = list(results.failures)
        self.state = DONE
        self.exit_code = 4 if results.failures else 0

    def fail(self, message: str, exit_code: int = 1) -> None:
        """Mark failed with the batch-aborting error and its exit code."""
        self.error = message
        self.state = FAILED
        self.exit_code = exit_code

    def cancel(self) -> None:
        """Mark cancelled before running (the interrupted-sweep code)."""
        self.state = CANCELLED
        self.exit_code = 130

    # -- views ---------------------------------------------------------

    @property
    def completed(self) -> int:
        return self.cached + self.executed

    @property
    def failed_runs(self) -> int:
        return sum(1 for state in self.run_states.values() if state == "failed")

    def to_json_dict(self, runs: bool = True) -> Dict[str, object]:
        """The job status document (``runs=False`` for list summaries)."""
        doc: Dict[str, object] = {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "state": self.state,
            "experiment": self.study.spec.id,
            "total_runs": len(self.requests),
            "completed": self.completed,
            "cached": self.cached,
            "executed": self.executed,
            "failed_runs": self.failed_runs,
            "exit_code": self.exit_code,
            "error": self.error,
            "on_error": self.on_error_spec,
            "run_timeout": self.run_timeout,
            "fault_plan": self.fault_spec,
            "failures": [failure.to_json_dict() for failure in self.failures],
        }
        if runs:
            doc["runs"] = [
                {"run_id": run_id, "state": state}
                for run_id, state in self.run_states.items()
            ]
        return doc


class SweepService:
    """The queue + scheduler core of the long-running sweep service.

    One instance owns one persistent :class:`SweepRunner` pool and one
    shared result store (named by url — ``sqlite:runs.sqlite`` is the
    recommended backend for pooling many studies; the store instance is
    opened *inside* the scheduler thread, respecting sqlite's thread
    affinity, and closed when the scheduler drains). ``submit`` is
    thread-safe and cheap: it validates the submission into a request
    list and enqueues; all execution happens on the scheduler thread.

    ``default_on_error``/``default_run_timeout`` apply to jobs that do
    not set their own (the CLI's ``--on-error``/``--run-timeout``).
    ``mp_context`` defaults to ``spawn``: the scheduler forks workers
    from a thread while HTTP threads run, and spawn sidesteps the
    fork-from-multithreaded-process hazard for the price of a one-time
    pool spin-up.
    """

    def __init__(
        self,
        store_url: str,
        jobs: int = 1,
        default_on_error: str = "fail",
        default_run_timeout: Optional[float] = None,
        mp_context: Optional[str] = "spawn",
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if default_run_timeout is not None and default_run_timeout <= 0:
            raise ValueError("run_timeout must be positive")
        ErrorPolicy.parse(default_on_error)  # validate eagerly
        self.store_url = store_url
        self.jobs = jobs
        self.default_on_error = default_on_error
        self.default_run_timeout = default_run_timeout
        self._runner = SweepRunner(jobs=jobs, mp_context=mp_context)
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        # Signalled whenever any job gains telemetry events or reaches a
        # terminal state; SSE streams block on it between frames.
        self._events = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: List[str] = []
        self._current: Optional[str] = None
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self._counter = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "SweepService":
        """Start the scheduler thread (idempotent)."""
        with self._lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._scheduler, name="sweep-scheduler", daemon=True
                )
                self._thread.start()
        return self

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain and stop: finish the running job, cancel the queue.

        The running job's completed runs are already checkpointed in the
        shared store, so even jobs cancelled here lose no executed work —
        resubmitting them against the same store resumes as cache hits.
        Idempotent; closes the worker pool last.
        """
        with self._lock:
            self._stopping = True
            self._work.notify_all()
            self._events.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._runner.close()

    # -- submission & queries (any thread) -----------------------------

    def submit(self, payload: Mapping) -> Job:
        """Validate a submission document and enqueue it as a job.

        Raises :class:`JobError` (or the catalogue's typed parameter
        errors) without touching the queue when the document is invalid;
        a returned job is already visible to status endpoints.
        """
        study = build_study(payload)
        on_error = payload.get("on_error", self.default_on_error)
        if not isinstance(on_error, str):
            raise JobError("submission field 'on_error': expected a string")
        policy = ErrorPolicy.parse(on_error)
        run_timeout = payload.get("run_timeout", self.default_run_timeout)
        if run_timeout is not None:
            if isinstance(run_timeout, bool) or not isinstance(
                run_timeout, (int, float)
            ):
                raise JobError("submission field 'run_timeout': expected a number")
            run_timeout = float(run_timeout)
            if run_timeout <= 0:
                raise JobError("submission field 'run_timeout': must be positive")
        fault_spec = payload.get("fault_plan")
        faults = None
        if fault_spec is not None:
            if not isinstance(fault_spec, str):
                raise JobError("submission field 'fault_plan': expected a string")
            faults = FaultPlan.parse(fault_spec)
        requests = study.requests()  # validates every axis value
        with self._lock:
            if self._stopping:
                raise JobError("service is shutting down; not accepting jobs")
            self._counter += 1
            job = Job(
                f"job-{self._counter:04d}",
                study,
                requests,
                policy,
                run_timeout,
                faults,
                fault_spec,
                on_error,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._queue.append(job.id)
            self._work.notify()
        return job

    def job(self, job_id: str) -> Optional[Job]:
        """Look up one job by id (None when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs_list(self) -> List[Job]:
        """Every job ever submitted, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/finished jobs are not touched."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != QUEUED:
                return False
            job.cancel()
            self._queue.remove(job_id)
            self._events.notify_all()
            return True

    def status_json_dict(self) -> Dict[str, object]:
        """The service status document (the ``/status`` endpoint)."""
        with self._lock:
            # Zero-filled so every lifecycle state is always present —
            # dashboards and scripts can index without existence checks.
            by_state: Dict[str, int] = {
                state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
            }
            failures = 0
            executed = 0
            cached = 0
            for job in self._jobs.values():
                by_state[job.state] += 1
                failures += len(job.failures)
                executed += job.executed
                cached += job.cached
            return {
                "schema": STATUS_SCHEMA,
                "store": self.store_url,
                "workers": self.jobs,
                "accepting": not self._stopping,
                "uptime_s": round(time.monotonic() - self._started, 3),
                "queue_depth": len(self._queue),
                "running": self._current,
                "jobs": by_state,
                "jobs_total": len(self._jobs),
                "failure_count": failures,
                "runs_executed": executed,
                "runs_cached": cached,
            }

    def wait_events(
        self, job: Job, after_id: int, timeout: Optional[float] = None
    ) -> Tuple[List[Tuple[int, str, str]], bool]:
        """Events of ``job`` with id > ``after_id``, blocking when empty.

        Returns ``(events, terminal)`` where ``terminal`` means the job
        has reached a final state (done/failed/cancelled) — with no new
        events, that is the SSE stream's clean-close signal. Blocks at
        most ``timeout`` seconds (one wait) when nothing is pending yet.
        """
        with self._lock:
            events = [entry for entry in job.events if entry[0] > after_id]
            terminal = job.state in (DONE, FAILED, CANCELLED)
            if events or terminal:
                return events, terminal
            self._events.wait(timeout=timeout)
            events = [entry for entry in job.events if entry[0] > after_id]
            terminal = job.state in (DONE, FAILED, CANCELLED)
            return events, terminal

    # -- the scheduler thread ------------------------------------------

    def _next_job(self) -> Optional[Job]:
        """Block until a job is queued or shutdown begins; pop it."""
        with self._lock:
            while True:
                if self._queue:
                    job = self._jobs[self._queue.pop(0)]
                    if self._stopping:
                        job.cancel()
                        self._events.notify_all()
                        continue
                    job.state = RUNNING
                    self._current = job.id
                    return job
                if self._stopping:
                    return None
                self._work.wait(timeout=0.5)

    def _run_job(self, job: Job, store) -> None:
        def on_record(record) -> None:
            with self._lock:
                job.record(record)

        # Per-job hub: the runner streams run events through it and the
        # listener folds them into the job's event log, waking any SSE
        # streams blocked on the events condition.
        hub = TelemetryHub()

        def on_event(event) -> None:
            with self._lock:
                job.add_event(event)
                self._events.notify_all()

        hub.subscribe(on_event)
        try:
            records = self._runner.run(
                job.requests,
                on_record=on_record,
                store=store,
                policy=job.policy,
                run_timeout=job.run_timeout,
                faults=job.faults,
                telemetry=hub,
            )
        except InjectedSweepFault as error:
            with self._lock:
                job.fail(str(error), exit_code=3)
                self._events.notify_all()
        except (RunTimeoutError, WorkerCrashError) as error:
            with self._lock:
                job.fail(str(error), exit_code=1)
                self._events.notify_all()
        except Exception as error:  # a run raised under the fail policy
            with self._lock:
                job.fail(f"{type(error).__name__}: {error}", exit_code=1)
                self._events.notify_all()
        else:
            with self._lock:
                job.finish(ResultSet.from_records(records))
                self._events.notify_all()

    def _scheduler(self) -> None:
        """The scheduler loop: one shared store, one job at a time.

        A job failing — whatever the cause, chaos plans included — only
        fails that job; the loop always advances to the next one, so a
        poisoned submission can never wedge the queue.
        """
        store = open_store(self.store_url)
        try:
            while True:
                job = self._next_job()
                if job is None:
                    return
                try:
                    self._run_job(job, store)
                finally:
                    with self._lock:
                        self._current = None
        finally:
            store.close()
