"""Discrete-event simulation engine.

The engine is deliberately small: a monotonically increasing integer clock
(microsecond ticks), a binary-heap event queue, named deterministic RNG
streams, and a trace recorder. Everything above it (PHY, MAC, traffic,
EZ-flow) is built from scheduled callbacks.
"""

from repro.sim.engine import Engine, Event, SimTimeError
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder, TimeSeries
from repro.sim.units import (
    US_PER_S,
    US_PER_MS,
    seconds,
    milliseconds,
    microseconds,
    to_seconds,
)

__all__ = [
    "Engine",
    "Event",
    "SimTimeError",
    "RngRegistry",
    "TraceRecorder",
    "TimeSeries",
    "US_PER_S",
    "US_PER_MS",
    "seconds",
    "milliseconds",
    "microseconds",
    "to_seconds",
]
