"""Discrete-event simulation engine (and the engine-tier registry).

The engine is deliberately small: a monotonically increasing integer clock
(microsecond ticks), a binary-heap event queue, named deterministic RNG
streams, and a trace recorder. Everything above it (PHY, MAC, traffic,
EZ-flow) is built from scheduled callbacks.

Scenarios do not have to execute on it, though: :mod:`repro.sim.tiers`
is the registry of *engine tiers* — named back ends (``event``, the
per-frame core; ``slotted``, the slot-synchronous fast tier in
:mod:`repro.sim.slotted`) that consume a scenario IR and produce the
same result surface. Harnesses dispatch on the ``fidelity`` axis
through :func:`get_tier`.
"""

from repro.sim.engine import Engine, Event, SimTimeError
from repro.sim.rng import RngRegistry
from repro.sim.tiers import (
    EngineTier,
    UnknownTierError,
    get_tier,
    register_tier,
    register_tier_entry,
    tier_names,
)
from repro.sim.tracing import TraceRecorder, TimeSeries
from repro.sim.units import (
    US_PER_S,
    US_PER_MS,
    seconds,
    milliseconds,
    microseconds,
    to_seconds,
)

__all__ = [
    "Engine",
    "EngineTier",
    "Event",
    "SimTimeError",
    "RngRegistry",
    "UnknownTierError",
    "get_tier",
    "register_tier",
    "register_tier_entry",
    "tier_names",
    "TraceRecorder",
    "TimeSeries",
    "US_PER_S",
    "US_PER_MS",
    "seconds",
    "milliseconds",
    "microseconds",
    "to_seconds",
]
