"""Event-driven simulation core.

``Engine`` owns the clock and a heap of pending events. Events are plain
callbacks with optional arguments; each carries a sequence number so that
events scheduled for the same tick fire in scheduling order (deterministic
replay). Events may be cancelled, which is how the MAC implements backoff
suspension and timer resets.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimTimeError(RuntimeError):
    """Raised when an event is scheduled in the past."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Engine.schedule` and can be cancelled.
    A cancelled event stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state} fn={self.fn!r}>"


class Engine:
    """Discrete-event engine with an integer microsecond clock."""

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._heap: List[Event] = []
        self._running = False
        self._processed = 0

    @property
    def now(self) -> int:
        """Current simulation time in microsecond ticks."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative. Returns the :class:`Event`, which
        can be cancelled up until it fires.
        """
        if delay < 0:
            raise SimTimeError(f"cannot schedule {delay} ticks in the past")
        event = Event(self._now + int(delay), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute tick ``time`` (>= now)."""
        return self.schedule(int(time) - self._now, fn, *args)

    def run(self, until: Optional[int] = None) -> int:
        """Run events in order until the heap drains or ``until`` is passed.

        Events scheduled exactly at ``until`` are executed. Returns the
        clock value at exit.
        """
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if event.time < self._now:  # pragma: no cover - heap invariant
                    raise SimTimeError("event heap yielded a past event")
                self._now = event.time
                self._processed += 1
                event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.fn(*event.args)
            return True
        return False
