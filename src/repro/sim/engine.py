"""Event-driven simulation core.

``Engine`` owns the clock and a heap of pending events. Events are plain
callbacks with optional arguments; each carries a sequence number so that
events scheduled for the same tick fire in scheduling order (deterministic
replay). Events may be cancelled, which is how the MAC implements backoff
suspension and timer resets.

The heap stores ``(time, seq, event)`` tuples rather than the events
themselves: tuple comparison happens entirely in C (seq is unique, so
the event object is never compared), which roughly halves dispatch cost
versus a ``__lt__``-ordered object heap — this loop carries the whole
MAC/PHY simulation.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple


class SimTimeError(RuntimeError):
    """Raised when an event is scheduled in the past."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Engine.schedule` and can be cancelled.
    A cancelled event stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state} fn={self.fn!r}>"


class Engine:
    """Discrete-event engine with an integer microsecond clock."""

    def __init__(self):
        #: Current simulation time in microsecond ticks (read-only by
        #: convention; a plain attribute because the property descriptor
        #: showed up in dispatch profiles).
        self.now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, Event]] = []
        self._running = False
        self._processed = 0

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative. Returns the :class:`Event`, which
        can be cancelled up until it fires.
        """
        if delay < 0:
            raise SimTimeError(f"cannot schedule {delay} ticks in the past")
        time = self.now + int(delay)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args)
        heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute tick ``time`` (>= now)."""
        return self.schedule(int(time) - self.now, fn, *args)

    def post(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget callback (no handle, not cancellable).

        Same ordering semantics as :meth:`schedule`, but skips the
        :class:`Event` allocation and the cancellation check at dispatch.
        Most simulator events (frame completions, source ticks, ACK
        replies, samplers) are never cancelled; posting them shaves a
        measurable slice off the dispatch loop.
        """
        if delay < 0:
            raise SimTimeError(f"cannot schedule {delay} ticks in the past")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self.now + int(delay), seq, fn, args))

    def run(self, until: Optional[int] = None) -> int:
        """Run events in order until the heap drains or ``until`` is passed.

        Events scheduled exactly at ``until`` are executed. Returns the
        clock value at exit.
        """
        heap = self._heap
        self._running = True
        # Dispatch allocates heavily (events, frames, tuples) but builds
        # almost no reference cycles; cyclic-GC passes during the loop
        # are pure overhead, so they are deferred until the run returns.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        processed = self._processed
        try:
            if until is None:
                while heap:
                    entry = heappop(heap)
                    if len(entry) == 4:
                        self.now = entry[0]
                        processed += 1
                        entry[2](*entry[3])
                        continue
                    event = entry[2]
                    if event.cancelled:
                        continue
                    self.now = entry[0]
                    processed += 1
                    event.fn(*event.args)
            else:
                while heap:
                    time = heap[0][0]
                    if time > until:
                        break
                    entry = heappop(heap)
                    if len(entry) == 4:
                        self.now = time
                        processed += 1
                        entry[2](*entry[3])
                        continue
                    event = entry[2]
                    if event.cancelled:
                        continue
                    self.now = time
                    processed += 1
                    event.fn(*event.args)
        finally:
            self._running = False
            self._processed = processed
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Execute exactly one pending (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            entry = heappop(self._heap)
            if len(entry) == 4:
                self.now = entry[0]
                self._processed += 1
                entry[2](*entry[3])
                return True
            event = entry[2]
            if event.cancelled:
                continue
            self.now = entry[0]
            self._processed += 1
            event.fn(*event.args)
            return True
        return False
