"""Event-driven simulation core.

``Engine`` owns the clock and a heap of pending events. Events are plain
callbacks with optional arguments; each carries a sequence number so that
events scheduled for the same tick fire in scheduling order (deterministic
replay). Events may be cancelled, which is how the MAC implements backoff
suspension and timer resets.

The heap stores ``(time, seq, event)`` tuples rather than the events
themselves: tuple comparison happens entirely in C (seq is unique, so
the event object is never compared), which roughly halves dispatch cost
versus a ``__lt__``-ordered object heap — this loop carries the whole
MAC/PHY simulation.

Three heap entry flavours share the ``(time, seq, ...)`` prefix and are
told apart by length at dispatch:

* ``(time, seq, Event)`` — cancellable (``schedule``);
* ``(time, seq, fn, args)`` — fire-and-forget (``post``), the hot path;
* ``(time, seq, fn, args, interval)`` — self-rescheduling periodic
  callbacks (``post_periodic``) for samplers.

Cancelled events are counted as they accumulate; once they are both
numerous and the majority of the heap, the heap is compacted in place
(dead entries filtered out, then re-heapified). Filtering preserves the
exact ``(time, seq)`` order of the survivors, so dispatch order — and
therefore every RNG draw — is untouched.
"""

from __future__ import annotations

import gc
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple


class SimTimeError(RuntimeError):
    """Raised when an event is scheduled in the past."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Engine.schedule` and can be cancelled.
    A cancelled event stays in the heap but is skipped when popped (or
    removed wholesale when the engine compacts the heap).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "engine")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        engine: "Optional[Engine]" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent.

        Cancelling after the event fired (or was compacted away) is a
        harmless no-op — the engine back-reference is cleared when the
        event leaves the heap, so the dead-event accounting stays exact.
        """
        if not self.cancelled:
            self.cancelled = True
            engine = self.engine
            if engine is not None:
                self.engine = None
                engine._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state} fn={self.fn!r}>"


class Engine:
    """Discrete-event engine with an integer microsecond clock."""

    #: Heap compaction fires when at least this many cancelled events
    #: have accumulated AND they make up at least half the heap. The
    #: floor keeps tiny heaps (and cancel-then-immediately-pop churn)
    #: from paying rebuild cost for no gain.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self):
        #: Current simulation time in microsecond ticks (read-only by
        #: convention; a plain attribute because the property descriptor
        #: showed up in dispatch profiles).
        self.now = 0
        self._seq = 0
        self._heap: List[Tuple] = []
        self._running = False
        self._processed = 0
        self._cancelled = 0

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of heap entries, cancelled ones included.

        This is the heap's physical size (memory pressure); use
        :attr:`live_events` for the number of callbacks that will
        actually fire.
        """
        return len(self._heap)

    @property
    def live_events(self) -> int:
        """Number of pending events that are not cancelled."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_events(self) -> int:
        """Number of cancelled events still occupying the heap."""
        return self._cancelled

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative. Returns the :class:`Event`, which
        can be cancelled up until it fires.
        """
        if delay < 0:
            raise SimTimeError(f"cannot schedule {delay} ticks in the past")
        time = self.now + int(delay)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute tick ``time`` (>= now)."""
        return self.schedule(int(time) - self.now, fn, *args)

    def post(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget callback (no handle, not cancellable).

        Same ordering semantics as :meth:`schedule`, but skips the
        :class:`Event` allocation and the cancellation check at dispatch.
        Most simulator events (frame completions, source ticks, ACK
        replies, samplers) are never cancelled; posting them shaves a
        measurable slice off the dispatch loop.
        """
        if delay < 0:
            raise SimTimeError(f"cannot schedule {delay} ticks in the past")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self.now + int(delay), seq, fn, args))

    def post_periodic(
        self, delay: int, interval: int, fn: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``fn(*args)`` every ``interval`` ticks, forever.

        The cheap path for samplers: after each firing the engine
        re-pushes the same entry with a fresh sequence number, exactly
        as if the callback had re-posted itself as its last statement —
        so ``(time, seq)`` dispatch order (and with it every RNG draw)
        matches the self-reposting pattern it replaces, without paying a
        Python-level ``post`` call per period. Not cancellable; the
        callback simply stops being reached when ``run(until=...)``
        passes its horizon.
        """
        if delay < 0:
            raise SimTimeError(f"cannot schedule {delay} ticks in the past")
        interval = int(interval)
        if interval <= 0:
            raise ValueError("interval must be positive")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self.now + int(delay), seq, fn, args, interval))

    def _note_cancelled(self) -> None:
        """One live heap entry became dead; compact when dead dominates."""
        self._cancelled = cancelled = self._cancelled + 1
        heap = self._heap
        if cancelled >= self.COMPACT_MIN_CANCELLED and cancelled * 2 >= len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (slice assignment) so the ``heap`` local that ``run``
        holds keeps pointing at the live structure. Survivor order is
        re-established by ``heapify`` over the same ``(time, seq)`` keys
        the original pushes used, so dispatch order is unchanged.
        """
        heap = self._heap
        heap[:] = [
            entry for entry in heap if len(entry) != 3 or not entry[2].cancelled
        ]
        heapify(heap)
        self._cancelled = 0

    def run(self, until: Optional[int] = None) -> int:
        """Run events in order until the heap drains or ``until`` is passed.

        Events scheduled exactly at ``until`` are executed. Returns the
        clock value at exit.
        """
        heap = self._heap
        self._running = True
        # Dispatch allocates heavily (events, frames, tuples) but builds
        # almost no reference cycles; cyclic-GC passes during the loop
        # are pure overhead, so they are deferred until the run returns.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        processed = self._processed
        try:
            if until is None:
                while heap:
                    entry = heappop(heap)
                    size = len(entry)
                    if size == 4:
                        self.now = entry[0]
                        processed += 1
                        entry[2](*entry[3])
                        continue
                    if size == 3:
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event.engine = None
                        self.now = entry[0]
                        processed += 1
                        event.fn(*event.args)
                        continue
                    # size == 5: periodic — fire and self-reschedule.
                    self.now = entry[0]
                    processed += 1
                    entry[2](*entry[3])
                    seq = self._seq
                    self._seq = seq + 1
                    heappush(
                        heap,
                        (entry[0] + entry[4], seq, entry[2], entry[3], entry[4]),
                    )
            else:
                while heap:
                    time = heap[0][0]
                    if time > until:
                        break
                    entry = heappop(heap)
                    size = len(entry)
                    if size == 4:
                        self.now = time
                        processed += 1
                        entry[2](*entry[3])
                        continue
                    if size == 3:
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event.engine = None
                        self.now = time
                        processed += 1
                        event.fn(*event.args)
                        continue
                    # size == 5: periodic — fire and self-reschedule.
                    self.now = time
                    processed += 1
                    entry[2](*entry[3])
                    seq = self._seq
                    self._seq = seq + 1
                    heappush(
                        heap,
                        (time + entry[4], seq, entry[2], entry[3], entry[4]),
                    )
        finally:
            self._running = False
            self._processed = processed
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_observed(self, until: int, interval: int, observer) -> int:
        """``run(until=...)`` in ``interval``-sized chunks, calling ``observer``.

        ``observer(now, processed)`` fires after every chunk boundary
        (including the final one at ``until``). Chunking is dispatch-
        transparent: heap entries carry their own times, nothing is
        scheduled between chunks, and each chunk executes events exactly
        at its boundary — so the dispatched sequence is bit-identical to
        a single ``run(until=until)`` call.
        """
        interval = max(1, interval)
        while self.now < until:
            self.run(until=min(until, self.now + interval))
            observer(self.now, self._processed)
        return self.now

    def step(self) -> bool:
        """Execute exactly one pending (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            entry = heappop(self._heap)
            size = len(entry)
            if size == 4:
                self.now = entry[0]
                self._processed += 1
                entry[2](*entry[3])
                return True
            if size == 5:
                self.now = entry[0]
                self._processed += 1
                entry[2](*entry[3])
                seq = self._seq
                self._seq = seq + 1
                heappush(
                    self._heap,
                    (entry[0] + entry[4], seq, entry[2], entry[3], entry[4]),
                )
                return True
            event = entry[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.engine = None
            self.now = entry[0]
            self._processed += 1
            event.fn(*event.args)
            return True
        return False
