"""Named deterministic random streams.

Each consumer (a node's backoff, a link's erasure process, a traffic
source) draws from its own ``random.Random`` stream derived from a master
seed and a stable name. Separate streams keep components statistically
independent and make runs reproducible even when modules are added or
reordered.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngRegistry:
    """Factory of per-name deterministic ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed mixes the master seed with a CRC of the name, so
        the same (master_seed, name) pair always yields the same sequence.
        """
        if name not in self._streams:
            mixed = (self.master_seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (2**63)
            self._streams[name] = random.Random(mixed)
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. for a replicate run)."""
        return RngRegistry(self.master_seed * 1_000_003 + salt)
