"""Slot-synchronous fast tier: the paper's discrete-time model on graphs.

The event core resolves every frame (backoff slots, SIFS, ACKs); this
module resolves one *contention phase per slot* — the abstraction the
paper itself uses to analyse EZ-flow (Section 6) and that
:mod:`repro.analysis` implements for K-hop chains. Here the same three
pieces are generalised from chains to arbitrary connectivity maps:

* :func:`sample_transmitters` — the winner/activation process. Among
  the backlogged contenders a winner is drawn with probability
  proportional to ``1/cw``; the winner's reception neighbours
  carrier-sense it and defer; everybody still contending is hidden from
  all transmitters so far and recurses. On a chain with
  ``defer_of(w) = {w-1, w+1}`` this consumes the *exact* RNG draw
  sequence of :func:`repro.analysis.activation.sample_activation`
  (which now delegates here).
* contention-window rules — per-slot generalisations of the adaptation
  laws the event tier implements as controllers:
  :class:`FixedCw` (standard 802.11 / static penalty assignments),
  :class:`EZFlowCw` (double above ``b_max``, halve below ``b_min`` on
  the successor backlog, Eq. 2), :class:`DiffQCw` (window class from
  the differential backlog).
* :class:`SlottedMesh` — the per-node random walk: workload injection,
  one contention phase, link outcomes (a transmission ``u -> v``
  succeeds iff ``v`` decodes ``u`` and no *other* transmitter is
  decodable at ``v`` — hidden 2-hop interferers are captured through,
  matching :mod:`repro.phy`), buffer recursion ``b += z_in - z_out``,
  then the cw rule.

The module is dependency-free by design (duck-typed connectivity,
injected RNG streams, loss models as a callable): it is the execution
core behind the ``fidelity=slotted`` engine tier
(:mod:`repro.experiments.tiers`), while scenario wiring — topology
generation, routes, loss/churn schedules, metrics — stays in the
harness layers. Deliberate approximations versus the event tier are
documented on :class:`SlottedMesh`.
"""

from __future__ import annotations

from bisect import bisect
from collections import deque
from dataclasses import dataclass
from itertools import accumulate
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

NodeId = Hashable

#: Event-tier DCF defaults (repro.mac.dcf.DcfConfig) mirrored here so
#: the core stays import-free.
DEFAULT_CWMIN = 16
DEFAULT_MAXCW = 32768


def sample_transmitters(
    contenders,
    cw,
    defer_of: Callable[[NodeId], object],
    rng,
) -> List[NodeId]:
    """Draw one slot's transmitter set by running the winner process.

    ``contenders`` are the backlogged nodes; ``cw`` maps (or indexes)
    node -> contention window, or ``None`` to assert every window is
    equal (and a power of two); ``defer_of(winner)`` is the container
    of nodes that carrier-sense the winner and leave the contender set
    (its reception neighbours). Winners are appended in selection
    order. The draw sequence — one uniform draw over the sorted
    remaining contenders per winner — replicates ``rng.choices(ordered,
    weights)`` bit for bit (same single ``rng.random()`` per winner,
    same accumulate/bisect arithmetic), so pinned seeds produce
    identical transmitter sets through either entry point; the inline
    spelling just skips ``choices``'s per-call setup, which dominates
    at mesh-tier call rates.

    The ``cw=None`` fast path is *also* bit-identical, not just
    distribution-identical: with a common weight ``w = 2**-k`` the
    cumulative grid ``(i+1)*w`` and the dart ``random()*(n*w)`` are
    both exact scalings by ``w`` (power-of-two multiplication never
    rounds), so ``bisect`` over the grid reduces to
    ``min(floor(random()*n), n-1)`` exactly.
    """
    ordered = sorted(contenders)
    transmitters: List[NodeId] = []
    if cw is None:
        while ordered:
            n = len(ordered)
            if n == 1:
                rng.random()  # consume the draw the weighted pick would
                transmitters.append(ordered[0])
                break
            index = int(rng.random() * n)
            winner = ordered[index if index < n else n - 1]
            transmitters.append(winner)
            deferring = defer_of(winner)
            # Filtering keeps the list sorted — no re-sort per winner.
            ordered = [
                other
                for other in ordered
                if other != winner and other not in deferring
            ]
        return transmitters
    while ordered:
        if len(ordered) == 1:
            rng.random()  # consume the draw the weighted pick would
            transmitters.append(ordered[0])
            break
        cum = list(accumulate([1.0 / cw[node] for node in ordered]))
        winner = ordered[
            bisect(cum, rng.random() * (cum[-1] + 0.0), 0, len(cum) - 1)
        ]
        transmitters.append(winner)
        deferring = defer_of(winner)
        # Filtering keeps the list sorted — no re-sort per winner.
        ordered = [
            other for other in ordered if other != winner and other not in deferring
        ]
    return transmitters


# -- contention-window rules ----------------------------------------------


class FixedCw:
    """Windows never adapt (standard 802.11, and the static penalty
    strategy once the initial per-node assignment encodes it)."""

    #: Static rules let the mesh skip the per-slot backlog snapshot.
    adapts = False

    def update(
        self,
        cw: Dict[NodeId, int],
        backlog: Dict[NodeId, float],
        successors: Dict[NodeId, Tuple[NodeId, ...]],
    ) -> None:
        """No-op."""


class EZFlowCw:
    """Eq. (2) on graphs: react to the *successor's* aggregate backlog.

    A node with several next hops (multiple flows, multiple gateways)
    reacts to its most congested successor — doubling wins over
    halving, mirroring how the event-tier controller throttles a node
    whenever any downstream queue builds.
    """

    def __init__(
        self,
        b_min: float = 0.05,
        b_max: float = 20.0,
        mincw: int = DEFAULT_CWMIN,
        maxcw: int = DEFAULT_MAXCW,
    ):
        if not 0 <= b_min < b_max:
            raise ValueError("need 0 <= b_min < b_max")
        self.b_min = b_min
        self.b_max = b_max
        self.mincw = mincw
        self.maxcw = maxcw

    def update(self, cw, backlog, successors) -> None:
        """Double/halve each node's window on its worst successor backlog."""
        for node in sorted(successors):
            b_next = max(backlog.get(nxt, 0.0) for nxt in successors[node])
            if b_next > self.b_max:
                cw[node] = min(cw[node] * 2, self.maxcw)
            elif b_next < self.b_min:
                cw[node] = max(cw[node] // 2, self.mincw)


class DiffQCw:
    """Differential-backlog window classes (the DiffQ baseline).

    ``cwmin_for(differential)`` is the class lookup —
    :meth:`repro.baselines.diffq.DiffQConfig.cwmin_for` in the harness.
    The differential is taken against the node's *least* backlogged
    successor (the link a backpressure scheduler would pick).
    """

    def __init__(self, cwmin_for: Callable[[float], int]):
        self.cwmin_for = cwmin_for

    def update(self, cw, backlog, successors) -> None:
        """Set each node's window from its differential-backlog class."""
        for node in sorted(successors):
            drop = backlog.get(node, 0.0) - min(
                backlog.get(nxt, 0.0) for nxt in successors[node]
            )
            cw[node] = self.cwmin_for(drop)


# -- flows ----------------------------------------------------------------


class SlottedFlow:
    """One unidirectional flow and its per-slot injection process.

    Kinds mirror :mod:`repro.traffic.workloads`: ``cbr`` accrues
    fractional packet credit per slot (deterministic), ``onoff`` gates
    the same credit behind exponential on/off phases drawn from the
    flow's own stream, ``windowed`` keeps ``window`` packets in flight
    (instant-ACK approximation: no reverse traffic, no retransmits, so
    delivery is in order by construction).
    """

    def __init__(
        self,
        flow_id: str,
        kind: str,
        src: NodeId,
        dst: NodeId,
        pkts_per_slot: float = 0.0,
        window: int = 0,
        stream=None,
        mean_on_s: float = 4.0,
        mean_off_s: float = 2.0,
    ):
        if kind not in ("cbr", "onoff", "windowed"):
            raise ValueError(f"unknown slotted workload kind {kind!r}")
        if kind in ("cbr", "onoff") and pkts_per_slot <= 0:
            raise ValueError("rate-driven kinds need pkts_per_slot > 0")
        if kind == "onoff" and stream is None:
            raise ValueError("onoff needs a phase stream")
        if kind == "windowed" and window < 1:
            raise ValueError("windowed needs window >= 1")
        self.flow_id = flow_id
        self.kind = kind
        self.src = src
        self.dst = dst
        self.pkts_per_slot = pkts_per_slot
        self.window = window
        self.stream = stream
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.generated = 0
        self.delivered = 0
        self.lost = 0  # dropped in-network (tail drop, retry limit)
        self._credit = 0.0
        self._on = True  # onoff starts in a burst, like OnOffSource
        self._phase_end_s = None  # drawn lazily on first slot

    def inject(self, now_s: float) -> int:
        """Packets to enqueue at the source for the slot starting now."""
        if self.kind == "windowed":
            # A loss releases its window slot (the go-back-N sender would
            # retransmit; the instant-ACK approximation regenerates).
            in_flight = self.generated - self.delivered - self.lost
            return max(0, self.window - in_flight)
        if self.kind == "onoff":
            if self._phase_end_s is None:
                self._phase_end_s = self.stream.expovariate(1.0 / self.mean_on_s)
            while now_s >= self._phase_end_s:
                self._on = not self._on
                mean = self.mean_on_s if self._on else self.mean_off_s
                self._phase_end_s += self.stream.expovariate(1.0 / mean)
            if not self._on:
                return 0
        self._credit += self.pkts_per_slot
        whole = int(self._credit)
        self._credit -= whole
        return whole


@dataclass(frozen=True)
class SlotOutcome:
    """What one slot resolved to (the deterministic slot trace unit)."""

    slot: int
    transmitters: Tuple[NodeId, ...]  # in winner-selection order
    successes: Tuple[Tuple[NodeId, NodeId, str], ...]  # (sender, receiver, flow)
    delivered: Tuple[str, ...]  # flow ids that reached their destination


# -- the mesh random walk -------------------------------------------------


class SlottedMesh:
    """Slot-synchronous random walk of (queues, cw) over a mesh.

    ``connectivity`` is duck-typed: ``nodes()``, ``receivers_of(u)``,
    ``senders_received_at(v)``, optionally ``sensors_of(u)`` and
    ``is_active(u)`` (the churn mutation API). Live views are read
    every slot, so a mutated map takes effect at the next slot with no
    cache to refresh. Deference follows carrier sensing — the winner
    silences ``sensors_of(winner)`` when the map distinguishes sensing
    from reception (the event MAC's 550 m CSMA), falling back to
    reception adjacency (the paper's chain abstraction, where imperfect
    2-hop sensing is the point) — while *interference* is always rx
    adjacency at the receiver: a concurrent transmitter the receiver
    would decode collides, sense-only interferers are captured through.
    Pass ``defer_of`` to pin either behaviour explicitly.

    Routes arrive via :meth:`set_routes` as per-destination parent maps
    (the BFS trees meshgen installs); the caller re-invokes it after
    churn. ``loss`` is an optional ``(sender, receiver) -> model|None``
    lookup; a model's ``erased()`` is consulted once per
    otherwise-decodable transmission, exactly where the event channel
    consults :mod:`repro.phy.linkstate`.

    DCF's failure handling is retained at slot resolution: a failed
    transmission doubles the sender's *effective* window (binary
    exponential backoff above the rule-controlled base, capped at
    ``cwmax``) and after ``retry_limit`` consecutive failures the head
    packet is discarded — the two mechanisms behind the event tier's
    starvation unfairness and bounded queues.

    Queues are bounded (``buffer_cap`` packets per node, the event
    MAC's 50-packet FIFO): source injections beyond the cap tail-drop
    (still counted as generated, like the event sources), and a relayed
    packet arriving at a full queue is lost after the MAC-level success.

    Knowingly coarser than the event tier (the validation harness
    measures the cost): one packet per transmitter per slot at a fixed
    slot length, instant ACKs for windowed flows, one aggregate queue
    per node where the event MAC keeps one per (class, next hop), and a
    down node retains its queued packets until it returns.
    """

    def __init__(
        self,
        connectivity,
        flows: Sequence[SlottedFlow],
        rng,
        slot_s: float,
        initial_cw: Optional[Dict[NodeId, int]] = None,
        rule=None,
        loss: Optional[Callable[[NodeId, NodeId], object]] = None,
        defer_of: Optional[Callable[[NodeId], object]] = None,
        active_filter: object = "auto",
        cwmax: int = 1024,
        retry_limit: int = 7,
        buffer_cap: Optional[int] = 50,
    ):
        if slot_s <= 0:
            raise ValueError("slot length must be positive")
        self.connectivity = connectivity
        self.flows = list(flows)
        self.rng = rng
        self.slot_s = slot_s
        self.rule = rule if rule is not None else FixedCw()
        self.loss = loss
        if defer_of is None:
            defer_of = getattr(connectivity, "sensors_of", connectivity.receivers_of)
        self.defer_of = defer_of
        self._nodes = sorted(connectivity.nodes())
        # ``active_filter``: "auto" consults the connectivity's churn
        # state (``is_active``) every slot; None asserts a static map
        # (no per-node check — the harness passes None when no churn is
        # scheduled); a callable pins the check explicitly.
        if active_filter == "auto":
            active_filter = getattr(connectivity, "is_active", None)
        self._is_active = active_filter
        # active_filter=None asserts the map never mutates, which also
        # means a planned next hop can never be a stale (churned) link.
        self._static = active_filter is None
        self.cwmax = cwmax
        self.retry_limit = retry_limit
        self.buffer_cap = buffer_cap
        self.cw: Dict[NodeId, int] = {node: DEFAULT_CWMIN for node in self._nodes}
        if initial_cw:
            self.cw.update(initial_cw)
        #: Consecutive failed attempts for the head packet, per node.
        self.retries: Dict[NodeId, int] = {node: 0 for node in self._nodes}
        #: Nodes currently in exponential backoff (retries > 0) — when
        #: empty, the effective windows ARE the base windows and the
        #: per-slot BEB adjustment is skipped wholesale.
        self._backoff: set = set()
        self.dropped = 0
        #: FIFO of flow indexes, one entry per queued packet.
        self.queues: Dict[NodeId, deque] = {node: deque() for node in self._nodes}
        #: node -> (head flow index, next hop) for every node whose
        #: queue head is routable — the slot's contender map, maintained
        #: incrementally at the few queue-head changes per slot instead
        #: of rebuilt from scratch (slot cost tracks queue *churn*, not
        #: the backlogged-node count).
        self._planned: Dict[NodeId, Tuple[int, NodeId]] = {}
        #: Static rules (FixedCw) skip the per-slot backlog snapshot.
        self._adaptive = getattr(self.rule, "adapts", True)
        #: Every window stays at the (power-of-two) default forever:
        #: contention can take the exact uniform-draw fast path in
        #: :func:`sample_transmitters` whenever nobody is in backoff.
        self._uniform_cw = (
            not self._adaptive
            and not initial_cw
            and DEFAULT_CWMIN & (DEFAULT_CWMIN - 1) == 0
        )
        self.parents: Dict[NodeId, Dict[NodeId, NodeId]] = {}
        self._trees: List[Dict[NodeId, NodeId]] = [{} for _ in self.flows]
        self.successors: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self.slot = 0

    @property
    def now_s(self) -> float:
        """Start time of the next slot."""
        return self.slot * self.slot_s

    def telemetry_snapshot(self) -> Dict[str, object]:
        """Read-only counters for mid-run telemetry sampling.

        Pure observation — touches no model state, so sampling cannot
        perturb the run.
        """
        return {
            "slot": self.slot,
            "backlog": sum(len(queue) for queue in self.queues.values()),
            "flows": {
                str(flow.flow_id): {
                    "generated": flow.generated,
                    "delivered": flow.delivered,
                    "lost": flow.lost,
                }
                for flow in self.flows
            },
        }

    def set_routes(self, parents: Dict[NodeId, Dict[NodeId, NodeId]]) -> None:
        """Install per-destination next-hop trees (re-invoke after churn).

        Also rebuilds the successor map the cw rules react to: for every
        flow, each node on its current path maps to the next hop it
        forwards over. A flow whose source the mutated graph cannot
        reach contributes nothing (its packets wait, like stale-route
        packets dying in MAC retries on the event tier).
        """
        self.parents = {dst: dict(tree) for dst, tree in parents.items()}
        # One tree reference per flow index: the hot loop resolves a
        # head packet's next hop with a single dict.get.
        self._trees = [self.parents.get(flow.dst, {}) for flow in self.flows]
        # New trees can reroute (or strand) any queued head packet, so
        # the contender map is rebuilt wholesale — the only place it is.
        trees = self._trees
        self._planned = {}
        for node, queue in self.queues.items():
            if queue:
                head = queue[0]
                next_hop = trees[head].get(node)
                if next_hop is not None:
                    self._planned[node] = (head, next_hop)
        successors: Dict[NodeId, set] = {}
        for flow in self.flows:
            tree = self.parents.get(flow.dst, {})
            node = flow.src
            hops = 0
            while node != flow.dst and node in tree and hops <= len(self._nodes):
                nxt = tree[node]
                successors.setdefault(node, set()).add(nxt)
                node = nxt
                hops += 1
        self.successors = {
            node: tuple(sorted(nxts)) for node, nxts in sorted(successors.items())
        }

    def backlog(self) -> Dict[NodeId, int]:
        """Aggregate queued packets per node (all flows)."""
        return {node: len(queue) for node, queue in self.queues.items()}

    def flow_backlog(self) -> Dict[str, int]:
        """In-network packets per flow id, summed over every queue."""
        counts = {flow.flow_id: 0 for flow in self.flows}
        for queue in self.queues.values():
            for index in queue:
                counts[self.flows[index].flow_id] += 1
        return counts

    def _next_hop(self, node: NodeId, flow: SlottedFlow) -> Optional[NodeId]:
        if node == flow.dst:
            return None
        return self.parents.get(flow.dst, {}).get(node)

    def step(self, record: bool = True) -> Optional[SlotOutcome]:
        """Inject, contend, resolve links, recurse buffers, adapt cw.

        ``record=False`` skips assembling the :class:`SlotOutcome`
        (returning None) — the harness loop drives thousands of slots
        per run and reads the mesh's counters afterwards, so building
        an unobserved trace unit per slot would be pure overhead.
        """
        now_s = self.slot * self.slot_s
        queues = self.queues
        flows = self.flows
        planned = self._planned
        trees = self._trees
        for index, flow in enumerate(flows):
            count = flow.inject(now_s)
            if count:
                flow.generated += count
                queue = queues[flow.src]
                fresh = not queue
                if self.buffer_cap is not None:
                    admitted = min(count, self.buffer_cap - len(queue))
                    self.dropped += count - admitted
                    flow.lost += count - admitted
                    count = admitted
                if count > 0:
                    queue.extend([index] * count)
                    if fresh:
                        next_hop = trees[index].get(flow.src)
                        if next_hop is not None:
                            planned[flow.src] = (index, next_hop)

        # Contenders: nodes with a routable head packet (the maintained
        # map), minus down nodes when a churn run asks for the check.
        is_active = self._is_active
        if is_active is None:
            contenders = planned
        else:
            contenders = {
                node: entry for node, entry in planned.items() if is_active(node)
            }

        # Contention runs on the *effective* windows: the rule-set base
        # doubled per consecutive failure (binary exponential backoff),
        # capped at cwmax — bases the rules already pushed above cwmax
        # (EZ-flow throttling) stay where the rule put them. With no
        # node in backoff the effective windows ARE the base windows.
        cw = self.cw
        retries = self.retries
        backoff = self._backoff
        if backoff:
            cwmax = self.cwmax
            effective = {
                node: (
                    cw[node]
                    if node not in backoff
                    else min(cw[node] << retries[node], max(cwmax, cw[node]))
                )
                for node in contenders
            }
        else:
            effective = None if self._uniform_cw else cw
        transmitters = sample_transmitters(contenders, effective, self.defer_of, self.rng)
        receivers_of = self.connectivity.receivers_of

        # Link outcomes against the frozen transmitter set, then the
        # queue moves — resolution order cannot feed back into itself.
        # A lone transmitter on a static map cannot collide (no
        # half-duplex conflict, no interferer, no stale link), which is
        # the common slot under strong carrier sensing.
        multi = len(transmitters) > 1
        if multi:
            tx_set = set(transmitters)
            senders_received_at = self.connectivity.senders_received_at
        loss_of = self.loss
        static = self._static
        successes: List[Tuple[NodeId, NodeId, str]] = []
        delivered: List[str] = []
        for sender in transmitters:
            head, receiver = contenders[sender]
            flow = flows[head]
            if multi:
                # Interferers: a decodable concurrent transmitter other
                # than the sender (set intersection stays in C).
                inter = tx_set & senders_received_at(receiver)
                collided = (
                    receiver in tx_set  # half-duplex receiver
                    or receiver not in receivers_of(sender)  # stale/churned link
                    or len(inter) > (sender in inter)
                )
            else:
                collided = not static and receiver not in receivers_of(sender)
            erased = False
            if not collided and loss_of is not None:
                model = loss_of(sender, receiver)
                erased = model is not None and model.erased()
            if collided or erased:
                retries[sender] += 1
                backoff.add(sender)
                if retries[sender] > self.retry_limit:
                    # DCF discard: the head packet exhausted its retries.
                    queue = queues[sender]
                    queue.popleft()
                    if queue:
                        new_head = queue[0]
                        new_hop = trees[new_head].get(sender)
                        if new_hop is not None:
                            planned[sender] = (new_head, new_hop)
                        else:
                            del planned[sender]
                    else:
                        del planned[sender]
                    retries[sender] = 0
                    backoff.discard(sender)
                    self.dropped += 1
                    flow.lost += 1
                continue
            if backoff:
                retries[sender] = 0
                backoff.discard(sender)
            queue = queues[sender]
            queue.popleft()
            if queue:
                new_head = queue[0]
                new_hop = trees[new_head].get(sender)
                if new_hop is not None:
                    planned[sender] = (new_head, new_hop)
                else:
                    del planned[sender]
            else:
                del planned[sender]
            if record:
                successes.append((sender, receiver, flow.flow_id))
            if receiver == flow.dst:
                flow.delivered += 1
                if record:
                    delivered.append(flow.flow_id)
            elif (
                self.buffer_cap is not None
                and len(queues[receiver]) >= self.buffer_cap
            ):
                self.dropped += 1  # full relay queue: lost after the MAC success
                flow.lost += 1
            else:
                relay_queue = queues[receiver]
                if not relay_queue:
                    next_hop = trees[head].get(receiver)
                    if next_hop is not None:
                        planned[receiver] = (head, next_hop)
                relay_queue.append(head)

        if self._adaptive:
            self.rule.update(cw, self.backlog(), self.successors)
        self.slot += 1
        if not record:
            return None
        return SlotOutcome(
            slot=self.slot - 1,
            transmitters=tuple(transmitters),
            successes=tuple(successes),
            delivered=tuple(delivered),
        )

    def run(self, slots: int, on_slot: Optional[Callable[[SlotOutcome], None]] = None):
        """Advance ``slots`` steps, optionally observing each outcome."""
        if on_slot is None:
            for _ in range(slots):
                self.step(record=False)
            return
        for _ in range(slots):
            on_slot(self.step())
