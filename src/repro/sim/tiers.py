"""Engine tiers: the pluggable scenario-execution boundary.

A *tier* is one way of executing a scenario: same topology, routes,
workload and algorithm — different physics resolution. The event core
(:mod:`repro.sim.engine` and everything built on it) is registered as
``fidelity=event``; the slot-synchronous fast tier
(:mod:`repro.sim.slotted`) as ``fidelity=slotted``. Harnesses dispatch
through :func:`get_tier`, so *what* a scenario is (its intermediate
representation, see :mod:`repro.experiments.ir`) stays decoupled from
*how* it runs — the execution boundary the ROADMAP's compiled-core item
also needs.

The registry is deliberately import-light: tiers register either as
live objects (:func:`register_tier`) or as lazy ``"module:attr"`` entry
points (:func:`register_tier_entry`), mirroring how
:class:`~repro.experiments.specs.ScenarioSpec` names its entry, so
listing tier names never imports a heavy harness module.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Union


class UnknownTierError(ValueError):
    """A fidelity name that no registered engine tier answers to."""


class EngineTier:
    """Interface: execute a scenario IR at one fidelity.

    ``name`` is the value of the scenario ``fidelity`` axis that selects
    this tier. ``run_scenario`` consumes a scenario intermediate
    representation and returns the harness's
    :class:`~repro.experiments.common.ExperimentResult` — every tier
    emits through the same metrics surface, so results layers
    (:mod:`repro.results`) compare tiers like any other swept axis.
    """

    name: str = ""

    def run_scenario(self, ir):
        """Execute ``ir`` and return an ``ExperimentResult``."""
        raise NotImplementedError


#: Registered tiers: either a live EngineTier or a lazy "module:attr"
#: entry-point string resolved (and cached) on first get_tier().
_TIERS: Dict[str, Union[EngineTier, str]] = {}


def register_tier(tier: EngineTier) -> EngineTier:
    """Register a live tier object under its ``name``."""
    if not tier.name:
        raise ValueError("an engine tier needs a non-empty name")
    _TIERS[tier.name] = tier
    return tier


def register_tier_entry(name: str, entry: str) -> None:
    """Register a lazy ``"module:attr"`` tier entry point.

    The module is imported only when :func:`get_tier` first resolves the
    name; an already-registered live tier of the same name is kept.
    """
    if not name:
        raise ValueError("an engine tier needs a non-empty name")
    if ":" not in entry:
        raise ValueError(f"tier entry {entry!r} is not of the form 'module:attr'")
    existing = _TIERS.get(name)
    if not isinstance(existing, EngineTier):
        _TIERS[name] = entry


def tier_names() -> List[str]:
    """All registered fidelity names, sorted."""
    return sorted(_TIERS)


def get_tier(name: str) -> EngineTier:
    """Resolve a fidelity name to its tier (importing lazily if needed)."""
    try:
        tier = _TIERS[name]
    except KeyError:
        raise UnknownTierError(
            f"unknown fidelity {name!r}; known: {', '.join(tier_names()) or '(none)'}"
        ) from None
    if isinstance(tier, str):
        module_name, _, attr = tier.partition(":")
        tier = getattr(importlib.import_module(module_name), attr)
        _TIERS[name] = tier
    return tier
