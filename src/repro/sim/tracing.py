"""Trace collection.

``TimeSeries`` is an append-only (time, value) series with helpers for
windowed rates and time averages. ``TraceRecorder`` is a keyed collection
of series plus scalar counters, shared by the MAC/PHY/metrics layers.

Experiments that only consume a subset of the instrumentation can
declare it (``exports=`` key prefixes): recording for every other key
becomes a no-op, and the hot layers (channel, MAC, queues, samplers)
pre-bind their recording callables via :meth:`TraceRecorder.counter_hook`
/ :meth:`TraceRecorder.series_hook`, so an unconsumed counter or series
costs a single no-op call per event instead of dict traffic and list
appends. Tracing is write-only telemetry — no simulator decision reads
it back — so restricting it cannot change simulation behaviour, only
shed overhead.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.units import US_PER_S


def _noop(*_args) -> None:
    """Shared sink for recording hooks of undeclared keys."""


class TimeSeries:
    """Append-only series of (tick, value) samples, sorted by time."""

    __slots__ = ("times", "values")

    def __init__(self):
        self.times: List[int] = []
        self.values: List[float] = []

    def append(self, time: int, value: float) -> None:
        """Add a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be appended in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return iter(zip(self.times, self.values))

    def window(self, start: int, end: int) -> "TimeSeries":
        """Samples with ``start <= t < end`` as a new series."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        out = TimeSeries()
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def count_in(self, start: int, end: int) -> int:
        """Number of samples with ``start <= t < end``."""
        return bisect_left(self.times, end) - bisect_left(self.times, start)

    def sum_in(self, start: int, end: int) -> float:
        """Sum of values of samples with ``start <= t < end``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return float(sum(self.values[lo:hi]))

    def mean(self) -> float:
        """Plain mean of the sample values (0.0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def last_value_before(self, time: int, default: float = 0.0) -> float:
        """Value of the latest sample at or before ``time``."""
        idx = bisect_right(self.times, time) - 1
        if idx < 0:
            return default
        return self.values[idx]

    def time_average(self, start: int, end: int, initial: float = 0.0) -> float:
        """Time-weighted average of a piecewise-constant signal.

        The series is interpreted as the value taking ``values[i]`` from
        ``times[i]`` until the next sample. ``initial`` is the value before
        the first sample in the window.
        """
        if end <= start:
            return 0.0
        level = self.last_value_before(start, initial)
        total = 0.0
        prev = start
        lo = bisect_right(self.times, start)
        hi = bisect_left(self.times, end)
        for i in range(lo, hi):
            t = self.times[i]
            total += level * (t - prev)
            level = self.values[i]
            prev = t
        total += level * (end - prev)
        return total / (end - start)

    def binned_rate(self, start: int, end: int, bin_ticks: int) -> List[Tuple[float, float]]:
        """Event rate per second in consecutive bins.

        Each sample counts as one event weighted by its value (use value=1
        for counts, value=bits for bit rates). Returns a list of
        (bin_center_seconds, rate_per_second).
        """
        if bin_ticks <= 0:
            raise ValueError("bin_ticks must be positive")
        out: List[Tuple[float, float]] = []
        t = start
        while t < end:
            hi = min(t + bin_ticks, end)
            total = self.sum_in(t, hi)
            width_s = (hi - t) / US_PER_S
            center_s = (t + hi) / 2 / US_PER_S
            out.append((center_s, total / width_s if width_s > 0 else 0.0))
            t = hi
        return out


class TraceRecorder:
    """Keyed time series and counters for one simulation run.

    ``exports`` (optional) declares the key *prefixes* the experiment
    consumes — e.g. ``("buffer.",)`` for a harness that only reads the
    buffer sampler's series. ``None`` (the default) records everything,
    which is the safe choice and what every canned figure uses. When a
    restriction is set, :meth:`record`/:meth:`bump` on undeclared keys
    are no-ops and the pre-bound hooks collapse to a shared no-op.
    """

    def __init__(self, exports: Optional[Sequence[str]] = None):
        self.series: Dict[str, TimeSeries] = {}
        self.counters: Dict[str, float] = defaultdict(float)
        self._exports: Optional[Tuple[str, ...]] = (
            None if exports is None else tuple(exports)
        )

    def wants(self, key: str) -> bool:
        """True when ``key`` is consumed (matches a declared prefix)."""
        exports = self._exports
        if exports is None:
            return True
        for prefix in exports:
            if key.startswith(prefix):
                return True
        return False

    def record(self, key: str, time: int, value: float) -> None:
        """Append a sample to the series ``key`` (created on first use)."""
        if self._exports is not None and not self.wants(key):
            return
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = TimeSeries()
        series.append(time, value)

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Increment the scalar counter ``key``."""
        if self._exports is not None and not self.wants(key):
            return
        self.counters[key] += amount

    def counter_hook(self, key: str) -> Callable[..., None]:
        """A pre-bound increment callable for one counter key.

        Hot layers resolve this once at wiring time and call it
        unconditionally per event; for undeclared keys it is a shared
        no-op, making unconsumed instrumentation cost ~zero.
        """
        if not self.wants(key):
            return _noop
        counters = self.counters

        def bump(amount: float = 1.0, _counters=counters, _key=key) -> None:
            _counters[_key] += amount

        return bump

    def series_hook(self, key: str) -> Callable[[int, float], None]:
        """A pre-bound append callable for one series key.

        The returned callable skips the monotone-time check — it is for
        writers driven by the engine clock (samplers, queues), whose
        timestamps are non-decreasing by construction. For undeclared
        keys it is a shared no-op.
        """
        if not self.wants(key):
            return _noop
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = TimeSeries()
        times = series.times
        values = series.values

        def append(time: int, value: float, _times=times, _values=values) -> None:
            _times.append(time)
            _values.append(value)

        return append

    def get(self, key: str) -> TimeSeries:
        """Return the series for ``key`` (empty series if never recorded)."""
        return self.series.get(key, TimeSeries())

    def counter(self, key: str) -> float:
        """Current value of the scalar counter ``key`` (0.0 if unset)."""
        return self.counters.get(key, 0.0)
