"""Trace collection.

``TimeSeries`` is an append-only (time, value) series with helpers for
windowed rates and time averages. ``TraceRecorder`` is a keyed collection
of series plus scalar counters, shared by the MAC/PHY/metrics layers.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

from repro.sim.units import US_PER_S


class TimeSeries:
    """Append-only series of (tick, value) samples, sorted by time."""

    __slots__ = ("times", "values")

    def __init__(self):
        self.times: List[int] = []
        self.values: List[float] = []

    def append(self, time: int, value: float) -> None:
        """Add a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be appended in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return iter(zip(self.times, self.values))

    def window(self, start: int, end: int) -> "TimeSeries":
        """Samples with ``start <= t < end`` as a new series."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        out = TimeSeries()
        out.times = self.times[lo:hi]
        out.values = self.values[lo:hi]
        return out

    def count_in(self, start: int, end: int) -> int:
        """Number of samples with ``start <= t < end``."""
        return bisect_left(self.times, end) - bisect_left(self.times, start)

    def sum_in(self, start: int, end: int) -> float:
        """Sum of values of samples with ``start <= t < end``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        return float(sum(self.values[lo:hi]))

    def mean(self) -> float:
        """Plain mean of the sample values (0.0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def last_value_before(self, time: int, default: float = 0.0) -> float:
        """Value of the latest sample at or before ``time``."""
        idx = bisect_right(self.times, time) - 1
        if idx < 0:
            return default
        return self.values[idx]

    def time_average(self, start: int, end: int, initial: float = 0.0) -> float:
        """Time-weighted average of a piecewise-constant signal.

        The series is interpreted as the value taking ``values[i]`` from
        ``times[i]`` until the next sample. ``initial`` is the value before
        the first sample in the window.
        """
        if end <= start:
            return 0.0
        level = self.last_value_before(start, initial)
        total = 0.0
        prev = start
        lo = bisect_right(self.times, start)
        hi = bisect_left(self.times, end)
        for i in range(lo, hi):
            t = self.times[i]
            total += level * (t - prev)
            level = self.values[i]
            prev = t
        total += level * (end - prev)
        return total / (end - start)

    def binned_rate(self, start: int, end: int, bin_ticks: int) -> List[Tuple[float, float]]:
        """Event rate per second in consecutive bins.

        Each sample counts as one event weighted by its value (use value=1
        for counts, value=bits for bit rates). Returns a list of
        (bin_center_seconds, rate_per_second).
        """
        if bin_ticks <= 0:
            raise ValueError("bin_ticks must be positive")
        out: List[Tuple[float, float]] = []
        t = start
        while t < end:
            hi = min(t + bin_ticks, end)
            total = self.sum_in(t, hi)
            width_s = (hi - t) / US_PER_S
            center_s = (t + hi) / 2 / US_PER_S
            out.append((center_s, total / width_s if width_s > 0 else 0.0))
            t = hi
        return out


class TraceRecorder:
    """Keyed time series and counters for one simulation run."""

    def __init__(self):
        self.series: Dict[str, TimeSeries] = {}
        self.counters: Dict[str, float] = defaultdict(float)

    def record(self, key: str, time: int, value: float) -> None:
        """Append a sample to the series ``key`` (created on first use)."""
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = TimeSeries()
        series.append(time, value)

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Increment the scalar counter ``key``."""
        self.counters[key] += amount

    def get(self, key: str) -> TimeSeries:
        """Return the series for ``key`` (empty series if never recorded)."""
        return self.series.get(key, TimeSeries())

    def counter(self, key: str) -> float:
        """Current value of the scalar counter ``key`` (0.0 if unset)."""
        return self.counters.get(key, 0.0)
