"""Time units.

The simulator clock counts integer microseconds. Integers keep event
ordering exact (no floating-point ties) and are large enough for multi-hour
simulated horizons.
"""

US_PER_S = 1_000_000
US_PER_MS = 1_000


def seconds(value: float) -> int:
    """Convert seconds to integer microsecond ticks."""
    return int(round(value * US_PER_S))


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer microsecond ticks."""
    return int(round(value * US_PER_MS))


def microseconds(value: float) -> int:
    """Convert (possibly fractional) microseconds to integer ticks."""
    return int(round(value))


def to_seconds(ticks: int) -> float:
    """Convert microsecond ticks back to float seconds."""
    return ticks / US_PER_S
