"""Live telemetry plane: in-run trace/metric streaming.

The plane is strictly additive and strictly off the export path:

* **Emission** — probe points in the engine tiers check
  :func:`current_probe` once per run and emit typed events
  (:mod:`repro.telemetry.events`) at a sim-time sampling interval.
  Detached (no listener) they cost one thread-local read; event streams
  are wall-clock free and therefore deterministic.
* **Transport** — pool workers publish through a bounded, batched,
  drop-oldest :class:`WorkerPublisher` onto a ``multiprocessing.Queue``
  the sweep runner drains alongside supervision
  (:mod:`repro.telemetry.channel`).
* **Grammar** — a :class:`RunEventGate` in the runner guarantees every
  consumer sees, per run, exactly
  ``RunStarted (RunProgress|MetricSample)* (RunFinished|RunFailed)``.
* **Consumption** — a :class:`TelemetryHub` fans events out to plain
  callables: the JSONL :class:`TelemetryRecorder`, the ``--live``
  console :class:`LiveTable`, and the service's per-job SSE bridge.
"""

from repro.telemetry.channel import WorkerPublisher, drain_channel
from repro.telemetry.events import (
    DROPPABLE_KINDS,
    EVENT_SCHEMA,
    EVENT_TYPES,
    MetricSample,
    RunFailed,
    RunFinished,
    RunProgress,
    RunStarted,
    TERMINAL_KINDS,
    event_from_json_dict,
    event_to_json_dict,
)
from repro.telemetry.hub import RunEventGate, TelemetryHub
from repro.telemetry.live import LiveTable
from repro.telemetry.probe import (
    ProbeSession,
    activate_probe,
    current_probe,
    probe_scope,
)
from repro.telemetry.recorder import TelemetryRecorder

__all__ = [
    "DROPPABLE_KINDS",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "LiveTable",
    "MetricSample",
    "ProbeSession",
    "RunEventGate",
    "RunFailed",
    "RunFinished",
    "RunProgress",
    "RunStarted",
    "TERMINAL_KINDS",
    "TelemetryHub",
    "TelemetryRecorder",
    "WorkerPublisher",
    "activate_probe",
    "current_probe",
    "drain_channel",
    "event_from_json_dict",
    "event_to_json_dict",
    "probe_scope",
]
