"""The worker→parent transport: batched, bounded, never blocking.

Pool workers publish events through a :class:`WorkerPublisher` wrapped
around a shared ``multiprocessing.Queue``. Two properties are
non-negotiable and shape the whole design:

* **A slow consumer must never stall a run.** The publisher only ever
  uses ``put_nowait``; when the queue is full the batch stays in a
  worker-local buffer and, past ``max_buffer`` events, the *oldest
  droppable* events (progress / metric samples) are discarded first.
  Lifecycle events are never dropped — they are retried on every
  subsequent flush and the buffer bound only evicts around them.
* **Batching keeps the queue cheap.** Droppable events coalesce into
  batches of ``batch_size``; lifecycle events flush immediately so the
  parent sees starts promptly.

The parent drains with :func:`drain_channel` — non-blocking, called
opportunistically from the supervision loop and decisively right before
a run is settled (so in-flight samples land before the terminal event
seals the run's stream at the gate).
"""

from __future__ import annotations

import queue
from typing import Callable, List

from repro.telemetry.events import DROPPABLE_KINDS


class WorkerPublisher:
    """Publish events from a worker without ever blocking on the parent."""

    def __init__(self, channel, batch_size: int = 8, max_buffer: int = 512):
        self._channel = channel
        self._batch_size = max(1, int(batch_size))
        self._max_buffer = max(self._batch_size, int(max_buffer))
        self._buffer: List[object] = []
        self.dropped = 0

    def emit(self, event) -> None:
        self._buffer.append(event)
        if event.kind not in DROPPABLE_KINDS or len(self._buffer) >= self._batch_size:
            self.flush()

    def flush(self) -> None:
        """Try to hand the buffered batch to the parent; never blocks."""
        if not self._buffer:
            return
        try:
            self._channel.put_nowait(list(self._buffer))
        except queue.Full:
            self._trim()
        else:
            self._buffer.clear()

    def take_residual(self):
        """Hand back (and clear) the still-buffered tail of the stream.

        A run's final events would otherwise race the run's own result:
        the mp queue's feeder thread and the executor's result queue
        are independent, so a batch flushed at run end can arrive
        *after* the parent settles the run — and the gate would drop
        it. The runner instead carries this residual inside the result
        payload, where ordering is guaranteed by construction.
        """
        residual = tuple(self._buffer)
        self._buffer.clear()
        return residual

    def _trim(self) -> None:
        # Queue full: keep buffering, but bound the buffer by evicting
        # the oldest droppable events. Lifecycle events survive.
        index = 0
        while len(self._buffer) > self._max_buffer:
            while index < len(self._buffer):
                if self._buffer[index].kind in DROPPABLE_KINDS:
                    del self._buffer[index]
                    self.dropped += 1
                    break
                index += 1
            else:
                break


def drain_channel(channel, emit: Callable[[object], None], max_batches: int = 1000) -> int:
    """Drain pending batches into ``emit`` without blocking; returns count.

    ``max_batches`` bounds one drain call so a firehose of events cannot
    starve the supervision loop. Closed/broken channels drain as empty.
    """
    delivered = 0
    for _ in range(max_batches):
        try:
            batch = channel.get_nowait()
        except queue.Empty:
            break
        except (OSError, ValueError):
            break
        for event in batch:
            emit(event)
            delivered += 1
    return delivered
