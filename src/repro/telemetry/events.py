"""Typed telemetry events: the vocabulary of the live-telemetry plane.

Five event kinds describe a run's life, matching the lifecycle the sweep
runner already guarantees (every run resolves exactly once):

* :class:`RunStarted` — a run began executing (attempt 1);
* :class:`RunProgress` — periodic progress: simulated time reached,
  engine events (or slots) dispatched, completed fraction;
* :class:`MetricSample` — a named metric sampled mid-run (the tiers
  emit per-flow running goodput under ``goodput_kbps``);
* :class:`RunFinished` — the run completed (``cached`` marks a store
  hit that never executed);
* :class:`RunFailed` — the run failed terminally (its ``failure_kind``
  mirrors :class:`~repro.experiments.runner.RunFailure`:
  ``exception``/``timeout``/``worker-crash``).

Events are deliberately *wall-clock free*: every field is a pure
function of the run (sim time, counters, identities), so a recorded
event stream is as deterministic as the run that produced it and CI can
assert on recorded streams exactly. They are plain frozen dataclasses —
picklable (they cross the worker→parent channel) and JSON-serialisable
via :func:`event_to_json_dict` / :func:`event_from_json_dict` (the
recorder's JSONL sidecar form and the service's SSE ``data:`` payload).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import ClassVar, Dict, Mapping

#: Schema tag carried by every serialised event envelope.
EVENT_SCHEMA = "repro.telemetry/event/1"


@dataclass(frozen=True)
class RunStarted:
    """A run began executing (emitted once, on its first attempt)."""

    kind: ClassVar[str] = "RunStarted"
    run_id: str
    spec_id: str = ""
    attempt: int = 1


@dataclass(frozen=True)
class RunProgress:
    """Periodic progress: sim time reached, work units done, fraction.

    ``events`` counts the executing tier's unit of work — engine events
    dispatched on the event core, slots stepped on the slotted tier.
    ``frac`` is completed simulated time over the scenario duration,
    clamped to [0, 1].
    """

    kind: ClassVar[str] = "RunProgress"
    run_id: str
    time_s: float
    events: int
    frac: float


@dataclass(frozen=True)
class MetricSample:
    """One named metric sampled mid-run, as a mapping of series values.

    The tiers emit ``metric="goodput_kbps"`` with one entry per flow
    (running goodput since the start of the run).
    """

    kind: ClassVar[str] = "MetricSample"
    run_id: str
    time_s: float
    metric: str
    values: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class RunFinished:
    """The run completed successfully (``cached``: a store hit)."""

    kind: ClassVar[str] = "RunFinished"
    run_id: str
    cached: bool = False


@dataclass(frozen=True)
class RunFailed:
    """The run failed terminally (after any retries were exhausted)."""

    kind: ClassVar[str] = "RunFailed"
    run_id: str
    failure_kind: str = "exception"  # exception | timeout | worker-crash
    error: str = ""
    message: str = ""


#: kind -> event class, for deserialisation.
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (RunStarted, RunProgress, MetricSample, RunFinished, RunFailed)
}

#: Kinds that end a run's event stream (exactly one per run).
TERMINAL_KINDS = frozenset({RunFinished.kind, RunFailed.kind})

#: Kinds the transport may drop under backpressure. Lifecycle events
#: (started/terminal) are never droppable — consumers rely on seeing
#: them exactly once; progress and metric samples are best-effort.
DROPPABLE_KINDS = frozenset({RunProgress.kind, MetricSample.kind})


def event_to_json_dict(event) -> Dict[str, object]:
    """The serialised envelope: ``kind`` plus the event's own fields."""
    doc: Dict[str, object] = {"kind": event.kind}
    doc.update(asdict(event))
    return doc


def event_from_json_dict(doc: Mapping[str, object]):
    """Rebuild an event from its :func:`event_to_json_dict` envelope."""
    fields = dict(doc)
    kind = fields.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown telemetry event kind: {kind!r}")
    return cls(**fields)
