"""The subscription hub: fan events out to registered listeners.

:class:`TelemetryHub` is the consumer-side rendezvous — recorders, live
tables and the service's SSE bridge subscribe plain callables; whoever
executes runs emits events into it. A hub with no listeners is inert
(``attached`` is False), and the probe points upstream check exactly
that before doing any work, which is what keeps detached runs free.

:class:`RunEventGate` sits between an event source and a hub and
enforces the per-run stream grammar every consumer may rely on::

    RunStarted (RunProgress | MetricSample)* (RunFinished | RunFailed)

exactly once per run: a missing ``RunStarted`` is synthesised before
the first observed event of a run (a crashed worker may never have
flushed its own), duplicate ``RunStarted``/terminal events collapse,
and *anything* arriving after a run's terminal event is discarded (a
slow worker→parent channel can deliver stragglers after the supervisor
already settled the run).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Set

from repro.telemetry.events import RunStarted, TERMINAL_KINDS

Listener = Callable[[object], None]


class TelemetryHub:
    """Thread-safe listener registry with a sampling-interval knob.

    ``sample_interval_s`` configures the probe points: how often (in
    *simulated* seconds) an executing run emits progress and metric
    samples. Sim-time sampling keeps the event stream deterministic —
    the same run always emits the same events.

    ``emit`` never lets a listener failure disturb execution: listener
    exceptions are swallowed (telemetry is strictly best-effort and off
    the export path).
    """

    def __init__(self, sample_interval_s: float = 1.0):
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.sample_interval_s = float(sample_interval_s)
        self._lock = threading.Lock()
        self._listeners: List[Listener] = []

    @property
    def attached(self) -> bool:
        """True when at least one listener is subscribed."""
        return bool(self._listeners)

    def subscribe(self, listener: Listener) -> Listener:
        """Register a callable; returns it (handy for later unsubscribe)."""
        with self._lock:
            self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Listener) -> None:
        """Remove a listener; unknown listeners are ignored."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def emit(self, event) -> None:
        """Deliver ``event`` to every listener, isolating their errors."""
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(event)
            except Exception:
                # Telemetry must never break the run it observes.
                pass


class RunEventGate:
    """Enforce the per-run event grammar in front of a sink.

    Not thread-safe by itself — the sweep runner drives one gate from
    one thread (its release/supervision loop).
    """

    def __init__(self, sink: Listener):
        self._sink = sink
        self._started: Set[str] = set()
        self._terminal: Set[str] = set()

    def emit(self, event) -> bool:
        """Forward ``event`` if the grammar allows it; True when sent."""
        run_id = event.run_id
        if run_id in self._terminal:
            return False
        kind = event.kind
        if kind == RunStarted.kind:
            if run_id in self._started:
                return False
            self._started.add(run_id)
            self._sink(event)
            return True
        if run_id not in self._started:
            self._started.add(run_id)
            self._sink(RunStarted(run_id=run_id))
        if kind in TERMINAL_KINDS:
            self._terminal.add(run_id)
        self._sink(event)
        return True
