"""The ``--live`` console view: an in-place per-run progress table.

:class:`LiveTable` is a hub listener that re-renders a small table on a
TTY using ANSI cursor movement — one row per run showing its state, the
completed fraction and the latest aggregate goodput sample. Rendering
is wall-clock throttled (default 10 Hz) except for lifecycle events,
which always repaint so starts and finishes are never missed.

This module is display-only; it never feeds back into execution, and a
non-TTY stream simply accumulates the final table once at ``finish()``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional

from repro.telemetry.events import (
    MetricSample,
    RunFailed,
    RunFinished,
    RunProgress,
    RunStarted,
    TERMINAL_KINDS,
)

_STATE_GLYPHS = {
    "running": "…",
    "done": "ok",
    "cached": "ok*",
    "failed": "FAIL",
}


class _Row:
    __slots__ = ("state", "frac", "goodput_kbps")

    def __init__(self):
        self.state = "running"
        self.frac = 0.0
        self.goodput_kbps: Optional[float] = None


class LiveTable:
    """Render run progress in place on ``stream`` (stderr by default)."""

    def __init__(self, total: int, stream=None, refresh_s: float = 0.1):
        self.total = int(total)
        self.stream = stream if stream is not None else sys.stderr
        self.refresh_s = float(refresh_s)
        self._rows: Dict[str, _Row] = {}
        self._order = []
        self._rendered_lines = 0
        self._last_render = 0.0
        self._finished = 0

    def __call__(self, event) -> None:
        row = self._rows.get(event.run_id)
        if row is None:
            row = _Row()
            self._rows[event.run_id] = row
            self._order.append(event.run_id)
        kind = event.kind
        if kind == RunProgress.kind:
            row.frac = event.frac
        elif kind == MetricSample.kind:
            if event.metric == "goodput_kbps" and event.values:
                row.goodput_kbps = sum(event.values.values())
        elif kind == RunFinished.kind:
            row.state = "cached" if event.cached else "done"
            row.frac = 1.0
            self._finished += 1
        elif kind == RunFailed.kind:
            row.state = "failed"
            self._finished += 1
        elif kind != RunStarted.kind:
            return
        force = kind in TERMINAL_KINDS or kind == RunStarted.kind
        self._render(force=force)

    def finish(self) -> None:
        """Final repaint (always), leaving the table on screen."""
        self._render(force=True)

    def _render(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and (now - self._last_render) < self.refresh_s:
            return
        if not force and not self._is_tty():
            return
        self._last_render = now
        lines = [f"runs {self._finished}/{self.total}"]
        for run_id in self._order:
            row = self._rows[run_id]
            glyph = _STATE_GLYPHS.get(row.state, "?")
            bar = _bar(row.frac)
            goodput = (
                f" {row.goodput_kbps:8.1f} kbps" if row.goodput_kbps is not None else ""
            )
            lines.append(f"  {run_id:<32.32} {bar} {row.frac:4.0%} {glyph:<4}{goodput}")
        out = self.stream
        if self._is_tty() and self._rendered_lines:
            out.write(f"\x1b[{self._rendered_lines}A")
        for line in lines:
            if self._is_tty():
                out.write("\x1b[2K")
            out.write(line + "\n")
        out.flush()
        self._rendered_lines = len(lines)

    def _is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        return bool(isatty and isatty())


def _bar(frac: float, width: int = 16) -> str:
    filled = int(min(1.0, max(0.0, frac)) * width)
    return "[" + "#" * filled + "-" * (width - filled) + "]"
