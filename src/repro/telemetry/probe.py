"""The probe session: how executing code finds out it is being watched.

Engine tiers (and any future instrumented code) call
:func:`current_probe` once per run. ``None`` — the overwhelmingly
common case — means no listener is attached and the tier takes its
unmodified fast path: detached telemetry costs one thread-local read
per *run*, nothing per event or per slot, and the dispatched event
sequence is untouched (so exports stay byte-identical).

When a session is active, the tier emits through it at the session's
sampling interval (simulated seconds). The session is just a run id,
an interval and an ``emit`` callable — inside a pool worker that
callable is a :class:`~repro.telemetry.channel.WorkerPublisher`, inline
it is the sweep's gate directly; the tier cannot tell the difference.

The active session is *thread-local* (not process-global) so a threaded
driver (the sweep service's scheduler next to its HTTP threads, or
parallel test batteries) can probe one run without leaking the session
into unrelated work.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Mapping, Optional

from repro.telemetry.events import MetricSample, RunProgress

_LOCAL = threading.local()


class ProbeSession:
    """One watched run: identity, sampling interval, and the event sink."""

    __slots__ = ("emit", "run_id", "sample_interval_s")

    def __init__(
        self,
        emit: Callable[[object], None],
        run_id: str,
        sample_interval_s: float = 1.0,
    ):
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.emit = emit
        self.run_id = run_id
        self.sample_interval_s = float(sample_interval_s)

    def progress(self, time_s: float, events: int, frac: float) -> None:
        """Emit a :class:`RunProgress` (``frac`` clamped to [0, 1])."""
        self.emit(
            RunProgress(
                run_id=self.run_id,
                time_s=time_s,
                events=int(events),
                frac=min(1.0, max(0.0, frac)),
            )
        )

    def metric(self, time_s: float, metric: str, values: Mapping[str, float]) -> None:
        """Emit a :class:`MetricSample` with a copy of ``values``."""
        self.emit(
            MetricSample(
                run_id=self.run_id, time_s=time_s, metric=metric, values=dict(values)
            )
        )


def current_probe() -> Optional[ProbeSession]:
    """The calling thread's active session, or None (detached)."""
    return getattr(_LOCAL, "session", None)


def activate_probe(session: Optional[ProbeSession]) -> Optional[ProbeSession]:
    """Install ``session`` for this thread; returns the previous one."""
    previous = getattr(_LOCAL, "session", None)
    _LOCAL.session = session
    return previous


@contextmanager
def probe_scope(session: Optional[ProbeSession]):
    """Context manager spelling of activate/restore."""
    previous = activate_probe(session)
    try:
        yield session
    finally:
        activate_probe(previous)
