"""The JSONL sidecar recorder: one file per run, one event per line.

A :class:`TelemetryRecorder` subscribes to a hub (it is a plain
callable) and appends every event for run ``R`` to ``<root>/R.jsonl``
as a sorted-keys JSON envelope (see
:func:`repro.telemetry.events.event_to_json_dict`). Lines are flushed
as written so a tail -f (or a crashed sweep's post-mortem) always sees
a prefix of the true stream, and a run's file handle is closed as soon
as its terminal event lands.

The sidecar lives *next to* the export tree, never inside it: telemetry
must not perturb export bytes.
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO

from repro.telemetry.events import TERMINAL_KINDS, event_to_json_dict


def _safe_name(run_id: str) -> str:
    return run_id.replace(os.sep, "_").replace("/", "_")


class TelemetryRecorder:
    """Append telemetry events to per-run JSONL files under ``root``."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._handles: Dict[str, IO[str]] = {}

    def __call__(self, event) -> None:
        run_id = event.run_id
        handle = self._handles.get(run_id)
        if handle is None:
            path = os.path.join(self.root, f"{_safe_name(run_id)}.jsonl")
            handle = open(path, "a", encoding="utf-8")
            self._handles[run_id] = handle
        handle.write(json.dumps(event_to_json_dict(event), sort_keys=True) + "\n")
        handle.flush()
        if event.kind in TERMINAL_KINDS:
            handle.close()
            del self._handles[run_id]

    def close(self) -> None:
        """Close any handles still open (runs that never terminated)."""
        for handle in self._handles.values():
            try:
                handle.close()
            except OSError:
                pass
        self._handles.clear()

    def __enter__(self) -> "TelemetryRecorder":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
