"""Topology builders for every network the paper evaluates.

* ``linear`` — K-hop chains (Figure 1, Section 6 analysis);
* ``testbed`` — the 9-node, 4-building deployment of Figure 3 with its
  two flows and calibrated lossy links (Table 1);
* ``scenario1`` — two 8-hop flows merging toward a gateway (Figure 5);
* ``scenario2`` — three flows with a hidden-terminal source (Figure 9);
* ``meshgen`` — seeded generators for random meshes, grids and
  multi-gateway trees (validated connected, shortest-path routed);
* ``builders`` — the shared ``Network`` container and generic helpers.
"""

from repro.topology.builders import Network, build_chain_positions
from repro.topology.linear import linear_chain
from repro.topology.meshgen import (
    MESH_KINDS,
    MeshGenError,
    MeshSpec,
    MeshTopology,
    build_mesh_network,
    generate_topology,
    is_connected,
)
from repro.topology.testbed import testbed_network, TESTBED_LINK_RATES_KBPS
from repro.topology.scenario1 import scenario1_network
from repro.topology.scenario2 import scenario2_network
from repro.topology.trees import tree_backhaul, tree_positions, leaves_of

__all__ = [
    "Network",
    "build_chain_positions",
    "linear_chain",
    "testbed_network",
    "TESTBED_LINK_RATES_KBPS",
    "scenario1_network",
    "scenario2_network",
    "tree_backhaul",
    "tree_positions",
    "leaves_of",
    "MESH_KINDS",
    "MeshGenError",
    "MeshSpec",
    "MeshTopology",
    "build_mesh_network",
    "generate_topology",
    "is_connected",
]
