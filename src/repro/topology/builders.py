"""Shared network container and construction helpers.

``Network`` bundles everything one simulation run needs: engine, channel,
routing, node stacks, flows, sources, traces. Topology modules return a
fully wired ``Network``; experiment harnesses then optionally attach
EZ-flow (or a baseline) and run it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.mac.dcf import DcfConfig
from repro.net.flow import Flow
from repro.net.node import NodeStack
from repro.net.routing import StaticRouting
from repro.phy.channel import Channel
from repro.phy.connectivity import ConnectivityMap
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder

NodeId = Hashable


@dataclass
class Network:
    """A fully wired simulation network."""

    engine: Engine
    channel: Channel
    routing: StaticRouting
    nodes: Dict[NodeId, NodeStack]
    flows: Dict[Hashable, Flow]
    sources: List[object]
    trace: TraceRecorder
    rng: RngRegistry
    connectivity: ConnectivityMap
    description: str = ""

    def start_sources(self) -> None:
        """Start every registered traffic source (run() does this once)."""
        for source in self.sources:
            source.start()

    def run(self, until_us: int) -> None:
        """Start traffic (idempotent per network) and run to ``until_us``."""
        if not getattr(self, "_sources_started", False):
            self.start_sources()
            self._sources_started = True
        self.engine.run(until=until_us)

    def flow(self, flow_id: Hashable) -> Flow:
        """Look up a flow by id."""
        return self.flows[flow_id]

    def node(self, node_id: NodeId) -> NodeStack:
        """Look up a node stack by id."""
        return self.nodes[node_id]


def build_network(
    connectivity: ConnectivityMap,
    seed: int = 0,
    mac_config: Optional[DcfConfig] = None,
    description: str = "",
    trace_exports: Optional[Tuple[str, ...]] = None,
) -> Network:
    """Instantiate engine, channel and one stack per connectivity node.

    ``trace_exports`` optionally declares the trace-key prefixes the
    caller's experiment consumes (see
    :class:`~repro.sim.tracing.TraceRecorder`); everything else becomes
    a recording no-op. ``None`` records all instrumentation — the safe
    default every canned figure uses. Tracing is write-only telemetry,
    so the restriction changes run speed, never run behaviour.
    """
    engine = Engine()
    rng = RngRegistry(seed)
    trace = TraceRecorder(exports=trace_exports)
    channel = Channel(engine, connectivity, rng, trace)
    routing = StaticRouting()
    nodes: Dict[NodeId, NodeStack] = {}
    for node_id in sorted(connectivity.nodes(), key=str):
        nodes[node_id] = NodeStack(
            engine,
            channel,
            routing,
            node_id,
            mac_config=mac_config,
            rng=rng,
            trace=trace,
        )
    return Network(
        engine=engine,
        channel=channel,
        routing=routing,
        nodes=nodes,
        flows={},
        sources=[],
        trace=trace,
        rng=rng,
        connectivity=connectivity,
        description=description,
    )


def build_chain_positions(
    count: int,
    spacing_m: float = 200.0,
    origin: Tuple[float, float] = (0.0, 0.0),
) -> Dict[int, Tuple[float, float]]:
    """Positions of ``count`` nodes on a straight line, ``spacing_m`` apart.

    With the default 250 m transmit / 550 m sensing radii, 200 m spacing
    gives the paper's canonical regime: nodes decode only their direct
    neighbours, sense two hops away, and are hidden three hops apart —
    the 2-hop interference model of Section 6.
    """
    if count < 2:
        raise ValueError("a chain needs at least two nodes")
    x0, y0 = origin
    return {i: (x0 + i * spacing_m, y0) for i in range(count)}
