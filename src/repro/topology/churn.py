"""Declarative churn and mobility schedules for dynamic topologies.

A :class:`ChurnSchedule` is a list of timed topology mutations — node
down/up churn and waypoint mobility steps — applied to a running
network's :class:`~repro.phy.connectivity.GeometricConnectivity` through
its mutation API. Each applied event:

1. mutates the connectivity map (which bumps its epoch, lazily
   invalidating every cached channel delivery plan — frames already on
   the air keep the plan snapshotted at transmit time),
2. re-runs BFS from every destination present in the routing tables
   (gateways, and the reverse routes of windowed transports) against
   the mutated map and overwrites the affected next hops, and
3. drops every node stack's per-destination queue cache, so the next
   packet per destination follows the new route.

Nodes the mutated reception graph cannot reach keep their stale routes:
their packets chase a path that no longer exists and die in MAC retries
— the behaviour a real static-routing mesh exhibits until the node
re-associates.

CLI specs (the meshgen ``churn`` axis) join events with ``+`` and avoid
commas so they survive the sweep CLI's splitting of grid values::

    down:3@8                     node 3 radio off at t=8 s
    up:3@16                      ... and back on at t=16 s
    move:5@10:150:300            node 5 teleports to (150 m, 300 m) at t=10 s
    down:3@8+move:5@10:150:300+up:3@16      one schedule, three events

Times are sim seconds (floats allowed); coordinates are metres. All
mutations are scheduled at network-build time, so the event order at
equal timestamps — and with it the whole run — is deterministic
whatever the sweep worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.phy.connectivity import GeometricConnectivity
from repro.phy.linkstate import apply_loss_models
from repro.sim.units import seconds
from repro.topology.meshgen import bfs_tree

CHURN_KINDS = ("down", "up", "move")


class ChurnSpecError(ValueError):
    """A churn schedule spec string could not be parsed."""


@dataclass(frozen=True)
class ChurnEvent:
    """One timed topology mutation."""

    time_s: float
    kind: str  # "down" | "up" | "move"
    node: int
    x: Optional[float] = None
    y: Optional[float] = None

    def __post_init__(self):
        if self.kind not in CHURN_KINDS:
            raise ChurnSpecError(
                f"unknown churn event kind {self.kind!r}; known: {', '.join(CHURN_KINDS)}"
            )
        if self.time_s < 0:
            raise ChurnSpecError("churn event time must be >= 0")
        if self.kind == "move" and (self.x is None or self.y is None):
            raise ChurnSpecError("move events need target coordinates")


@dataclass(frozen=True)
class ChurnSchedule:
    """An ordered batch of churn events (stable order at equal times)."""

    events: Tuple[ChurnEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def ordered(self) -> List[ChurnEvent]:
        """Events by (time, declaration order) — the application order."""
        order = sorted(
            range(len(self.events)), key=lambda i: (self.events[i].time_s, i)
        )
        return [self.events[i] for i in order]


def _parse_event(token: str) -> ChurnEvent:
    head, _, rest = token.partition(":")
    kind = head.strip()
    if kind not in CHURN_KINDS:
        raise ChurnSpecError(
            f"churn event {token!r}: unknown kind {kind!r}; known: {', '.join(CHURN_KINDS)}"
        )
    fields = rest.split(":") if rest else []
    if kind == "move":
        if len(fields) != 3:
            raise ChurnSpecError(f"churn event {token!r}: move wants NODE@T:X:Y")
    elif len(fields) != 1:
        raise ChurnSpecError(f"churn event {token!r}: {kind} wants NODE@T")
    node_text, at, time_text = fields[0].partition("@")
    if not at:
        raise ChurnSpecError(f"churn event {token!r}: missing @TIME")
    try:
        node = int(node_text)
        time_s = float(time_text)
        x = float(fields[1]) if kind == "move" else None
        y = float(fields[2]) if kind == "move" else None
    except ValueError as error:
        raise ChurnSpecError(f"churn event {token!r}: non-numeric field") from error
    return ChurnEvent(time_s=time_s, kind=kind, node=node, x=x, y=y)


def parse_churn_spec(text: str) -> ChurnSchedule:
    """Parse a CLI churn spec (see the module docstring for the grammar)."""
    tokens = [t.strip() for t in str(text).strip().split("+") if t.strip()]
    if not tokens:
        raise ChurnSpecError("empty churn spec")
    return ChurnSchedule(events=tuple(_parse_event(t) for t in tokens))


class ChurnDriver:
    """Applies a schedule to one network; owns the re-route machinery.

    ``loss_spec`` (a :class:`~repro.phy.linkstate.LossSpec`, optional)
    keeps the per-link loss configuration complete under mobility: after
    every applied event the reception edges are re-enumerated and any
    link that appeared (a move into range, an up event) gets a model on
    its own canonical stream, while existing links keep their model —
    and with it their burst state and stream position.
    """

    def __init__(self, network, schedule: ChurnSchedule, loss_spec=None):
        connectivity = network.connectivity
        if not isinstance(connectivity, GeometricConnectivity):
            raise ChurnSpecError(
                "churn schedules need a mutable GeometricConnectivity map"
            )
        known = connectivity.nodes()
        for event in schedule.events:
            if event.node not in known:
                raise ChurnSpecError(
                    f"churn event targets unknown node {event.node!r}"
                )
        self.network = network
        self.schedule = schedule
        self.loss_spec = loss_spec
        self.applied: List[ChurnEvent] = []

    def install(self) -> None:
        """Schedule every event at its absolute sim time.

        Event times are absolute, so installing works mid-run too (e.g.
        after a warmup segment); an event earlier than the engine's
        current time raises rather than silently shifting.
        """
        for event in self.schedule.ordered():
            self.network.engine.schedule_at(seconds(event.time_s), self._apply, event)

    # -- event application ----------------------------------------------

    def _apply(self, event: ChurnEvent) -> None:
        connectivity = self.network.connectivity
        if event.kind == "down":
            connectivity.set_node_active(event.node, False)
        elif event.kind == "up":
            connectivity.set_node_active(event.node, True)
        else:
            connectivity.move_node(event.node, (event.x, event.y))
        # The epoch bump already invalidates plans lazily; announcing it
        # keeps the channel's caches coherent for direct inspection too.
        self.network.channel.connectivity_changed()
        if self.loss_spec is not None:
            apply_loss_models(self.network, self.loss_spec)
        self._reroute()
        self.applied.append(event)

    def _reroute(self) -> None:
        """Re-run BFS per routed destination and refresh next hops.

        Every destination already present in the routing tables gets a
        fresh shortest-path tree over the mutated reception graph;
        reachable nodes' next hops are overwritten in place (tables stay
        loop-free: all entries of one destination come from one tree).
        Unreachable nodes keep their stale entries. Node-stack queue
        caches are dropped so the new hops take effect from the next
        packet on.
        """
        network = self.network
        routing = network.routing
        connectivity = network.connectivity
        for destination in routing.destinations():
            _depths, parents = bfs_tree(connectivity, destination)
            for node in sorted(parents, key=repr):
                routing.set_next_hop(node, destination, parents[node])
        for stack in network.nodes.values():
            stack.invalidate_route_caches()
