"""Linear K-hop chains (Figure 1, Section 6).

Node 0 is the saturated source, node K the sink, nodes 1..K-1 relays.
The paper's core instability result: chains of 4+ hops are turbulent
under standard 802.11, 3-hop chains are stable.
"""

from __future__ import annotations

from typing import Optional

from repro.mac.dcf import DcfConfig
from repro.net.flow import Flow
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.units import seconds
from repro.topology.builders import Network, build_chain_positions, build_network
from repro.traffic.sources import CbrSource, SaturatedSource


def linear_chain(
    hops: int,
    seed: int = 0,
    spacing_m: float = 200.0,
    saturated: bool = True,
    rate_bps: float = 2_000_000.0,
    packet_bytes: int = 1000,
    mac_config: Optional[DcfConfig] = None,
    start_s: float = 0.0,
    stop_s: Optional[float] = None,
    sense_range_m: float = 550.0,
) -> Network:
    """Build a K-hop chain with one flow 0 -> K.

    ``saturated=True`` uses the greedy access point of Figure 1 (source
    queue always full); otherwise a CBR source at ``rate_bps``.

    ``sense_range_m`` selects the carrier-sensing regime. The ns-2
    default (550 m = 2-hop sensing at 200 m spacing) is faithful to the
    paper's simulations; 350 m gives 1-hop sensing, the regime of the
    analytical model in Section 6 ([9]'s 2-hop interference model, where
    e.g. links 0 and 3 can fire in parallel) and the one that best
    matches the testbed's 3-hop-stable / 4-hop-turbulent contrast of
    Figure 1.
    """
    if hops < 1:
        raise ValueError("need at least one hop")
    node_count = hops + 1
    positions = build_chain_positions(node_count, spacing_m)
    connectivity = GeometricConnectivity(positions, RangeModel(250.0, sense_range_m))
    network = build_network(
        connectivity,
        seed=seed,
        mac_config=mac_config,
        description=f"linear {hops}-hop chain, {spacing_m:.0f} m spacing",
    )
    path = list(range(node_count))
    network.routing.install_path(path)

    flow = Flow(
        flow_id="F1",
        src=0,
        dst=hops,
        start_us=seconds(start_s),
        stop_us=None if stop_s is None else seconds(stop_s),
    )
    network.flows[flow.flow_id] = flow
    network.nodes[hops].register_flow(flow)
    if saturated:
        source = SaturatedSource(network.engine, network.nodes[0], flow, packet_bytes)
    else:
        source = CbrSource(network.engine, network.nodes[0], flow, rate_bps, packet_bytes)
    network.sources.append(source)
    return network
