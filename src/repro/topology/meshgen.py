"""Generated topologies: random meshes, grids, multi-gateway trees.

The paper evaluates EZ-flow on a handful of hand-built layouts; this
module manufactures arbitrarily many. Three seeded generator kinds:

* ``mesh`` — uniform random node placement in a square whose side is
  derived from a *density* knob (expected neighbours per node grows
  with density). Placement is rejection-resampled until the reception
  graph under the 250 m / 550 m radii is connected.
* ``grid`` — a rectangular lattice at chain spacing (200 m), connected
  by construction: horizontal/vertical neighbours decode each other,
  diagonals only carrier-sense.
* ``tree`` — a multi-gateway backhaul forest. Gateways sit on a
  baseline one spacing apart (so the gateway chain itself is a
  reception path and the whole graph stays connected); each gateway
  fans its share of the remaining nodes downward in its own angular
  sector, with seeded angular jitter.

Every generated layout is validated connected before use (the mesh
kind resamples, the deterministic kinds assert). ``build_mesh_network``
wires a full :class:`~repro.topology.builders.Network` with
shortest-path (BFS) routes installed from every node toward every
gateway, so any sampled source→gateway flow is routable immediately.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mac.dcf import DcfConfig
from repro.phy.connectivity import ConnectivityMap, GeometricConnectivity
from repro.phy.propagation import Position, RangeModel, distance
from repro.sim.rng import RngRegistry
from repro.topology.builders import Network, build_network

MESH_KINDS = ("mesh", "grid", "tree")

#: Chain spacing giving the paper's canonical 2-hop sensing regime.
DEFAULT_SPACING_M = 200.0


class MeshGenError(ValueError):
    """A generator parameter is invalid or generation failed."""


@dataclass(frozen=True)
class MeshSpec:
    """Parameters of one generated topology."""

    kind: str = "mesh"
    nodes: int = 16
    density: float = 1.5  # mesh only: ~pi*density expected neighbours
    gateways: int = 2
    seed: int = 0
    spacing_m: float = DEFAULT_SPACING_M
    tx_range_m: float = 250.0
    sense_range_m: float = 550.0
    fanout: int = 2  # tree only: children per attach point
    max_attempts: int = 200  # mesh only: rejection-resampling budget

    def __post_init__(self):
        if self.kind not in MESH_KINDS:
            raise MeshGenError(f"unknown topology kind {self.kind!r}; known: {', '.join(MESH_KINDS)}")
        if self.nodes < 2:
            raise MeshGenError("a topology needs at least two nodes")
        if not 1 <= self.gateways < self.nodes:
            raise MeshGenError("gateways must be in [1, nodes)")
        if self.density <= 0:
            raise MeshGenError("density must be positive")
        if self.fanout < 1:
            raise MeshGenError("fanout must be >= 1")
        if self.max_attempts < 1:
            raise MeshGenError("max_attempts must be >= 1")


@dataclass
class MeshTopology:
    """A generated, validated layout plus its routing structure.

    ``depths[gw][node]`` is the BFS hop count from ``node`` to gateway
    ``gw``; ``parents[gw][node]`` the next hop toward it. ``nearest``
    maps every non-gateway node to its closest gateway (hop count, ties
    to the lower gateway id).
    """

    spec: MeshSpec
    positions: Dict[int, Position]
    gateways: List[int]
    attempts: int
    connectivity: Optional[GeometricConnectivity] = None
    depths: Dict[int, Dict[int, int]] = field(default_factory=dict)
    parents: Dict[int, Dict[int, int]] = field(default_factory=dict)
    nearest: Dict[int, int] = field(default_factory=dict)

    def route_to_gateway(self, node: int, gateway: Optional[int] = None) -> List[int]:
        """The BFS shortest path ``node -> ... -> gateway``."""
        gateway = self.nearest[node] if gateway is None else gateway
        parents = self.parents[gateway]
        path = [node]
        while path[-1] != gateway:
            path.append(parents[path[-1]])
        return path


def is_connected(connectivity: ConnectivityMap) -> bool:
    """True when the reception graph spans every node."""
    nodes = sorted(connectivity.nodes())
    if not nodes:
        return False
    seen = {nodes[0]}
    frontier = deque(seen)
    while frontier:
        node = frontier.popleft()
        for neighbour in connectivity.receivers_of(node):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(nodes)


def bfs_tree(connectivity: ConnectivityMap, root: int) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Hop counts and next-hop-toward-root pointers from every node.

    Neighbours are visited in sorted order so the tree — and therefore
    every installed route — is a pure function of the layout. Nodes the
    reception graph cannot reach from ``root`` (possible after churn)
    simply do not appear in either mapping. Churn re-routing
    (:mod:`repro.topology.churn`) calls this against the mutated map.
    """
    depths = {root: 0}
    parents: Dict[int, int] = {}
    frontier = deque([root])
    while frontier:
        node = frontier.popleft()
        for neighbour in sorted(connectivity.receivers_of(node)):
            if neighbour not in depths:
                depths[neighbour] = depths[node] + 1
                parents[neighbour] = node
                frontier.append(neighbour)
    return depths, parents


def _mesh_positions(
    spec: MeshSpec, rng: RngRegistry
) -> Tuple[Dict[int, Position], int, GeometricConnectivity]:
    """Uniform placement, rejection-resampled until connected.

    The square's side is ``tx_range * sqrt(nodes / density)``: each node
    then expects ~``pi * density`` reception neighbours, so density ~1.5
    gives sparse-but-connectable meshes and higher values dense ones.
    The accepted placement's connectivity map is returned alongside, so
    callers don't recompute the O(n^2) pairwise ranges.
    """
    stream = rng.stream(f"topology.meshgen.{spec.seed}")
    side = spec.tx_range_m * math.sqrt(spec.nodes / spec.density)
    ranges = RangeModel(spec.tx_range_m, spec.sense_range_m)
    can_receive = ranges.can_receive
    count = spec.nodes
    for attempt in range(1, spec.max_attempts + 1):
        positions = {
            i: (stream.uniform(0.0, side), stream.uniform(0.0, side))
            for i in range(count)
        }
        # Cheap connectivity probe before paying for the full map: the
        # reception graph alone decides acceptance, so rejected attempts
        # (the common case near the connectivity threshold) only cost a
        # half-matrix adjacency build + one BFS — no sensing sets, no
        # frozensets, no GeometricConnectivity construction. The same
        # `distance`/`can_receive` predicates are used, so acceptance
        # decisions (and with them the RNG stream) are bit-identical to
        # validating via the full map.
        adjacency: List[List[int]] = [[] for _ in range(count)]
        for a in range(count):
            pos_a = positions[a]
            adj_a = adjacency[a]
            for b in range(a + 1, count):
                if can_receive(distance(pos_a, positions[b])):
                    adj_a.append(b)
                    adjacency[b].append(a)
        seen = [False] * count
        seen[0] = True
        frontier = deque((0,))
        reached = 1
        while frontier:
            for neighbour in adjacency[frontier.popleft()]:
                if not seen[neighbour]:
                    seen[neighbour] = True
                    reached += 1
                    frontier.append(neighbour)
        if reached == count:
            # Accepted: now build the full map (receive + sense sets)
            # exactly as before.
            return positions, attempt, GeometricConnectivity(positions, ranges)
    raise MeshGenError(
        f"no connected placement of {spec.nodes} nodes at density "
        f"{spec.density} in {spec.max_attempts} attempts (seed {spec.seed})"
    )


def _grid_positions(spec: MeshSpec) -> Dict[int, Position]:
    """Row-major rectangular lattice, as square as the count allows."""
    cols = max(1, math.ceil(math.sqrt(spec.nodes)))
    return {
        i: ((i % cols) * spec.spacing_m, (i // cols) * spec.spacing_m)
        for i in range(spec.nodes)
    }


def _tree_positions(spec: MeshSpec, rng: RngRegistry) -> Dict[int, Position]:
    """Multi-gateway forest: gateway baseline + fanned subtrees.

    Gateways 0..g-1 sit one spacing apart on the x axis (a reception
    chain). The remaining nodes are attached breadth-first, round-robin
    across gateways, each subtree fanning downward inside its own
    angular sector. Jitter rotates a child around its parent, so the
    parent-child distance stays exactly one spacing — links never break.
    """
    stream = rng.stream(f"topology.meshgen.tree.{spec.seed}")
    positions: Dict[int, Position] = {
        g: (g * spec.spacing_m, 0.0) for g in range(spec.gateways)
    }
    # Per-gateway FIFO of (node, level, sector_lo, sector_hi) attach points.
    attach: List[deque] = []
    sector = math.pi / 3.0
    for g in range(spec.gateways):
        attach.append(deque([(g, 0, -math.pi / 2 - sector / 2, -math.pi / 2 + sector / 2)]))
    slots: Dict[int, int] = {g: spec.fanout for g in range(spec.gateways)}
    next_id = spec.gateways
    g = 0
    while next_id < spec.nodes:
        queue = attach[g % spec.gateways]
        g += 1
        parent, level, lo, hi = queue[0]
        taken = spec.fanout - slots[parent]
        width = (hi - lo) / spec.fanout
        angle = lo + (taken + 0.5) * width + stream.uniform(-0.05, 0.05)
        px, py = positions[parent]
        child = next_id
        next_id += 1
        radius = spec.spacing_m
        positions[child] = (px + radius * math.cos(angle), py + radius * math.sin(angle))
        slots[parent] -= 1
        slots[child] = spec.fanout
        queue.append((child, level + 1, lo + taken * width, lo + (taken + 1) * width))
        if slots[parent] == 0:
            queue.popleft()
    return positions


def _select_gateways(spec: MeshSpec, positions: Dict[int, Position]) -> List[int]:
    """Gateway node ids, spread across the layout's bounding box.

    The tree kind builds its gateways explicitly (ids 0..g-1); mesh and
    grid pick the node nearest each of a fixed anchor sequence (corners
    first, then centre), deduplicated in id order.
    """
    if spec.kind == "tree":
        return list(range(spec.gateways))
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    lo_x, hi_x, lo_y, hi_y = min(xs), max(xs), min(ys), max(ys)
    anchors = [
        (lo_x, lo_y),
        (hi_x, hi_y),
        (lo_x, hi_y),
        (hi_x, lo_y),
        ((lo_x + hi_x) / 2, (lo_y + hi_y) / 2),
    ]
    if spec.gateways > len(anchors):
        raise MeshGenError(f"at most {len(anchors)} gateways supported, got {spec.gateways}")
    chosen: List[int] = []
    for anchor in anchors[: spec.gateways]:
        best = min(
            (node for node in sorted(positions) if node not in chosen),
            key=lambda node: (distance(positions[node], anchor), node),
        )
        chosen.append(best)
    return chosen


def generate_topology(spec: MeshSpec) -> MeshTopology:
    """Generate, validate and annotate one layout (no simulation yet)."""
    rng = RngRegistry(spec.seed)
    attempts = 1
    if spec.kind == "mesh":
        # The mesh sampler already validated the accepted placement.
        positions, attempts, connectivity = _mesh_positions(spec, rng)
    else:
        if spec.kind == "grid":
            positions = _grid_positions(spec)
        else:
            positions = _tree_positions(spec, rng)
        ranges = RangeModel(spec.tx_range_m, spec.sense_range_m)
        connectivity = GeometricConnectivity(positions, ranges)
        if not is_connected(connectivity):
            raise MeshGenError(f"generated {spec.kind} topology is not connected")
    topology = MeshTopology(
        spec=spec,
        positions=positions,
        gateways=_select_gateways(spec, positions),
        attempts=attempts,
        connectivity=connectivity,
    )
    for gateway in topology.gateways:
        depths, parents = bfs_tree(connectivity, gateway)
        topology.depths[gateway] = depths
        topology.parents[gateway] = parents
    for node in sorted(positions):
        if node in topology.gateways:
            continue
        topology.nearest[node] = min(
            topology.gateways, key=lambda gw: (topology.depths[gw][node], gw)
        )
    return topology


def build_mesh_network(
    spec: MeshSpec,
    mac_config: Optional[DcfConfig] = None,
    trace_exports: Optional[Tuple[str, ...]] = None,
) -> Tuple[Network, MeshTopology]:
    """Instantiate a fully wired :class:`Network` for a generated layout.

    Shortest-path next hops toward every gateway are installed for every
    node, straight from the per-gateway BFS trees (all entries of one
    destination come from one tree, so tables are loop-free by
    construction). Traffic attachment is the workload layer's job —
    see :mod:`repro.traffic.workloads`.
    """
    topology = generate_topology(spec)
    network = build_network(
        topology.connectivity,
        seed=spec.seed,
        mac_config=mac_config,
        description=(
            f"generated {spec.kind}: {spec.nodes} nodes, "
            f"{len(topology.gateways)} gateway(s), seed {spec.seed}"
        ),
        trace_exports=trace_exports,
    )
    for gateway in topology.gateways:
        parents = topology.parents[gateway]
        for node in sorted(parents):
            network.routing.set_next_hop(node, gateway, parents[node])
    return network, topology


def mean_degree(connectivity: ConnectivityMap) -> float:
    """Average reception-neighbour count over all nodes."""
    nodes = connectivity.nodes()
    if not nodes:
        return 0.0
    return sum(len(connectivity.receivers_of(n)) for n in nodes) / len(nodes)
