"""Simulation scenario 1: two 8-hop flows merging at a gateway (Figure 5).

Two parallel branches join at N4 and share the final four hops to the
gateway N0 — the canonical uplink pattern of a mesh backhaul:

* ``F1``: N12 -> N10 -> N8 -> N6 -> N4 -> N3 -> N2 -> N1 -> N0
* ``F2``: N11 -> N9  -> N7 -> N5 -> N4 -> N3 -> N2 -> N1 -> N0

Geometry: the shared trunk runs along the x-axis with 200 m spacing; the
branches fan out from N4 at +/-45 degrees, also with 200 m spacing.
Opposite branch nodes closest to the junction (N5, N6) are 283 m apart —
inside sensing range but outside reception range — and branch pairs
further out are mutually hidden, which is what makes the junction
contention interesting.

Paper timing: F1 active 5 s -> 2504 s, F2 active 605 s -> 1804 s.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.mac.dcf import DcfConfig
from repro.net.flow import Flow
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.units import seconds
from repro.topology.builders import Network, build_network
from repro.traffic.sources import CbrSource

#: Paper activity windows (seconds).
F1_START_S, F1_STOP_S = 5.0, 2504.0
F2_START_S, F2_STOP_S = 605.0, 1804.0

F1_PATH = [12, 10, 8, 6, 4, 3, 2, 1, 0]
F2_PATH = [11, 9, 7, 5, 4, 3, 2, 1, 0]


def scenario1_positions(spacing_m: float = 200.0) -> Dict[int, Tuple[float, float]]:
    """Node coordinates for the merge topology."""
    positions: Dict[int, Tuple[float, float]] = {
        i: (i * spacing_m, 0.0) for i in range(5)  # trunk N0..N4
    }
    step = spacing_m / math.sqrt(2.0)
    for rank, node in enumerate([6, 8, 10, 12], start=1):  # F1 branch, +45 deg
        positions[node] = (4 * spacing_m + rank * step, rank * step)
    for rank, node in enumerate([5, 7, 9, 11], start=1):  # F2 branch, -45 deg
        positions[node] = (4 * spacing_m + rank * step, -rank * step)
    return positions


def scenario1_network(
    seed: int = 0,
    rate_bps: float = 2_000_000.0,
    packet_bytes: int = 1000,
    time_scale: float = 1.0,
    mac_config: Optional[DcfConfig] = None,
    spacing_m: float = 200.0,
) -> Network:
    """Build scenario 1 with the paper's flow schedule.

    ``time_scale`` compresses the schedule (0.1 turns the 2504 s run
    into 250.4 s) so the full three-period structure — F1 alone, both
    flows, F1 alone again — survives in shorter reproductions.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    connectivity = GeometricConnectivity(scenario1_positions(spacing_m), RangeModel())
    network = build_network(
        connectivity,
        seed=seed,
        mac_config=mac_config,
        description="scenario 1: two 8-hop flows merging at a gateway (Figure 5)",
    )
    network.routing.install_path(F1_PATH)
    network.routing.install_path(F2_PATH)

    flow1 = Flow(
        "F1",
        src=12,
        dst=0,
        start_us=seconds(F1_START_S * time_scale),
        stop_us=seconds(F1_STOP_S * time_scale),
    )
    flow2 = Flow(
        "F2",
        src=11,
        dst=0,
        start_us=seconds(F2_START_S * time_scale),
        stop_us=seconds(F2_STOP_S * time_scale),
    )
    network.flows = {"F1": flow1, "F2": flow2}
    network.nodes[0].register_flow(flow1)
    network.nodes[0].register_flow(flow2)
    network.sources.append(
        CbrSource(network.engine, network.nodes[12], flow1, rate_bps, packet_bytes)
    )
    network.sources.append(
        CbrSource(network.engine, network.nodes[11], flow2, rate_bps, packet_bytes)
    )
    return network
