"""Simulation scenario 2: three flows with a hidden-terminal source (Figure 9).

The paper's figure gives node labels but no coordinates; we reconstruct a
28-node layout that preserves every property the evaluation exercises:

* ``F1``: a long 9-hop flow N0 -> N1 -> ... -> N9 along the x-axis;
* ``F2``: an 8-hop flow N10 -> ... -> N18 on a chain slanting down from
  the upper right, whose tail lands 300 m above F1's *source* region —
  the last hops of F2 share the medium with the first hops of F1;
* ``F3``: an 8-hop flow N19 -> ... -> N27 mirrored below the axis, whose
  tail lands 300 m below F1's *sink* region;
* the source of F1 (N0) and the source of F2 (N10) are mutually hidden
  (1.8 km apart) yet their flows contend where F2's tail meets F1's
  head — the hidden-source configuration the paper highlights;
* N10 and N19 carrier-sense only their own two down-chain neighbours
  (the paper: "N10 only directly competes with two nodes"), while N0
  additionally senses F2's tail relays, making it the most contended
  source.

Paper timing: F1, F2 active from 5 s; F3 joins at 1805 s; F2 and F3
leave at 3605 s; the run ends at 4500 s with F1 alone again.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.mac.dcf import DcfConfig
from repro.net.flow import Flow
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.units import seconds
from repro.topology.builders import Network, build_network
from repro.traffic.sources import CbrSource

#: Paper activity windows (seconds).
F1_START_S, F1_STOP_S = 5.0, 4500.0
F2_START_S, F2_STOP_S = 5.0, 3605.0
F3_START_S, F3_STOP_S = 1805.0, 3605.0

F1_PATH = list(range(0, 10))        # N0..N9
F2_PATH = list(range(10, 19))       # N10..N18
F3_PATH = list(range(19, 28))       # N19..N27


def scenario2_positions(spacing_m: float = 200.0) -> Dict[int, Tuple[float, float]]:
    """Coordinates for the three-chain reconstruction.

    The slant (75 m of descent per 200 m of advance, 213.6 m hop length)
    keeps each chain in the canonical regime — adjacent hops decode,
    2-hop neighbours carrier-sense, 3-hop neighbours are hidden — while
    bringing each tail within sensing range (300-525 m) of a segment of
    F1 without creating any cross-chain reception edge.
    """
    drop = 0.375 * spacing_m  # 75 m at the default spacing
    top = 4.5 * spacing_m     # 900 m at the default spacing
    positions: Dict[int, Tuple[float, float]] = {}
    for i in F1_PATH:  # horizontal chain at y = 0
        positions[i] = (i * spacing_m, 0.0)
    for rank, node in enumerate(F2_PATH):  # tail descends toward N0
        positions[node] = (8 * spacing_m - rank * spacing_m, top - rank * drop)
    for rank, node in enumerate(F3_PATH):  # mirrored, tail toward N9
        positions[node] = (spacing_m + rank * spacing_m, -top + rank * drop)
    return positions


def scenario2_network(
    seed: int = 0,
    rate_bps: float = 2_000_000.0,
    packet_bytes: int = 1000,
    time_scale: float = 1.0,
    mac_config: Optional[DcfConfig] = None,
    spacing_m: float = 200.0,
) -> Network:
    """Build scenario 2 with the paper's three-period flow schedule."""
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    connectivity = GeometricConnectivity(scenario2_positions(spacing_m), RangeModel())
    network = build_network(
        connectivity,
        seed=seed,
        mac_config=mac_config,
        description="scenario 2: three crossing flows with hidden sources (Figure 9)",
    )
    network.routing.install_path(F1_PATH)
    network.routing.install_path(F2_PATH)
    network.routing.install_path(F3_PATH)

    schedule = {
        "F1": (F1_PATH, F1_START_S, F1_STOP_S),
        "F2": (F2_PATH, F2_START_S, F2_STOP_S),
        "F3": (F3_PATH, F3_START_S, F3_STOP_S),
    }
    for flow_id, (path, start_s, stop_s) in schedule.items():
        flow = Flow(
            flow_id,
            src=path[0],
            dst=path[-1],
            start_us=seconds(start_s * time_scale),
            stop_us=seconds(stop_s * time_scale),
        )
        network.flows[flow_id] = flow
        network.nodes[path[-1]].register_flow(flow)
        network.sources.append(
            CbrSource(network.engine, network.nodes[path[0]], flow, rate_bps, packet_bytes)
        )
    return network
