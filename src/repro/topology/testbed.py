"""The 9-node, 4-building testbed of Section 4 (Figure 3).

Two flows over one physical chain:

* ``F1``: the 7-hop flow N0 -> N1 -> ... -> N7 over links l0..l6;
* ``F2``: the 4-hop flow N0' -> N4 -> N5 -> N6 -> N7 sharing F1's tail
  (the parking-lot configuration).

The paper measures heterogeneous link capacities (Table 1) with l2
(N2 -> N3) as the bottleneck at 408 kb/s. We reproduce that heterogeneity
with per-link erasure probabilities calibrated from the reported rates:
with saturating ARQ, goodput scales roughly with the per-attempt success
probability, so ``p_loss = 1 - rate/rate_best`` is a first-order
calibration anchored at the best measured link (l0, 845 kb/s). The
Table-1 bench then *measures* each simulated link so paper-vs-measured
can be compared honestly.

Connectivity is explicit: adjacent chain nodes decode each other, nodes
two hops apart carrier-sense each other, nodes three or more hops apart
are hidden — the standard 2-hop interference regime the analysis in
Section 6 also assumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mac.dcf import DcfConfig
from repro.net.flow import Flow
from repro.phy.connectivity import ExplicitConnectivity
from repro.sim.units import seconds
from repro.topology.builders import Network, build_network
from repro.traffic.sources import CbrSource

#: Measured mean capacity of links l0..l6 (Table 1), in kb/s.
TESTBED_LINK_RATES_KBPS: Tuple[float, ...] = (845.0, 672.0, 408.0, 748.0, 746.0, 805.0, 648.0)

#: Node ids. F1 chain is N0..N7; SRC2 is F2's source N0' attached at N4.
CHAIN: Tuple[str, ...] = ("N0", "N1", "N2", "N3", "N4", "N5", "N6", "N7")
SRC2 = "N0p"

#: The Madwifi firmware caps effective CWmin at 2^10 (Section 4.1).
HW_CW_CAP = 1024


def _erasure_for_rate(rate_kbps: float, best_kbps: float) -> float:
    """First-order loss calibration: goodput ~ (1 - p) * lossless rate."""
    p = 1.0 - rate_kbps / best_kbps
    return min(max(p, 0.0), 0.95)


def testbed_connectivity() -> ExplicitConnectivity:
    """Chain with 1-hop reception and 1-hop carrier sensing.

    The buildings-scale deployment puts consecutive routers barely in
    decoding range of each other, so carrier sensing reaches only the
    direct neighbours — the regime of [9]'s interference model, in
    which a node two hops downstream is hidden from the sender yet its
    transmissions corrupt reception at the intermediate node. This is
    what produces the first-relay buffer build-up of Figures 1 and 4.

    N0' (F2's source) is physically next to N4, so it additionally
    carrier-senses N4's direct neighbours N3 and N5 (sense-only edges:
    decodable frames capture through them).
    """
    nodes: List[str] = list(CHAIN) + [SRC2]
    rx_edges = [(CHAIN[i], CHAIN[i + 1]) for i in range(len(CHAIN) - 1)]
    rx_edges.append((SRC2, "N4"))
    sense_edges = [(SRC2, "N3"), (SRC2, "N5")]
    return ExplicitConnectivity(nodes, rx_edges, sense_edges)


def testbed_network(
    seed: int = 0,
    flows: Tuple[str, ...] = ("F1", "F2"),
    rate_bps: float = 2_000_000.0,
    packet_bytes: int = 1000,
    hw_cw_cap: Optional[int] = HW_CW_CAP,
    lossy_links: bool = True,
    f1_start_s: float = 0.0,
    f2_start_s: float = 0.0,
) -> Network:
    """Build the testbed with any subset of {F1, F2} active.

    ``hw_cw_cap`` models the Madwifi limitation; pass None to lift it
    (the paper's "once this limitation is removed" simulation check).
    """
    unknown = set(flows) - {"F1", "F2"}
    if unknown:
        raise ValueError(f"unknown flows: {sorted(unknown)}")
    mac_config = DcfConfig(hw_cw_cap=hw_cw_cap)
    network = build_network(
        testbed_connectivity(),
        seed=seed,
        mac_config=mac_config,
        description="9-node testbed (Figure 3)",
    )
    if lossy_links:
        best = max(TESTBED_LINK_RATES_KBPS)
        for i, rate in enumerate(TESTBED_LINK_RATES_KBPS):
            loss = _erasure_for_rate(rate, best)
            network.channel.set_link_loss(CHAIN[i], CHAIN[i + 1], loss)

    f1_path = list(CHAIN)
    f2_path = [SRC2, "N4", "N5", "N6", "N7"]
    network.routing.install_path(f1_path)
    network.routing.install_path(f2_path)

    if "F1" in flows:
        flow1 = Flow("F1", src="N0", dst="N7", start_us=seconds(f1_start_s))
        network.flows["F1"] = flow1
        network.nodes["N7"].register_flow(flow1)
        network.sources.append(
            CbrSource(network.engine, network.nodes["N0"], flow1, rate_bps, packet_bytes)
        )
    if "F2" in flows:
        flow2 = Flow("F2", src=SRC2, dst="N7", start_us=seconds(f2_start_s))
        network.flows["F2"] = flow2
        network.nodes["N7"].register_flow(flow2)
        network.sources.append(
            CbrSource(network.engine, network.nodes[SRC2], flow2, rate_bps, packet_bytes)
        )
    return network
