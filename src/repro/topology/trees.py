"""Tree backhaul topologies (the conclusion's deployment model).

Section 7 argues that mesh backhauls are typically trees rooted at the
gateway, with each node forwarding to at most a handful of successors —
which is why EZ-flow's per-successor queues map onto the four 802.11e
MAC queues. ``tree_backhaul`` builds such a downlink tree: the gateway
at the root sends one flow to every leaf, so interior nodes genuinely
hold several per-successor forwarding queues and EZ-flow adapts each
window independently.

Geometry: the root sits at the origin; each level fans out with enough
angular separation that siblings carrier-sense each other near the
parent but are not in reception range (the junction regime of
scenario 1).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.mac.dcf import DcfConfig
from repro.net.flow import Flow
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import Position, RangeModel
from repro.sim.units import seconds
from repro.topology.builders import Network, build_network
from repro.traffic.sources import CbrSource


def tree_positions(
    depth: int,
    fanout: int,
    spacing_m: float = 200.0,
) -> Tuple[Dict[int, Position], Dict[int, List[int]]]:
    """Node coordinates and child lists for a regular tree.

    Node 0 is the root; children are laid out on arcs of increasing
    radius, each subtree confined to its own angular sector so sibling
    branches separate quickly.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    positions: Dict[int, Position] = {0: (0.0, 0.0)}
    children: Dict[int, List[int]] = {0: []}
    next_id = 1
    # (node, level, sector_start, sector_end) in radians
    frontier = [(0, 0, -math.pi / 3, math.pi / 3)]
    while frontier:
        node, level, lo, hi = frontier.pop(0)
        if level >= depth:
            continue
        width = (hi - lo) / fanout
        for i in range(fanout):
            angle = lo + (i + 0.5) * width
            radius = (level + 1) * spacing_m
            child = next_id
            next_id += 1
            positions[child] = (
                radius * math.cos(angle),
                radius * math.sin(angle),
            )
            children[node].append(child)
            children[child] = []
            frontier.append((child, level + 1, lo + i * width, lo + (i + 1) * width))
    return positions, children


def tree_backhaul(
    depth: int = 3,
    fanout: int = 2,
    seed: int = 0,
    rate_bps: float = 400_000.0,
    packet_bytes: int = 1000,
    spacing_m: float = 200.0,
    mac_config: Optional[DcfConfig] = None,
) -> Network:
    """Downlink tree: the gateway (root) streams one flow per leaf.

    The per-leaf CBR rate defaults to a fraction of channel capacity so
    the aggregate at the root saturates the medium — the regime where
    per-successor adaptation matters.
    """
    positions, children = tree_positions(depth, fanout, spacing_m)
    connectivity = GeometricConnectivity(positions, RangeModel())
    network = build_network(
        connectivity,
        seed=seed,
        mac_config=mac_config,
        description=f"gateway tree, depth {depth}, fanout {fanout}",
    )

    # Install a route from the root to every leaf along the tree.
    def walk(node: int, path: List[int]) -> None:
        path = path + [node]
        if not children[node]:
            network.routing.install_path(path)
            flow = Flow(f"leaf{node}", src=0, dst=node)
            network.flows[flow.flow_id] = flow
            network.nodes[node].register_flow(flow)
            network.sources.append(
                CbrSource(
                    network.engine,
                    network.nodes[0],
                    flow,
                    rate_bps,
                    packet_bytes,
                )
            )
            return
        for child in children[node]:
            walk(child, path)

    for child in children[0]:
        walk(child, [0])
    return network


def leaves_of(network: Network) -> List[int]:
    """Leaf node ids of a tree built by :func:`tree_backhaul`."""
    return [flow.dst for flow in network.flows.values()]
