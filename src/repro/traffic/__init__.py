"""Traffic generation: CBR (the paper's workload), Poisson, on/off
bursts, and declarative workload mixes over arbitrary flow sets."""

from repro.traffic.onoff import OnOffSource
from repro.traffic.sources import CbrSource, PoissonSource, SaturatedSource
from repro.traffic.workloads import (
    WORKLOAD_KINDS,
    AttachedFlow,
    WorkloadSpec,
    attach_workload,
)

__all__ = [
    "CbrSource",
    "PoissonSource",
    "SaturatedSource",
    "OnOffSource",
    "WORKLOAD_KINDS",
    "AttachedFlow",
    "WorkloadSpec",
    "attach_workload",
]
