"""Traffic generation: CBR (the paper's workload), Poisson, on/off bursts."""

from repro.traffic.onoff import OnOffSource
from repro.traffic.sources import CbrSource, PoissonSource, SaturatedSource

__all__ = ["CbrSource", "PoissonSource", "SaturatedSource", "OnOffSource"]
