"""On/off bursty traffic for the traffic-matrix adaptivity ablations.

The paper's scenario schedules toggle whole flows on and off; this
source toggles *within* one flow on exponential on/off periods, which
stresses EZ-flow's countup/countdown hysteresis with load changes
faster than flow arrivals.
"""

from __future__ import annotations

from repro.net.flow import Flow
from repro.net.node import NodeStack
from repro.net.packet import DEFAULT_PACKET_BYTES
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import US_PER_S, seconds
from repro.traffic.sources import _SourceBase


class OnOffSource(_SourceBase):
    """CBR bursts alternating with silence (exponential period lengths)."""

    def __init__(
        self,
        engine: Engine,
        node: NodeStack,
        flow: Flow,
        rate_bps: float,
        rng: RngRegistry,
        mean_on_s: float = 20.0,
        mean_off_s: float = 10.0,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
    ):
        super().__init__(engine, node, flow, packet_bytes)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("period means must be positive")
        self.interval_us = max(1, int(round(packet_bytes * 8 * US_PER_S / rate_bps)))
        self.mean_on_us = seconds(mean_on_s)
        self.mean_off_us = seconds(mean_off_s)
        self.rng = rng.stream(f"traffic.onoff.{flow.flow_id}")
        self._on = True
        # The first on-period is sampled lazily on the first tick: a
        # phase end of 0 would make that tick toggle straight to OFF and
        # silence the source for ~mean_off_s, despite bursts starting on.
        self._phase_ends_at: int | None = None

    def _tick(self) -> None:
        now = self.engine.now
        if self.flow.stop_us is not None and now >= self.flow.stop_us:
            return
        if self._phase_ends_at is None:
            mean = self.mean_on_us
            self._phase_ends_at = now + max(1, int(self.rng.expovariate(1.0 / mean)))
        elif now >= self._phase_ends_at:
            self._on = not self._on
            mean = self.mean_on_us if self._on else self.mean_off_us
            self._phase_ends_at = now + max(1, int(self.rng.expovariate(1.0 / mean)))
        if self._on and self.flow.active_at(now):
            self.node.send(self._make_packet())
        self.engine.post(self.interval_us, self._tick)

    @property
    def is_on(self) -> bool:
        return self._on
