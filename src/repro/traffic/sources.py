"""Traffic sources.

The paper drives every flow with CBR at 2 Mb/s — i.e. well above channel
capacity, so the source queue is permanently backlogged ("saturated
mode"). ``CbrSource`` reproduces that; ``PoissonSource`` supports the
load-sweep ablations; ``SaturatedSource`` keeps the source MAC queue
topped up without modelling inter-arrival times at all (the greedy
access point of Figure 1).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.net.flow import Flow
from repro.net.node import NodeStack
from repro.net.packet import DEFAULT_PACKET_BYTES, Packet
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import US_PER_S


class _SourceBase:
    """Common flow bookkeeping for all sources."""

    def __init__(
        self,
        engine: Engine,
        node: NodeStack,
        flow: Flow,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
    ):
        if flow.src != node.node_id:
            raise ValueError("flow source must be the attached node")
        self.engine = engine
        self.node = node
        self.flow = flow
        self.packet_bytes = packet_bytes
        self._seq = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("source already started")
        self._started = True
        delay = max(0, self.flow.start_us - self.engine.now)
        self.engine.post(delay, self._tick)

    def _make_packet(self) -> Packet:
        self._seq = seq = self._seq + 1
        flow = self.flow
        flow.generated += 1  # note_generated() inlined (hot path)
        return Packet(
            flow_id=flow.flow_id,
            seq=seq,
            src=flow.src,
            dst=flow.dst,
            size_bytes=self.packet_bytes,
            created_at=self.engine.now,
        )

    def _tick(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class CbrSource(_SourceBase):
    """Constant bit rate source (paper default: 2 Mb/s, saturating)."""

    def __init__(
        self,
        engine: Engine,
        node: NodeStack,
        flow: Flow,
        rate_bps: float = 2_000_000.0,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
    ):
        super().__init__(engine, node, flow, packet_bytes)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps
        self.interval_us = max(1, int(round(packet_bytes * 8 * US_PER_S / rate_bps)))

    def _tick(self) -> None:
        engine = self.engine
        now = engine.now
        flow = self.flow
        stop = flow.stop_us
        if stop is not None and now >= stop:
            return
        # active_at(now) inlined: the stop bound is already checked.
        if now >= flow.start_us:
            self.node.send(self._make_packet())
        engine.post(self.interval_us, self._tick)


class PoissonSource(_SourceBase):
    """Poisson packet arrivals at a mean rate (load-sweep ablations)."""

    def __init__(
        self,
        engine: Engine,
        node: NodeStack,
        flow: Flow,
        rate_bps: float,
        rng: RngRegistry,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
    ):
        super().__init__(engine, node, flow, packet_bytes)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.mean_interval_us = packet_bytes * 8 * US_PER_S / rate_bps
        self.rng = rng.stream(f"traffic.poisson.{flow.flow_id}")

    def _tick(self) -> None:
        now = self.engine.now
        if self.flow.stop_us is not None and now >= self.flow.stop_us:
            return
        if self.flow.active_at(now):
            self.node.send(self._make_packet())
        delay = max(1, int(self.rng.expovariate(1.0 / self.mean_interval_us)))
        self.engine.post(delay, self._tick)


class SaturatedSource(_SourceBase):
    """Keeps the source queue full — the greedy access point of Figure 1.

    Refills the node's own-traffic queue to capacity on a fixed polling
    cadence; the MAC therefore never idles for lack of local traffic.
    """

    def __init__(
        self,
        engine: Engine,
        node: NodeStack,
        flow: Flow,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        poll_interval_us: int = 2_000,
    ):
        super().__init__(engine, node, flow, packet_bytes)
        self.poll_interval_us = poll_interval_us
        # Routing is static for the lifetime of a network, so the (queue,
        # entity) pair is resolved once instead of on every 2 ms poll.
        self._target = None

    def _tick(self) -> None:
        engine = self.engine
        now = engine.now
        flow = self.flow
        stop = flow.stop_us
        if stop is not None and now >= stop:
            return
        # active_at(now) inlined: the stop bound is already checked.
        if now >= flow.start_us:
            if self._target is None:
                next_hop = self.node.routing.next_hop(self.node.node_id, flow.dst)
                self._target = self.node.queue_for("own", next_hop)
            queue, entity = self._target
            if not queue.is_full():
                while not queue.is_full():
                    queue.push(self._make_packet())
                entity.notify_enqueue()
        engine.post(self.poll_interval_us, self._tick)
