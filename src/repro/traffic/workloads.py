"""Workload layer: declarative traffic mixes over arbitrary flows.

Topology modules wire networks; this module populates them with
traffic. A :class:`WorkloadSpec` names a workload kind and its knobs;
:func:`attach_workload` instantiates the matching sources (or windowed
transports) for a list of (source, destination) endpoints, registering
flows and reverse routes as needed. The generated-topology experiment
family (:mod:`repro.experiments.meshgen`) drives all of its scenarios
through this layer, so every workload kind is exercised on every
generator kind.

Kinds:

* ``cbr`` — constant bit rate at ``rate_bps`` (the paper's workload);
* ``onoff`` — exponential on/off bursts of CBR at ``rate_bps``
  (in-burst rate; the long-run average is ``rate_bps * on/(on+off)``);
* ``windowed`` — the go-back-N reliable transport, data forward and
  cumulative ACKs backward over the reversed route (the bidirectional
  regime);
* ``mixed`` — cycles cbr, onoff, windowed across the endpoint list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

from repro.net.flow import Flow
from repro.sim.units import seconds
from repro.topology.builders import Network
from repro.traffic.onoff import OnOffSource
from repro.traffic.sources import CbrSource
from repro.transport import TransportConfig, WindowedSender, install_reverse_routes

WORKLOAD_KINDS = ("cbr", "onoff", "windowed", "mixed")

_MIX_CYCLE = ("cbr", "onoff", "windowed")


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload recipe, applied per endpoint by :func:`attach_workload`."""

    kind: str = "cbr"
    rate_bps: float = 250_000.0
    packet_bytes: int = 1000
    mean_on_s: float = 4.0
    mean_off_s: float = 2.0
    window: int = 8
    ack_every: int = 2
    start_s: float = 0.0

    def __post_init__(self):
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; known: {', '.join(WORKLOAD_KINDS)}"
            )
        if self.rate_bps <= 0:
            raise ValueError("rate must be positive")

    def kind_for(self, index: int) -> str:
        """The concrete kind of endpoint ``index`` (resolves ``mixed``)."""
        if self.kind == "mixed":
            return _MIX_CYCLE[index % len(_MIX_CYCLE)]
        return self.kind


@dataclass
class AttachedFlow:
    """One attached endpoint: its flow, kind, and driving object."""

    flow: Flow
    kind: str
    driver: object  # CbrSource | OnOffSource | WindowedSender


def attach_workload(
    network: Network,
    endpoints: Sequence[Tuple[Hashable, Hashable]],
    spec: WorkloadSpec,
    flow_prefix: str = "W",
) -> List[AttachedFlow]:
    """Create one flow + driver per (src, dst) endpoint.

    Flows are named ``<prefix><index>`` in endpoint order; every driver
    is appended to ``network.sources`` so ``network.run`` starts it.
    Forward routes must already be installed (topology builders do
    this); the windowed kind additionally installs the reverse route
    for its ACK stream by reversing the materialised forward path.
    """
    attached: List[AttachedFlow] = []
    for index, (src, dst) in enumerate(endpoints):
        kind = spec.kind_for(index)
        flow = Flow(
            f"{flow_prefix}{index}", src=src, dst=dst, start_us=seconds(spec.start_s)
        )
        network.flows[flow.flow_id] = flow
        network.nodes[dst].register_flow(flow)
        if kind == "cbr":
            driver: object = CbrSource(
                network.engine,
                network.nodes[src],
                flow,
                rate_bps=spec.rate_bps,
                packet_bytes=spec.packet_bytes,
            )
        elif kind == "onoff":
            driver = OnOffSource(
                network.engine,
                network.nodes[src],
                flow,
                rate_bps=spec.rate_bps,
                rng=network.rng,
                mean_on_s=spec.mean_on_s,
                mean_off_s=spec.mean_off_s,
                packet_bytes=spec.packet_bytes,
            )
        else:
            forward_path = network.routing.path(src, dst)
            install_reverse_routes(network.routing, forward_path)
            driver = WindowedSender(
                network.engine,
                network.nodes[src],
                network.nodes[dst],
                flow,
                TransportConfig(
                    window=spec.window,
                    data_bytes=spec.packet_bytes,
                    ack_every=spec.ack_every,
                ),
            )
        network.sources.append(driver)
        attached.append(AttachedFlow(flow=flow, kind=kind, driver=driver))
    return attached
