"""Reliable, window-based transport over the mesh (TCP stand-in).

Section 2.3 claims EZ-flow handles "bi-directional traffic (e.g. TCP)
or uni-directional traffic" alike, because it acts at the MAC layer.
This package provides the bidirectional workload: a cumulative-ACK
sliding-window sender whose acknowledgement stream travels the reverse
multi-hop path, contending for the same medium.
"""

from repro.transport.window import WindowedSender, TransportConfig, install_reverse_routes

__all__ = ["WindowedSender", "TransportConfig", "install_reverse_routes"]
