"""Sliding-window reliable transport with cumulative ACKs.

A deliberately simple TCP stand-in (fixed window, go-back-N retransmit
on timeout, cumulative ACKs): enough to create the paper's
*bidirectional* regime, where a data stream and its acknowledgement
stream contend for the same multi-hop wireless path in opposite
directions — the workload the transport-layer related work (WCP, the
counter-starvation policy) targets and EZ-flow claims to handle at the
MAC layer without end-to-end feedback.

The receiver side lives at the destination node: every in-order data
packet advances the cumulative ACK, which is sent as a small packet
routed back to the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.net.flow import Flow
from repro.net.node import NodeStack
from repro.net.packet import Packet
from repro.net.routing import StaticRouting
from repro.sim.engine import Engine, Event
from repro.sim.units import seconds

ACK_BYTES = 40


@dataclass
class TransportConfig:
    """Window transport parameters.

    ``delayed_ack_s`` bounds how long the receiver may hold a partial
    ACK group (``ack_every > 1``) before flushing it — without it the
    final partial group of a transfer is never acknowledged and the
    sender only finishes after a full go-back-N timeout. It must stay
    well below ``retransmit_timeout_s`` for the flush to preempt
    pointless retransmissions. ``total_packets`` makes the transfer
    finite (None = stream until the flow's stop time).
    """

    window: int = 8
    data_bytes: int = 1000
    retransmit_timeout_s: float = 2.0
    ack_every: int = 1
    delayed_ack_s: float = 0.2
    total_packets: Optional[int] = None

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        if self.retransmit_timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if self.delayed_ack_s <= 0:
            raise ValueError("delayed-ACK flush timeout must be positive")
        if self.delayed_ack_s >= self.retransmit_timeout_s:
            raise ValueError("delayed-ACK flush must beat the retransmit timeout")
        if self.total_packets is not None and self.total_packets < 1:
            raise ValueError("total_packets must be >= 1 (or None)")


def install_reverse_routes(routing: StaticRouting, path: List[Hashable]) -> None:
    """Install the reverse of ``path`` so ACKs can travel back."""
    routing.install_path(list(reversed(path)))


class WindowedSender:
    """Go-back-N sender + receiver pair bound to one flow.

    The data flow's ``Flow`` object accounts delivered *data* packets;
    the ACK stream is internal (its packets use flow id
    ``"<flow>.ack"``) but is counted in ``acks_received``.
    """

    def __init__(
        self,
        engine: Engine,
        source: NodeStack,
        destination: NodeStack,
        flow: Flow,
        config: Optional[TransportConfig] = None,
    ):
        if flow.src != source.node_id or flow.dst != destination.node_id:
            raise ValueError("flow endpoints must match the given nodes")
        self.engine = engine
        self.source = source
        self.destination = destination
        self.flow = flow
        self.config = config or TransportConfig()
        # Sender state.
        self.next_seq = 1
        self.base = 1  # lowest unacknowledged sequence number
        self.acks_received = 0
        self.retransmissions = 0
        self._timer: Optional[Event] = None
        # Receiver state.
        self._expected = 1
        self._since_last_ack = 0
        self._ack_timer: Optional[Event] = None
        destination.delivered_callbacks.append(self._on_data_delivered)
        source.delivered_callbacks.append(self._on_ack_delivered)
        self._ack_flow = Flow(f"{flow.flow_id}.ack", src=destination.node_id, dst=source.node_id)
        source.register_flow(self._ack_flow)

    # -- sender ------------------------------------------------------------

    def start(self) -> None:
        """Begin sending at the flow's start time."""
        self.engine.schedule(max(0, self.flow.start_us - self.engine.now), self._fill)

    def _fill(self) -> None:
        """Send as much as the window (and the transfer size) allows.

        The retransmit timer is only (re)armed on progress — a new data
        packet entering the window — or when unacknowledged data has no
        timer at all. ACKs that open no send opportunity must not push
        an armed timer, or a trickle of them postpones go-back-N
        recovery indefinitely.
        """
        sent = False
        limit = self.config.total_packets
        while self.next_seq < self.base + self.config.window:
            if limit is not None and self.next_seq > limit:
                break
            if self.flow.stop_us is not None and self.engine.now >= self.flow.stop_us:
                break
            self.flow.note_generated()
            packet = Packet(
                flow_id=self.flow.flow_id,
                seq=self.next_seq,
                src=self.source.node_id,
                dst=self.destination.node_id,
                size_bytes=self.config.data_bytes,
                created_at=self.engine.now,
            )
            self.source.send(packet)
            self.next_seq += 1
            sent = True
        if self.base >= self.next_seq:
            # Nothing outstanding: a pending timeout would be a no-op.
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
        elif sent or self._timer is None:
            self._arm_timer()

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.engine.schedule(
            seconds(self.config.retransmit_timeout_s), self._timeout
        )

    def _timeout(self) -> None:
        """Go-back-N: resend the whole window from ``base``."""
        self._timer = None
        if self.base >= self.next_seq:
            return  # everything acknowledged
        if self.flow.stop_us is not None and self.engine.now >= self.flow.stop_us:
            return
        for seq in range(self.base, self.next_seq):
            self.retransmissions += 1
            packet = Packet(
                flow_id=self.flow.flow_id,
                seq=seq,
                src=self.source.node_id,
                dst=self.destination.node_id,
                size_bytes=self.config.data_bytes,
                created_at=self.engine.now,
            )
            self.source.send(packet)
        self._arm_timer()

    def _on_ack_delivered(self, packet: Packet, now: int) -> None:
        if packet.flow_id != self._ack_flow.flow_id:
            return
        self.acks_received += 1
        cumulative = packet.seq
        if cumulative >= self.base:
            self.base = cumulative + 1
            self._fill()

    # -- receiver ---------------------------------------------------------

    def _on_data_delivered(self, packet: Packet, now: int) -> None:
        if packet.flow_id != self.flow.flow_id:
            return
        if packet.seq == self._expected:
            self._expected += 1
            self._since_last_ack += 1
            if self._since_last_ack >= self.config.ack_every:
                self._send_ack()
            elif self._ack_timer is None:
                # Partial group: flush it after a bounded delay so the
                # tail of a transfer completes without waiting out a
                # go-back-N timeout and its retransmissions.
                self._ack_timer = self.engine.schedule(
                    seconds(self.config.delayed_ack_s), self._flush_ack
                )
        elif packet.seq < self._expected:
            # Duplicate (go-back-N retransmission): re-ACK cumulatively.
            self._send_ack()

    def _flush_ack(self) -> None:
        self._ack_timer = None
        if self._since_last_ack > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._since_last_ack = 0
        ack = Packet(
            flow_id=self._ack_flow.flow_id,
            seq=self._expected - 1,
            src=self.destination.node_id,
            dst=self.source.node_id,
            size_bytes=ACK_BYTES,
            created_at=self.engine.now,
        )
        self.destination.send(ack)

    # -- metrics -------------------------------------------------------------

    @property
    def delivered_in_order(self) -> int:
        return self._expected - 1

    @property
    def complete(self) -> bool:
        """True when a finite transfer is fully acknowledged."""
        limit = self.config.total_packets
        return limit is not None and self.base > limit
