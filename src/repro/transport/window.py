"""Sliding-window reliable transport with cumulative ACKs.

A deliberately simple TCP stand-in (fixed window, go-back-N retransmit
on timeout, cumulative ACKs): enough to create the paper's
*bidirectional* regime, where a data stream and its acknowledgement
stream contend for the same multi-hop wireless path in opposite
directions — the workload the transport-layer related work (WCP, the
counter-starvation policy) targets and EZ-flow claims to handle at the
MAC layer without end-to-end feedback.

The receiver side lives at the destination node: every in-order data
packet advances the cumulative ACK, which is sent as a small packet
routed back to the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.net.flow import Flow
from repro.net.node import NodeStack
from repro.net.packet import Packet
from repro.net.routing import StaticRouting
from repro.sim.engine import Engine, Event
from repro.sim.units import seconds

ACK_BYTES = 40


@dataclass
class TransportConfig:
    """Window transport parameters."""

    window: int = 8
    data_bytes: int = 1000
    retransmit_timeout_s: float = 2.0
    ack_every: int = 1

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        if self.retransmit_timeout_s <= 0:
            raise ValueError("timeout must be positive")


def install_reverse_routes(routing: StaticRouting, path: List[Hashable]) -> None:
    """Install the reverse of ``path`` so ACKs can travel back."""
    routing.install_path(list(reversed(path)))


class WindowedSender:
    """Go-back-N sender + receiver pair bound to one flow.

    The data flow's ``Flow`` object accounts delivered *data* packets;
    the ACK stream is internal (its packets use flow id
    ``"<flow>.ack"``) but is counted in ``acks_received``.
    """

    def __init__(
        self,
        engine: Engine,
        source: NodeStack,
        destination: NodeStack,
        flow: Flow,
        config: Optional[TransportConfig] = None,
    ):
        if flow.src != source.node_id or flow.dst != destination.node_id:
            raise ValueError("flow endpoints must match the given nodes")
        self.engine = engine
        self.source = source
        self.destination = destination
        self.flow = flow
        self.config = config or TransportConfig()
        # Sender state.
        self.next_seq = 1
        self.base = 1  # lowest unacknowledged sequence number
        self.acks_received = 0
        self.retransmissions = 0
        self._timer: Optional[Event] = None
        # Receiver state.
        self._expected = 1
        self._since_last_ack = 0
        destination.delivered_callbacks.append(self._on_data_delivered)
        source.delivered_callbacks.append(self._on_ack_delivered)
        self._ack_flow = Flow(f"{flow.flow_id}.ack", src=destination.node_id, dst=source.node_id)
        source.register_flow(self._ack_flow)

    # -- sender ------------------------------------------------------------

    def start(self) -> None:
        """Begin sending at the flow's start time."""
        self.engine.schedule(max(0, self.flow.start_us - self.engine.now), self._fill)

    def _fill(self) -> None:
        """Send as much as the window allows."""
        while self.next_seq < self.base + self.config.window:
            if self.flow.stop_us is not None and self.engine.now >= self.flow.stop_us:
                return
            self.flow.note_generated()
            packet = Packet(
                flow_id=self.flow.flow_id,
                seq=self.next_seq,
                src=self.source.node_id,
                dst=self.destination.node_id,
                size_bytes=self.config.data_bytes,
                created_at=self.engine.now,
            )
            self.source.send(packet)
            self.next_seq += 1
        self._arm_timer()

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.engine.schedule(
            seconds(self.config.retransmit_timeout_s), self._timeout
        )

    def _timeout(self) -> None:
        """Go-back-N: resend the whole window from ``base``."""
        self._timer = None
        if self.base >= self.next_seq:
            return  # everything acknowledged
        if self.flow.stop_us is not None and self.engine.now >= self.flow.stop_us:
            return
        for seq in range(self.base, self.next_seq):
            self.retransmissions += 1
            packet = Packet(
                flow_id=self.flow.flow_id,
                seq=seq,
                src=self.source.node_id,
                dst=self.destination.node_id,
                size_bytes=self.config.data_bytes,
                created_at=self.engine.now,
            )
            self.source.send(packet)
        self._arm_timer()

    def _on_ack_delivered(self, packet: Packet, now: int) -> None:
        if packet.flow_id != self._ack_flow.flow_id:
            return
        self.acks_received += 1
        cumulative = packet.seq
        if cumulative >= self.base:
            self.base = cumulative + 1
            self._fill()

    # -- receiver ---------------------------------------------------------

    def _on_data_delivered(self, packet: Packet, now: int) -> None:
        if packet.flow_id != self.flow.flow_id:
            return
        if packet.seq == self._expected:
            self._expected += 1
            self._since_last_ack += 1
            if self._since_last_ack >= self.config.ack_every:
                self._send_ack()
        elif packet.seq < self._expected:
            # Duplicate (go-back-N retransmission): re-ACK cumulatively.
            self._send_ack()

    def _send_ack(self) -> None:
        self._since_last_ack = 0
        ack = Packet(
            flow_id=self._ack_flow.flow_id,
            seq=self._expected - 1,
            src=self.destination.node_id,
            dst=self.source.node_id,
            size_bytes=ACK_BYTES,
            created_at=self.engine.now,
        )
        self.destination.send(ack)

    # -- metrics -------------------------------------------------------------

    @property
    def delivered_in_order(self) -> int:
        return self._expected - 1
