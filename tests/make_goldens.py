"""Regenerate the golden byte-identity exports under ``tests/goldens/``.

Run from the repo root::

    PYTHONPATH=src python tests/make_goldens.py

The goldens pin the exact bytes of two representative exports — one
small canned figure run and one generated-topology (meshgen) run — so
any change to simulator semantics, RNG draw order, or export formatting
shows up as a byte diff in ``tests/test_golden_exports.py``. Only
regenerate them when an *intentional* behaviour change is being made,
and say so in the commit message.
"""

from __future__ import annotations

import os
import shutil
import sys

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: The pinned runs: (spec id, kwargs, directory name). Kwargs are chosen
#: to keep each run under ~1 s while still exercising the MAC/PHY stack,
#: the EZ-flow controller, and (via the mixed workload) the windowed
#: transport's cancellable timers.
GOLDEN_RUNS = (
    ("fig1", {"duration_s": 40.0, "warmup_s": 10.0}, "fig1_short"),
    (
        "meshgen",
        {
            "topology": "mesh",
            "nodes": 16,
            "flows": 3,
            "workload": "mixed",
            "algorithm": "ezflow",
            "duration_s": 6.0,
            "warmup_s": 2.0,
            "seed": 11,
        },
        "meshgen_mesh16",
    ),
)


def main() -> int:
    from repro.experiments.export import export_result
    from repro.experiments.runner import execute_request, request_for

    for spec_id, kwargs, dir_name in GOLDEN_RUNS:
        target = os.path.join(GOLDEN_DIR, dir_name)
        if os.path.isdir(target):
            shutil.rmtree(target)
        record = execute_request(request_for(spec_id, kwargs))
        export_result(record.result, GOLDEN_DIR, dir_name)
        files = sorted(os.listdir(target))
        print(f"{dir_name}: {len(files)} file(s) ({', '.join(files)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
