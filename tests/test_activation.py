"""Tests for the slot winner process against Table 4's closed forms."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.activation import (
    activation_distribution,
    sample_activation,
    successful_links,
)
from repro.analysis.regions import REGIONS_4HOP, region_of, table4_distribution

INF = float("inf")

CW_CASES = [
    (16, 16, 16, 16),
    (128, 16, 16, 16),
    (2048, 32, 16, 64),
    (16, 32768, 16, 32),
    (1024, 1024, 16, 16),
]


def buffers_for_region(region):
    signature = REGIONS_4HOP[region]
    return [INF] + [10.0 if s else 0.0 for s in signature]


class TestTable4Agreement:
    @pytest.mark.parametrize("region", sorted(REGIONS_4HOP))
    @pytest.mark.parametrize("cw", CW_CASES)
    def test_closed_form_matches_winner_process(self, region, cw):
        process = activation_distribution(buffers_for_region(region), cw, 4)
        closed = table4_distribution(region, cw)
        assert set(process) == {k for k, v in closed.items() if v > 0}
        for pattern, probability in closed.items():
            assert process.get(pattern, 0.0) == pytest.approx(probability)

    @pytest.mark.parametrize("region", sorted(REGIONS_4HOP))
    def test_distribution_normalized(self, region):
        for cw in CW_CASES:
            total = sum(table4_distribution(region, cw).values())
            assert total == pytest.approx(1.0)

    def test_region_a_source_always_wins(self):
        assert table4_distribution("A", (16,) * 4) == {(1, 0, 0, 0): 1.0}

    def test_region_d_parallel_links(self):
        assert table4_distribution("D", (16,) * 4) == {(1, 0, 0, 1): 1.0}

    def test_region_b_weights_inverse_to_cw(self):
        dist = table4_distribution("B", (64, 16, 16, 16))
        # Source with cw=64 wins only 16/(64+16) = 1/5 of slots.
        assert dist[(1, 0, 0, 0)] == pytest.approx(0.2)


class TestRegionOf:
    def test_all_signatures(self):
        assert region_of(0, 0, 0) == "A"
        assert region_of(5, 0, 0) == "B"
        assert region_of(0, 5, 0) == "C"
        assert region_of(0, 0, 5) == "D"
        assert region_of(5, 5, 0) == "E"
        assert region_of(5, 0, 5) == "F"
        assert region_of(0, 5, 5) == "G"
        assert region_of(5, 5, 5) == "H"


class TestSuccessfulLinks:
    def test_lone_transmitter_succeeds(self):
        assert successful_links({0}, 4) == (1, 0, 0, 0)

    def test_two_hop_downstream_kills_link(self):
        # node 2 transmitting corrupts link 0 at receiver node 1
        assert successful_links({0, 2}, 4) == (0, 0, 1, 0)

    def test_three_hop_separation_coexists(self):
        assert successful_links({0, 3}, 4) == (1, 0, 0, 1)

    def test_chain_of_transmitters(self):
        # nodes 0, 2, 4 in a 6-hop chain: 0 and 2 killed by their i+2
        assert successful_links({0, 2, 4}, 6) == (0, 0, 0, 0, 1, 0)


class TestSampling:
    def test_sampler_matches_exact_distribution(self):
        rng = random.Random(11)
        cw = (64, 16, 16, 16)
        buffers = buffers_for_region("H")
        exact = activation_distribution(buffers, cw, 4)
        counts = {}
        n = 20_000
        for _ in range(n):
            pattern = sample_activation(buffers, cw, 4, rng)
            counts[pattern] = counts.get(pattern, 0) + 1
        for pattern, probability in exact.items():
            assert counts.get(pattern, 0) / n == pytest.approx(probability, abs=0.02)

    def test_sampler_only_emits_supported_patterns(self):
        rng = random.Random(5)
        for region in REGIONS_4HOP:
            buffers = buffers_for_region(region)
            support = set(table4_distribution(region, (16,) * 4))
            for _ in range(200):
                assert sample_activation(buffers, (16,) * 4, 4, rng) in support


class TestGeneralK:
    @given(
        st.integers(2, 7),
        st.lists(st.sampled_from([16, 32, 256, 2048]), min_size=7, max_size=7),
        st.lists(st.integers(0, 3), min_size=6, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_distribution_normalized_any_k(self, hops, cw, relay_buffers):
        buffers = [INF] + [float(b) for b in relay_buffers[: hops - 1]]
        dist = activation_distribution(buffers, cw[:hops], hops)
        assert sum(dist.values()) == pytest.approx(1.0)

    @given(
        st.integers(2, 7),
        st.lists(st.integers(0, 3), min_size=6, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_empty_relays_never_transmit(self, hops, relay_buffers):
        buffers = [INF] + [float(b) for b in relay_buffers[: hops - 1]]
        dist = activation_distribution(buffers, (16,) * hops, hops)
        for pattern in dist:
            for i in range(1, hops):
                if buffers[i] == 0:
                    assert pattern[i] == 0

    def test_cw_must_cover_all_transmitters(self):
        with pytest.raises(ValueError):
            activation_distribution([INF, 0.0], (16,), 2)
