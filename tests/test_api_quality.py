"""Library-quality checks: importability, docstrings, export hygiene.

A reproduction meant for adoption must hold to library standards: every
public module, class and function documented; every ``__all__`` entry
real; every subpackage importable in isolation.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.phy",
    "repro.mac",
    "repro.net",
    "repro.traffic",
    "repro.transport",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
    "repro.metrics",
    "repro.topology",
    "repro.experiments",
    "repro.results",
    "repro.service",
]


def iter_modules():
    seen = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        seen.append(package)
        for info in pkgutil.iter_modules(package.__path__, package_name + "."):
            if info.name.endswith("__main__"):
                continue
            seen.append(importlib.import_module(info.name))
    return seen


class TestImports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_package_importable(self, package_name):
        importlib.import_module(package_name)

    def test_all_exports_resolve(self):
        for module in iter_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_version_exposed(self):
        assert repro.__version__


class TestDocstrings:
    def test_every_module_documented(self):
        for module in iter_modules():
            assert module.__doc__, f"{module.__name__} lacks a module docstring"

    def test_public_classes_documented(self):
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"

    def test_public_functions_documented(self):
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"

    def test_public_methods_documented(self):
        undocumented = []
        for module in iter_modules():
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != module.__name__:
                    continue
                for method_name, method in vars(cls).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method) or method.__doc__:
                        continue
                    # An override inherits its contract's documentation.
                    inherited = any(
                        getattr(base, method_name, None) is not None
                        and getattr(getattr(base, method_name), "__doc__", None)
                        for base in cls.__mro__[1:]
                    )
                    if not inherited:
                        undocumented.append(
                            f"{module.__name__}.{cls_name}.{method_name}"
                        )
        assert not undocumented, undocumented
