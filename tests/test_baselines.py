"""Tests for the comparison mechanisms: penalty-q and DiffQ-style."""

import pytest

from repro.baselines.diffq import DIFFQ_HEADER_BYTES, DiffQConfig, attach_diffq
from repro.baselines.penalty import PenaltyStrategy, apply_penalty
from repro.sim.units import seconds
from repro.topology.linear import linear_chain


class TestPenaltyStrategy:
    def test_source_cw_from_q(self):
        strategy = PenaltyStrategy(q=1 / 8, cw_relay=16)
        assert strategy.source_cw() == 128

    def test_q_one_means_no_throttling(self):
        assert PenaltyStrategy(q=1.0).source_cw() == 16

    def test_q_range_validated(self):
        with pytest.raises(ValueError):
            PenaltyStrategy(q=0.0)
        with pytest.raises(ValueError):
            PenaltyStrategy(q=1.5)

    def test_cw_relay_power_of_two(self):
        with pytest.raises(ValueError):
            PenaltyStrategy(q=0.5, cw_relay=20)

    def test_source_cw_capped_at_maxcw(self):
        strategy = PenaltyStrategy(q=1e-9, cw_relay=16, maxcw=1024)
        assert strategy.source_cw() == 1024

    def test_apply_sets_entity_windows(self):
        network = linear_chain(hops=3, seed=1)
        network.run(until_us=seconds(2))  # create entities
        apply_penalty(network.nodes, sources=[0], q=1 / 8)
        source_entity = network.nodes[0].mac.entities[0]
        relay_entity = network.nodes[1].mac.entities[0]
        assert source_entity.cwmin == 128
        assert relay_entity.cwmin == 16

    def test_penalty_stabilizes_chain(self):
        """The static solution of [9]: q = 16/128 stabilizes 4 hops."""
        network = linear_chain(hops=4, seed=3)
        network.run(until_us=seconds(2))
        apply_penalty(network.nodes, sources=[0], q=16 / 128)
        network.run(until_us=seconds(90))
        assert network.nodes[1].total_buffer_occupancy() <= 25


class TestDiffQ:
    def test_config_maps_differential_to_class(self):
        config = DiffQConfig()
        assert config.cwmin_for(25) == 16
        assert config.cwmin_for(15) == 32
        assert config.cwmin_for(5) == 64
        assert config.cwmin_for(-10) == 128

    def test_attach_creates_controller_per_node(self):
        network = linear_chain(hops=3, seed=1)
        controllers = attach_diffq(network.nodes)
        assert set(controllers) == set(network.nodes)

    def test_piggybacked_backlog_read_by_neighbors(self):
        network = linear_chain(hops=3, seed=1)
        controllers = attach_diffq(network.nodes)
        network.run(until_us=seconds(10))
        # node 1 must have learned node 2's backlog via piggybacking
        assert 2 in controllers[1].neighbor_backlog

    def test_header_overhead_accounted(self):
        """DiffQ costs bytes on every data frame — the overhead EZ-flow
        avoids. The controller must account it per transmission attempt."""
        network = linear_chain(hops=3, seed=1)
        controllers = attach_diffq(network.nodes)
        network.run(until_us=seconds(10))
        attempts = network.nodes[0].mac.entities[0].tx_attempts
        assert controllers[0].header_overhead_bytes == attempts * DIFFQ_HEADER_BYTES
        assert controllers[0].header_overhead_bytes > 0

    def test_diffq_improves_chain_throughput(self):
        """Backpressure maintains queue *gradients* (buffers stay
        populated, unlike EZ-flow's near-empty equilibrium) but it must
        throttle the source relative to the relays and raise end-to-end
        throughput on the unstable 4-hop chain."""
        std = linear_chain(hops=4, seed=3)
        std.run(until_us=seconds(90))
        std_thr = std.flow("F1").throughput_bps(seconds(20), seconds(90))

        dq = linear_chain(hops=4, seed=3)
        attach_diffq(dq.nodes)
        dq.run(until_us=seconds(90))
        dq_thr = dq.flow("F1").throughput_bps(seconds(20), seconds(90))
        source_cw = dq.nodes[0].mac.entities[0].cwmin
        relay_cw = dq.nodes[1].mac.entities[0].cwmin
        assert source_cw > relay_cw
        assert dq_thr > 1.5 * std_thr
