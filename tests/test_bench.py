"""Tests for the persistent benchmark subsystem (repro.bench)."""

import json

import pytest

from repro.bench import (
    INDEX_CASE,
    build_suite,
    compare_reports,
    dump_report,
    hardware_index,
    load_report,
    regressions,
    render_comparison,
    run_case,
    run_suite,
)
from repro.bench.micro import MICRO_CASES
from repro.bench.__main__ import main as bench_main


class TestSuiteDeclaration:
    def test_names_are_unique(self):
        names = [case.name for case in build_suite()]
        assert len(names) == len(set(names))

    def test_declared_scaling_curve(self):
        names = {case.name for case in build_suite()}
        for nodes in (16, 25, 49, 100):
            assert f"meshgen.n{nodes}" in names

    def test_quick_subset_is_nonempty_and_fast_cases_only(self):
        quick = [case for case in build_suite() if case.quick]
        assert quick, "CI quick lane needs cases"
        assert INDEX_CASE in {case.name for case in quick}

    def test_every_figure_has_a_case(self):
        names = {case.name for case in build_suite()}
        for spec_id in ("fig1", "fig4", "table2", "scenario1", "stability"):
            assert f"figure.{spec_id}" in names

    def test_micro_cases_execute(self):
        for name, (fn, kwargs) in MICRO_CASES.items():
            small = {k: min(v, 2_000) if isinstance(v, int) else v for k, v in kwargs.items()}
            stats = fn(**small)
            assert stats["events"] > 0, name

    def test_store_case_declared_and_executes(self):
        names = {case.name for case in build_suite()}
        assert "results.store.n1000" in names
        assert "results.store.quick.n200" in {
            case.name for case in build_suite() if case.quick
        }
        from repro.bench.storecase import results_store

        stats = results_store(runs=10)
        # 10 inserts + 10 streamed frame rows + compare table lines.
        assert stats["events"] > 20


class TestRunAndReport:
    def test_micro_case_entry_shape(self):
        case = next(c for c in build_suite() if c.name == INDEX_CASE)
        entry = run_case(case, repeat=1)
        assert entry["wall_s"] > 0
        assert entry["events"] > 0
        assert entry["events_per_s"] > 0
        assert entry["kwargs"] == case.kwargs_dict

    def test_run_suite_filter_and_dump_roundtrip(self, tmp_path):
        report = run_suite(quick=True, only="engine_post")
        assert list(report["cases"]) == [INDEX_CASE]
        path = tmp_path / "bench.json"
        dump_report(report, str(path))
        assert load_report(str(path)) == report
        # Deterministic serialization: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == report


class TestCompare:
    def fake_report(self, wall, rate):
        return {
            "schema": "repro.bench/1",
            "suite": "quick",
            "cases": {
                INDEX_CASE: {
                    "kind": "micro",
                    "kwargs": {"events": 10},
                    "wall_s": 1.0,
                    "events": 10,
                    "events_per_s": rate,
                },
                "meshgen.n49": {
                    "kind": "scenario",
                    "kwargs": {"nodes": 49},
                    "wall_s": wall,
                    "events": 100,
                    "events_per_s": 100 / wall,
                },
            },
        }

    def test_speedup_and_normalisation(self):
        old = self.fake_report(wall=2.0, rate=1000.0)
        new = self.fake_report(wall=1.0, rate=1000.0)
        rows = compare_reports(old, new)
        row = next(r for r in rows if r["case"] == "meshgen.n49")
        assert row["speedup"] == pytest.approx(2.0)
        assert row["norm_speedup"] == pytest.approx(2.0)
        # A machine twice as fast doubles every raw speedup for equal
        # code; normalisation divides the index back out.
        fast = self.fake_report(wall=1.0, rate=2000.0)
        row = next(
            r for r in compare_reports(old, fast) if r["case"] == "meshgen.n49"
        )
        assert row["speedup"] == pytest.approx(2.0)
        assert row["norm_speedup"] == pytest.approx(1.0)
        assert hardware_index(old, fast) == pytest.approx(2.0)

    def test_kwargs_mismatch_excluded(self):
        old = self.fake_report(2.0, 1000.0)
        new = self.fake_report(1.0, 1000.0)
        new["cases"]["meshgen.n49"]["kwargs"] = {"nodes": 50}
        names = [r["case"] for r in compare_reports(old, new)]
        assert "meshgen.n49" not in names

    def test_regression_detection(self):
        old = self.fake_report(1.0, 1000.0)
        slow = self.fake_report(1.5, 1000.0)
        rows = compare_reports(old, slow)
        assert regressions(rows, tolerance=0.30)
        assert not regressions(rows, tolerance=0.60)
        assert "meshgen.n49" in render_comparison(rows, 1.0)


class TestCli:
    def test_quick_filtered_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        rc = bench_main(["--quick", "--only", "engine_post", "--out", str(out)])
        assert rc == 0
        report = load_report(str(out))
        assert INDEX_CASE in report["cases"]

    def test_compare_gate_passes_against_itself(self, tmp_path, capsys):
        out = tmp_path / "b.json"
        assert bench_main(["--quick", "--only", "engine_post", "--out", str(out)]) == 0
        rc = bench_main(
            [
                "--load",
                str(out),
                "--compare",
                str(out),
                "--max-regression",
                "0.30",
            ]
        )
        assert rc == 0
        assert "speedup" in capsys.readouterr().out

    def test_compare_without_common_cases_fails(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        dump_report({"schema": "repro.bench/1", "cases": {}}, str(a))
        dump_report({"schema": "repro.bench/1", "cases": {}}, str(b))
        assert bench_main(["--load", str(a), "--compare", str(b)]) == 1
