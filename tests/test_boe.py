"""Tests for the Buffer Occupancy Estimator (Algorithm 1, BOE module)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.boe import BufferOccupancyEstimator


class TestFifoEstimation:
    def test_estimate_counts_packets_behind_overheard(self):
        boe = BufferOccupancyEstimator("next")
        for checksum in (10, 20, 30, 40):
            boe.note_sent(checksum)
        # Successor forwards the first packet: 3 remain queued behind it.
        assert boe.note_overheard(10) == 3

    def test_estimate_zero_when_last_sent_forwarded(self):
        boe = BufferOccupancyEstimator("next")
        boe.note_sent(1)
        boe.note_sent(2)
        assert boe.note_overheard(2) == 0

    def test_sequence_of_overhearings_tracks_fifo(self):
        boe = BufferOccupancyEstimator("next")
        for checksum in range(1, 6):
            boe.note_sent(checksum)
        assert boe.note_overheard(1) == 4
        assert boe.note_overheard(2) == 3
        boe.note_sent(6)
        assert boe.note_overheard(3) == 3  # 4, 5, 6 still queued

    def test_unmatched_checksum_returns_none(self):
        boe = BufferOccupancyEstimator("next")
        boe.note_sent(1)
        assert boe.note_overheard(999) is None
        assert boe.overheard_unmatched == 1

    def test_forwarded_entries_pruned(self):
        boe = BufferOccupancyEstimator("next")
        for checksum in (1, 2, 3):
            boe.note_sent(checksum)
        boe.note_overheard(2)
        # 1 and 2 are gone; overhearing 1 again (e.g. stale dup) unmatched
        assert boe.note_overheard(1) is None
        assert boe.pending == 1

    def test_exact_simulation_of_successor_queue(self):
        """Drive a virtual FIFO successor; BOE must recover its size."""
        boe = BufferOccupancyEstimator("next")
        successor_queue = []
        next_checksum = 0
        import random

        rng = random.Random(3)
        for _ in range(500):
            if rng.random() < 0.55:
                next_checksum += 1
                boe.note_sent(next_checksum)
                successor_queue.append(next_checksum)
            elif successor_queue:
                forwarded = successor_queue.pop(0)
                estimate = boe.note_overheard(forwarded)
                assert estimate == len(successor_queue)


class TestHistoryLimits:
    def test_history_overwrites_oldest(self):
        boe = BufferOccupancyEstimator("next", history_size=3)
        for checksum in (1, 2, 3, 4):
            boe.note_sent(checksum)
        assert boe.pending == 3
        assert boe.note_overheard(1) is None  # evicted
        assert boe.note_overheard(2) == 2

    def test_minimum_history_size(self):
        with pytest.raises(ValueError):
            BufferOccupancyEstimator("next", history_size=1)

    def test_paper_default_history_1000(self):
        boe = BufferOccupancyEstimator("next")
        assert boe.history_size == 1000


class TestChecksumCollisions:
    def test_collision_matches_most_recent(self):
        boe = BufferOccupancyEstimator("next")
        boe.note_sent(7)
        boe.note_sent(8)
        boe.note_sent(7)  # 16-bit collision with the first packet
        boe.note_sent(9)
        # Successor forwards the *first* 7; reverse search matches the
        # most recent 7, biasing low (1 instead of 3) — bounded error.
        assert boe.note_overheard(7) == 1

    def test_checksums_masked_to_16_bits(self):
        boe = BufferOccupancyEstimator("next")
        boe.note_sent(0x1FFFF)  # masked to 0xFFFF
        assert boe.note_overheard(0xFFFF) == 0

    def test_collision_match_prunes_history_prefix(self):
        """Matching the most recent occurrence drops everything before it."""
        boe = BufferOccupancyEstimator("next")
        for checksum in (7, 8, 7, 9):
            boe.note_sent(checksum)
        assert boe.note_overheard(7) == 1  # matches the second 7
        # 7, 8, 7 are pruned: only 9 is still believed queued, and the
        # first 7/8 can no longer match stale or duplicate overhearings.
        assert boe.pending == 1
        assert boe.note_overheard(7) is None
        assert boe.note_overheard(8) is None
        assert boe.note_overheard(9) == 0
        assert boe.pending == 0

    def test_duplicate_checksum_survives_pruning_of_older_copy(self):
        """Pruning an older duplicate must not forget the newer one."""
        boe = BufferOccupancyEstimator("next")
        for checksum in (5, 1, 2, 5):
            boe.note_sent(checksum)
        # Overhearing 1 prunes the prefix (5, 1); the *newer* 5 remains.
        assert boe.note_overheard(1) == 2
        assert boe.note_overheard(5) == 0
        assert boe.pending == 0

    def test_eviction_of_most_recent_occurrence_forgets_checksum(self):
        boe = BufferOccupancyEstimator("next", history_size=2)
        boe.note_sent(1)
        boe.note_sent(2)
        boe.note_sent(3)  # evicts 1
        assert boe.note_overheard(1) is None
        assert boe.overheard_unmatched == 1

    def test_matches_reference_reverse_scan_implementation(self):
        """The indexed lookup must be step-for-step equivalent to the
        naive reverse scan of Algorithm 1 (incl. collisions/pruning)."""
        import random

        def reference_overheard(history, checksum):
            # Reverse scan for the most recent occurrence; prune prefix.
            for offset, value in enumerate(reversed(history)):
                if value == checksum:
                    index = len(history) - 1 - offset
                    estimate = len(history) - 1 - index
                    del history[: index + 1]
                    return estimate
            return None

        rng = random.Random(42)
        boe = BufferOccupancyEstimator("next", history_size=40)
        reference = []
        for _ in range(3000):
            # A tiny 4-bit checksum space forces frequent collisions.
            checksum = rng.randrange(16)
            if rng.random() < 0.6:
                boe.note_sent(checksum)
                reference.append(checksum)
                if len(reference) > 40:
                    del reference[0]
            else:
                assert boe.note_overheard(checksum) == reference_overheard(
                    reference, checksum
                )
                assert boe.pending == len(reference)


class TestCallbacks:
    def test_sample_callbacks_invoked(self):
        boe = BufferOccupancyEstimator("next")
        samples = []
        boe.sample_callbacks.append(samples.append)
        boe.note_sent(1)
        boe.note_sent(2)
        boe.note_overheard(1)
        assert samples == [1]

    def test_samples_produced_counter(self):
        boe = BufferOccupancyEstimator("next")
        boe.note_sent(1)
        boe.note_overheard(1)
        boe.note_overheard(12345)
        assert boe.samples_produced == 1


class TestProperties:
    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=100, unique=True))
    def test_property_estimate_equals_position_gap(self, checksums):
        boe = BufferOccupancyEstimator("next")
        for checksum in checksums:
            boe.note_sent(checksum)
        estimate = boe.note_overheard(checksums[0])
        assert estimate == len(checksums) - 1

    @given(
        st.lists(st.integers(0, 0xFFFF), min_size=2, max_size=60, unique=True),
        st.data(),
    )
    def test_property_estimates_never_negative(self, checksums, data):
        boe = BufferOccupancyEstimator("next", history_size=30)
        for checksum in checksums:
            boe.note_sent(checksum)
        target = data.draw(st.sampled_from(checksums))
        estimate = boe.note_overheard(target)
        assert estimate is None or estimate >= 0

    @given(st.lists(st.integers(0, 0xFFFF), max_size=120))
    def test_property_pending_bounded_by_history(self, checksums):
        boe = BufferOccupancyEstimator("next", history_size=50)
        for checksum in checksums:
            boe.note_sent(checksum)
        assert boe.pending <= 50
