"""Tests for the Channel Access Adaptation (Algorithm 1, CAA module)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.caa import ChannelAccessAdapter
from repro.core.config import EZFlowConfig


def make_caa(window=5, b_min=0.05, b_max=20.0, mincw=16, maxcw=32768, initial=None):
    applied = []
    config = EZFlowConfig(
        b_min=b_min, b_max=b_max, mincw=mincw, maxcw=maxcw, sample_window=window
    )
    caa = ChannelAccessAdapter(config, applied.append, initial_cw=initial)
    return caa, applied


def feed(caa, value, count):
    """Feed ``count`` identical samples; return the last decision."""
    decision = None
    for _ in range(count):
        decision = caa.on_sample(value) or decision
    return decision


class TestAveraging:
    def test_no_decision_before_window_full(self):
        caa, _ = make_caa(window=5)
        for _ in range(4):
            assert caa.on_sample(100) is None

    def test_decision_at_window_boundary(self):
        caa, _ = make_caa(window=5)
        decision = feed(caa, 100, 5)
        assert decision is not None
        assert decision.average == 100.0

    def test_samples_cleared_after_decision(self):
        caa, _ = make_caa(window=3)
        feed(caa, 100, 3)
        assert caa.on_sample(0) is None  # fresh window

    def test_average_of_mixed_samples(self):
        caa, _ = make_caa(window=4)
        for v in (0, 10, 20, 30):
            decision = caa.on_sample(v)
        assert decision.average == 15.0

    def test_paper_default_window_is_50(self):
        assert EZFlowConfig().sample_window == 50


class TestOverutilization:
    def test_cw_doubles_after_countup_threshold(self):
        # At cw=16, log2(cw)=4 -> four consecutive high averages needed.
        caa, applied = make_caa(window=1)
        for i in range(3):
            decision = caa.on_sample(50)
            assert decision.new_cw == 16
        decision = caa.on_sample(50)
        assert decision.new_cw == 32
        assert applied[-1] == 32

    def test_higher_cw_reacts_slower_to_congestion(self):
        caa, _ = make_caa(window=1, initial=256)  # log2 = 8
        for i in range(7):
            decision = caa.on_sample(50)
            assert decision.new_cw == 256
        assert caa.on_sample(50).new_cw == 512

    def test_countup_resets_after_doubling(self):
        caa, _ = make_caa(window=1)
        for _ in range(4):
            caa.on_sample(50)
        assert caa.countup == 0

    def test_cw_capped_at_maxcw(self):
        caa, _ = make_caa(window=1, maxcw=32, initial=32)
        for _ in range(20):
            caa.on_sample(50)
        assert caa.cw == 32


class TestUnderutilization:
    def test_cw_halves_after_countdown_threshold(self):
        # At cw=256 (log2=8): countdown threshold = 15 - 8 = 7.
        caa, applied = make_caa(window=1, initial=256)
        for i in range(6):
            decision = caa.on_sample(0)
            assert decision.new_cw == 256
        assert caa.on_sample(0).new_cw == 128

    def test_low_cw_reacts_slower_to_underutilization(self):
        # At cw=16 (log2=4): threshold = 11 consecutive low averages.
        caa, _ = make_caa(window=1, initial=32)
        for i in range(9):
            decision = caa.on_sample(0)
            assert decision.new_cw == 32
        assert caa.on_sample(0).new_cw == 16

    def test_cw_floored_at_mincw(self):
        caa, _ = make_caa(window=1)
        for _ in range(50):
            caa.on_sample(0)
        assert caa.cw == 16

    def test_countdown_resets_after_halving(self):
        caa, _ = make_caa(window=1, initial=256)
        for _ in range(7):
            caa.on_sample(0)
        assert caa.countdown == 0


class TestDesiredBand:
    def test_mid_band_keeps_cw_and_resets_counters(self):
        caa, _ = make_caa(window=1)
        caa.on_sample(50)  # countup = 1
        decision = caa.on_sample(10)  # mid band
        assert decision.new_cw == 16
        assert caa.countup == 0
        assert caa.countdown == 0

    def test_alternating_signals_never_adapt(self):
        caa, _ = make_caa(window=1, initial=64)
        for i in range(40):
            caa.on_sample(50 if i % 2 == 0 else 0)
        assert caa.cw == 64

    def test_fairness_asymmetry(self):
        """A high-cw node reacts faster to underutilization than a
        low-cw node, and slower to overutilization (Section 3.3)."""
        config = EZFlowConfig(sample_window=1)
        high = ChannelAccessAdapter(config, lambda cw: None, initial_cw=1024)
        low = ChannelAccessAdapter(config, lambda cw: None, initial_cw=16)

        def decisions_until_change(caa, value):
            for i in range(1, 100):
                if caa.on_sample(value).changed:
                    return i
            return 100

        assert decisions_until_change(high, 0) < decisions_until_change(low, 0)
        high2 = ChannelAccessAdapter(config, lambda cw: None, initial_cw=1024)
        low2 = ChannelAccessAdapter(config, lambda cw: None, initial_cw=16)
        assert decisions_until_change(high2, 99) > decisions_until_change(low2, 99)


class TestWiring:
    def test_set_cwmin_called_on_init(self):
        caa, applied = make_caa()
        assert applied == [16]

    def test_decision_callbacks(self):
        caa, _ = make_caa(window=1)
        seen = []
        caa.decision_callbacks.append(seen.append)
        caa.on_sample(10)
        assert len(seen) == 1

    def test_initial_cw_must_be_power_of_two(self):
        config = EZFlowConfig()
        with pytest.raises(ValueError):
            ChannelAccessAdapter(config, lambda cw: None, initial_cw=100)

    def test_decisions_recorded(self):
        caa, _ = make_caa(window=2)
        feed(caa, 0, 4)
        assert len(caa.decisions) == 2


class TestConfigValidation:
    def test_b_min_below_b_max(self):
        with pytest.raises(ValueError):
            EZFlowConfig(b_min=5.0, b_max=5.0)

    def test_power_of_two_windows(self):
        with pytest.raises(ValueError):
            EZFlowConfig(mincw=17)
        with pytest.raises(ValueError):
            EZFlowConfig(maxcw=1000)

    def test_maxcw_at_least_mincw(self):
        with pytest.raises(ValueError):
            EZFlowConfig(mincw=64, maxcw=32)

    def test_positive_window(self):
        with pytest.raises(ValueError):
            EZFlowConfig(sample_window=0)

    def test_paper_defaults(self):
        config = EZFlowConfig()
        assert config.b_min == 0.05
        assert config.b_max == 20.0
        assert config.mincw == 16
        assert config.maxcw == 32768
        assert config.history_size == 1000


class TestProperties:
    @given(st.lists(st.floats(0, 100), min_size=1, max_size=300))
    def test_property_cw_always_power_of_two_in_bounds(self, samples):
        caa, _ = make_caa(window=3)
        for value in samples:
            caa.on_sample(value)
        assert 16 <= caa.cw <= 32768
        assert caa.cw & (caa.cw - 1) == 0

    @given(st.integers(0, 11))
    def test_property_monotone_ratchet_up(self, rounds):
        """Persistent congestion only ever raises cw."""
        caa, _ = make_caa(window=1)
        previous = caa.cw
        for _ in range(rounds * 15):
            caa.on_sample(1000)
            assert caa.cw >= previous
            previous = caa.cw
