"""Tests for the shared channel: carrier sense, collisions, capture,
erasures and overhearing."""

import pytest

from repro.phy.channel import Channel, PhyListener
from repro.phy.connectivity import ExplicitConnectivity, GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class Recorder(PhyListener):
    """Records every PHY callback for assertions."""

    def __init__(self):
        self.busy = []
        self.idle = []
        self.received = []
        self.overheard = []
        self.errors = []

    def on_medium_busy(self, now):
        self.busy.append(now)

    def on_medium_idle(self, now):
        self.idle.append(now)

    def on_frame_received(self, frame, now):
        self.received.append((frame, now))

    def on_frame_overheard(self, frame, now):
        self.overheard.append((frame, now))

    def on_frame_error(self, now):
        self.errors.append(now)


class FakeFrame:
    def __init__(self, dst):
        self.dst = dst


def chain_channel(count=4, spacing=200.0, sense=550.0, seed=0):
    engine = Engine()
    positions = {i: (i * spacing, 0.0) for i in range(count)}
    conn = GeometricConnectivity(positions, RangeModel(250.0, sense))
    channel = Channel(engine, conn, RngRegistry(seed))
    listeners = {}
    for i in range(count):
        listeners[i] = Recorder()
        channel.attach(i, listeners[i])
    return engine, channel, listeners


class TestBasicDelivery:
    def test_addressed_frame_received_at_end(self):
        engine, channel, listeners = chain_channel()
        frame = FakeFrame(dst=1)
        channel.transmit(0, frame, 100)
        engine.run()
        assert [(f, t) for f, t in listeners[1].received] == [(frame, 100)]

    def test_frame_overheard_by_non_destination_in_rx_range(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(1, FakeFrame(dst=2), 100)
        engine.run()
        assert len(listeners[0].overheard) == 1  # node 0 decodes node 1

    def test_sense_only_node_gets_no_frame_and_no_error(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert listeners[2].received == []
        assert listeners[2].overheard == []
        assert listeners[2].errors == []  # no PLCP decode attempted

    def test_out_of_range_node_unaffected(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert listeners[3].busy == []


class TestCarrierSense:
    def test_medium_busy_during_transmission(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run(until=50)
        assert not channel.is_idle(1)
        assert not channel.is_idle(2)

    def test_medium_idle_after_transmission(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert channel.is_idle(1)
        assert listeners[1].busy == [0]
        assert listeners[1].idle == [100]

    def test_sender_busy_while_transmitting(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(0, FakeFrame(dst=1), 100)
        assert channel.is_transmitting(0)
        assert not channel.is_idle(0)
        engine.run()
        assert not channel.is_transmitting(0)

    def test_busy_idle_transitions_fire_once_for_overlap(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.schedule(50, lambda: channel.transmit(2, FakeFrame(dst=3), 100))
        engine.run()
        # node 1 senses both: one busy at t=0, one idle at t=150
        assert listeners[1].busy == [0]
        assert listeners[1].idle == [150]

    def test_double_transmit_from_same_node_rejected(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(0, FakeFrame(dst=1), 100)
        with pytest.raises(RuntimeError):
            channel.transmit(0, FakeFrame(dst=1), 100)

    def test_nonpositive_duration_rejected(self):
        engine, channel, listeners = chain_channel()
        with pytest.raises(ValueError):
            channel.transmit(0, FakeFrame(dst=1), 0)


class TestCollisionsAndCapture:
    def test_equal_power_overlap_collides(self):
        # Nodes 0 and 2 both adjacent to node 1: equal power -> collision.
        engine, channel, listeners = chain_channel(sense=350.0)  # 0,2 hidden
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.schedule(50, lambda: channel.transmit(2, FakeFrame(dst=1), 100))
        engine.run()
        assert listeners[1].received == []
        assert len(listeners[1].errors) == 2

    def test_two_hop_interferer_is_captured_through(self):
        # Sender at 200 m, interferer at 400 m: 12 dB SIR -> capture.
        engine, channel, listeners = chain_channel(count=5, sense=550.0)
        channel.transmit(0, FakeFrame(dst=1), 100)
        # Node 3 transmitting (it would never do this under CSMA since it
        # senses node 0 at 550 m... use 4-chain distance: node 3 is 600 m
        # from node 0 -> hidden, 400 m from node 1 -> interference).
        engine.schedule(10, lambda: channel.transmit(3, FakeFrame(dst=4), 100))
        engine.run()
        assert len(listeners[1].received) == 1  # captured node 0's frame

    def test_receiver_transmitting_cannot_decode(self):
        engine, channel, listeners = chain_channel()
        channel.transmit(1, FakeFrame(dst=2), 200)
        engine.schedule(10, lambda: channel.transmit(0, FakeFrame(dst=1), 50))
        engine.run()
        assert listeners[1].received == []

    def test_parallel_hidden_links_both_succeed(self):
        # The Table-4 region D pattern: links 0->1 and 3->4 in parallel.
        engine, channel, listeners = chain_channel(count=5, sense=550.0)
        channel.transmit(0, FakeFrame(dst=1), 100)
        channel.transmit(3, FakeFrame(dst=4), 100)
        engine.run()
        assert len(listeners[1].received) == 1
        assert len(listeners[4].received) == 1

    def test_collision_reported_as_error_for_eifs(self):
        engine, channel, listeners = chain_channel(sense=350.0)
        channel.transmit(0, FakeFrame(dst=1), 100)
        channel.transmit(2, FakeFrame(dst=1), 100)
        engine.run()
        assert len(listeners[1].errors) == 2


class TestErasures:
    def test_lossy_link_drops_frames(self):
        engine, channel, listeners = chain_channel(seed=1)
        channel.set_link_loss(0, 1, 1.0)
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert listeners[1].received == []
        assert len(listeners[1].errors) == 1

    def test_lossless_link_default(self):
        engine, channel, listeners = chain_channel(seed=1)
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert len(listeners[1].received) == 1

    def test_loss_probability_validated(self):
        engine, channel, listeners = chain_channel()
        with pytest.raises(ValueError):
            channel.set_link_loss(0, 1, 1.5)

    def test_loss_is_directional(self):
        engine, channel, listeners = chain_channel(seed=1)
        channel.set_link_loss(0, 1, 1.0)
        channel.transmit(1, FakeFrame(dst=0), 100)
        engine.run()
        assert len(listeners[0].received) == 1

    def test_statistical_loss_rate(self):
        engine, channel, listeners = chain_channel(seed=42)
        channel.set_link_loss(0, 1, 0.3)
        n = 500
        for i in range(n):
            engine.schedule(i * 200, lambda: channel.transmit(0, FakeFrame(dst=1), 100))
        engine.run()
        received = len(listeners[1].received)
        assert 0.6 * n < received < 0.8 * n


class TestOverhearLoss:
    def test_full_overhear_loss_silences_sniffer(self):
        engine, channel, listeners = chain_channel()
        channel.set_overhear_loss(0, 1.0)
        channel.transmit(1, FakeFrame(dst=2), 100)
        engine.run()
        assert listeners[0].overheard == []

    def test_overhear_loss_does_not_affect_addressed_delivery(self):
        engine, channel, listeners = chain_channel()
        channel.set_overhear_loss(1, 1.0)
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert len(listeners[1].received) == 1

    def test_overhear_loss_validated(self):
        engine, channel, listeners = chain_channel()
        with pytest.raises(ValueError):
            channel.set_overhear_loss(0, -0.1)


class TestAttach:
    def test_attach_unknown_node_rejected(self):
        engine, channel, listeners = chain_channel()
        with pytest.raises(ValueError):
            channel.attach(99, Recorder())

    def test_capture_ratio_validated(self):
        engine = Engine()
        conn = GeometricConnectivity({0: (0, 0), 1: (100, 0)}, RangeModel())
        with pytest.raises(ValueError):
            Channel(engine, conn, RngRegistry(0), capture_ratio=0.5)
