"""Property-based invariants of the channel under random schedules."""

from hypothesis import given, settings, strategies as st

from repro.phy.channel import Channel, PhyListener
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class CountingListener(PhyListener):
    """Counts callback invocations for invariant checks."""

    def __init__(self):
        self.busy = 0
        self.idle = 0
        self.received = 0
        self.overheard = 0
        self.errors = 0

    def on_medium_busy(self, now):
        self.busy += 1

    def on_medium_idle(self, now):
        self.idle += 1

    def on_frame_received(self, frame, now):
        self.received += 1

    def on_frame_overheard(self, frame, now):
        self.overheard += 1

    def on_frame_error(self, now):
        self.errors += 1


class FakeFrame:
    def __init__(self, dst):
        self.dst = dst


def build(count=5, spacing=200.0, sense=550.0, seed=0):
    engine = Engine()
    positions = {i: (i * spacing, 0.0) for i in range(count)}
    conn = GeometricConnectivity(positions, RangeModel(250.0, sense))
    channel = Channel(engine, conn, RngRegistry(seed))
    listeners = {i: CountingListener() for i in range(count)}
    for i, listener in listeners.items():
        channel.attach(i, listener)
    return engine, channel, listeners


#: random transmission schedule: (sender, start_delay, duration)
schedule_strategy = st.lists(
    st.tuples(
        st.integers(0, 4),
        st.integers(0, 2000),
        st.integers(1, 500),
    ),
    min_size=1,
    max_size=25,
)


@given(schedule_strategy)
@settings(max_examples=60, deadline=None)
def test_property_busy_idle_balanced(schedule):
    """Busy/idle notifications balance at every node once the air is
    clear. A sender additionally receives an idle notification at the
    end of each of its own transmissions (without a paired busy one) —
    that is how its backoff entities resume — so idle may exceed busy
    by at most the node's own transmission count."""
    engine, channel, listeners = build()
    tx_count = {i: 0 for i in range(5)}

    def try_transmit(sender, duration):
        if not channel.is_transmitting(sender):
            channel.transmit(sender, FakeFrame(dst=(sender + 1) % 5), duration)
            tx_count[sender] += 1

    for sender, start, duration in schedule:
        engine.schedule(start, try_transmit, sender, duration)
    engine.run()
    for i, listener in listeners.items():
        assert listener.busy <= listener.idle <= listener.busy + tx_count[i]
        assert channel.is_idle(i)


@given(schedule_strategy)
@settings(max_examples=60, deadline=None)
def test_property_no_active_transmissions_after_run(schedule):
    engine, channel, listeners = build()
    for sender, start, duration in schedule:
        engine.schedule(
            start,
            lambda s=sender, d=duration: (
                None if channel.is_transmitting(s) else channel.transmit(s, FakeFrame(dst=0), d)
            ),
        )
    engine.run()
    assert channel.active_transmissions == []


@given(schedule_strategy)
@settings(max_examples=60, deadline=None)
def test_property_delivery_requires_rx_edge(schedule):
    """Frames are only received/overheard by reception-range nodes."""
    engine, channel, listeners = build()
    deliveries = []

    for i, listener in listeners.items():
        def on_rx(frame, now, node=i):
            deliveries.append(node)

        listener.on_frame_received = on_rx  # type: ignore[method-assign]

    for sender, start, duration in schedule:
        engine.schedule(
            start,
            lambda s=sender, d=duration: (
                None
                if channel.is_transmitting(s)
                else channel.transmit(s, FakeFrame(dst=s + 1), d)
            ),
        )
    engine.run()
    # Receivers are chain neighbours of some sender: never more than
    # one hop from any transmitting node.
    assert all(0 <= node < 5 for node in deliveries)


@given(st.integers(1, 4), st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_property_single_transmission_always_decodes(receiver_distance, seed):
    """With no interference and no losses, any in-range frame decodes."""
    engine, channel, listeners = build(seed=seed)
    in_range = receiver_distance == 1
    channel.transmit(0, FakeFrame(dst=receiver_distance), 100)
    engine.run()
    assert listeners[receiver_distance].received == (1 if in_range else 0)
