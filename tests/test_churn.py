"""Churn/mobility schedules: parsing, map mutation, plan invalidation,
re-routing, and end-to-end dynamic-topology determinism."""

import filecmp
import json
import os
import random

from hypothesis import given, settings, strategies as st
import pytest

from repro.experiments.export import export_records
from repro.experiments.runner import SweepRunner, _grid_requests
from repro.phy.channel import Channel, PhyListener
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.topology.churn import (
    ChurnDriver,
    ChurnEvent,
    ChurnSchedule,
    ChurnSpecError,
    parse_churn_spec,
)
from repro.topology.meshgen import MeshSpec, build_mesh_network

RANGES = RangeModel(250.0, 550.0)


class PassiveListener(PhyListener):
    """No transmit entities: lands in the passive plan partition."""

    medium_watchers = ()


class CountingListener(PhyListener):
    def __init__(self):
        self.received = 0
        self.busy = 0

    def on_frame_received(self, frame, now):
        self.received += 1

    def on_medium_busy(self, now):
        self.busy += 1


class FakeFrame:
    def __init__(self, dst):
        self.dst = dst


class TestSpecParsing:
    def test_single_events(self):
        assert parse_churn_spec("down:3@8").events == (
            ChurnEvent(time_s=8.0, kind="down", node=3),
        )
        assert parse_churn_spec("up:3@8.5").events == (
            ChurnEvent(time_s=8.5, kind="up", node=3),
        )
        assert parse_churn_spec("move:5@10:150:300").events == (
            ChurnEvent(time_s=10.0, kind="move", node=5, x=150.0, y=300.0),
        )

    def test_joined_schedule_preserves_declaration_order(self):
        schedule = parse_churn_spec("down:3@8+move:5@2:0:0+up:3@8")
        assert len(schedule) == 3
        ordered = schedule.ordered()
        assert [e.kind for e in ordered] == ["move", "down", "up"]
        # Equal timestamps keep declaration order (down before up).
        assert ordered[1].time_s == ordered[2].time_s == 8.0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "+",
            "reboot:3@8",
            "down:3",
            "down:x@8",
            "down:3@",
            "down:3@-1",
            "move:5@10",
            "move:5@10:1",
            "move:5@10:1:2:3",
            "down:3@8:9",
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ChurnSpecError):
            parse_churn_spec(bad)

    def test_driver_rejects_unknown_nodes_and_static_maps(self):
        network, _topo = build_mesh_network(MeshSpec(kind="grid", nodes=9, seed=1))
        with pytest.raises(ChurnSpecError):
            ChurnDriver(network, parse_churn_spec("down:99@1"))


def fresh_equivalent(conn):
    """A GeometricConnectivity built from scratch: active nodes only."""
    positions = {n: conn.positions[n] for n in conn.positions if conn.is_active(n)}
    return GeometricConnectivity(positions, conn.ranges)


class TestMapMutation:
    def test_down_removes_all_edges_up_restores_them(self):
        positions = {i: (i * 200.0, 0.0) for i in range(4)}
        conn = GeometricConnectivity(positions, RANGES)
        before = {n: conn.receivers_of(n) for n in range(4)}
        epoch = conn.epoch
        conn.set_node_active(1, False)
        assert conn.epoch == epoch + 1
        assert conn.receivers_of(1) == frozenset()
        assert conn.senders_sensed_at(1) == frozenset()
        assert 1 not in conn.receivers_of(0) and 1 not in conn.receivers_of(2)
        assert conn.rx_power(0, 1) == 0.0 and conn.rx_power(1, 0) == 0.0
        conn.set_node_active(1, True)
        assert {n: conn.receivers_of(n) for n in range(4)} == before

    def test_down_is_idempotent_on_epoch(self):
        conn = GeometricConnectivity({0: (0.0, 0.0), 1: (200.0, 0.0)}, RANGES)
        conn.set_node_active(1, False)
        epoch = conn.epoch
        conn.set_node_active(1, False)
        assert conn.epoch == epoch

    def test_move_recomputes_edges_both_directions(self):
        conn = GeometricConnectivity(
            {0: (0.0, 0.0), 1: (200.0, 0.0), 2: (400.0, 0.0)}, RANGES
        )
        conn.move_node(2, (100.0, 100.0))  # ~141 m: within rx range of both
        assert 2 in conn.receivers_of(0) and 0 in conn.receivers_of(2)
        assert 2 in conn.receivers_of(1)

    @given(
        seed=st.integers(0, 20),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["down", "up", "move"]),
                st.integers(0, 7),
                st.integers(0, 6),
                st.integers(0, 6),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_mutated_map_equals_freshly_built_map(self, seed, ops):
        """Any mutation sequence lands on exactly the edge sets a map
        built from scratch over the same active layout computes."""
        rnd = random.Random(seed)
        positions = {i: (rnd.uniform(0, 900), rnd.uniform(0, 900)) for i in range(8)}
        conn = GeometricConnectivity(positions, RANGES)
        for kind, node, gx, gy in ops:
            if kind == "down":
                conn.set_node_active(node, False)
            elif kind == "up":
                conn.set_node_active(node, True)
            else:
                conn.move_node(node, (gx * 150.0, gy * 150.0))
        fresh = fresh_equivalent(conn)
        for node in positions:
            if conn.is_active(node):
                assert conn.receivers_of(node) == fresh.receivers_of(node)
                assert conn.sensors_of(node) == fresh.sensors_of(node)
                assert conn.senders_sensed_at(node) == fresh.senders_sensed_at(node)
                assert conn.senders_received_at(node) == fresh.senders_received_at(node)
            else:
                assert conn.receivers_of(node) == frozenset()
                assert conn.sensors_of(node) == frozenset()


def plan_signature(channel, sender):
    """Topology-relevant content of one sender's delivery plan."""
    plans = channel._plan_for(sender)
    tx_passive = sorted(
        (repr(node), tuple(sorted(map(repr, kills)))) for node, _s, kills in plans[0]
    )
    tx_active = []
    for row in plans[1]:
        node, kills = row[1], row[4]
        dies = row[5] if len(row) == 6 else None
        tx_active.append(
            (
                repr(node),
                tuple(sorted(map(repr, kills))),
                None if dies is None else tuple(sorted(map(repr, dies))),
            )
        )
    rx_active = []
    for row in plans[3]:
        if len(row) == 4:
            rx_active.append((repr(row[1]), None, None))
        else:
            rx_active.append((repr(row[1]), row[7], row[8]))
    return (tx_passive, tuple(tx_active), tuple(rx_active), len(plans[2]))


class TestPlanInvalidation:
    @given(
        seed=st.integers(0, 20),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["down", "up", "move"]),
                st.integers(0, 7),
                st.integers(0, 6),
                st.integers(0, 6),
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_invalidated_plans_match_channel_built_fresh(self, seed, ops):
        """The ISSUE property: after a churn mutation, lazily rebuilt
        plans equal those of a channel built fresh from the mutated
        map — for both the active and the passive partition."""
        rnd = random.Random(seed)
        positions = {i: (rnd.uniform(0, 900), rnd.uniform(0, 900)) for i in range(8)}
        conn = GeometricConnectivity(positions, RANGES)
        listeners = {
            i: (PhyListener() if i % 2 else PassiveListener()) for i in range(8)
        }
        channel = Channel(Engine(), conn, RngRegistry(seed))
        for i, listener in listeners.items():
            channel.attach(i, listener)
        for sender in range(8):
            channel._plan_for(sender)  # populate stale plans
        for kind, node, gx, gy in ops:
            if kind == "down":
                conn.set_node_active(node, False)
            elif kind == "up":
                conn.set_node_active(node, True)
            else:
                conn.move_node(node, (gx * 150.0, gy * 150.0))
        fresh = Channel(Engine(), conn, RngRegistry(seed))
        for i, listener in listeners.items():
            fresh.attach(i, listener)
        for sender in range(8):
            assert plan_signature(channel, sender) == plan_signature(fresh, sender)

    def test_in_flight_frames_resolve_under_old_epoch(self):
        conn = GeometricConnectivity({0: (0.0, 0.0), 1: (200.0, 0.0)}, RANGES)
        engine = Engine()
        channel = Channel(engine, conn, RngRegistry(0))
        listeners = {i: CountingListener() for i in (0, 1)}
        for i, listener in listeners.items():
            channel.attach(i, listener)
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.schedule(50, conn.move_node, 1, (5000.0, 0.0))
        engine.run()
        # The frame was on the air when node 1 left: it resolves under
        # the plan snapshotted at transmit time and still delivers.
        assert listeners[1].received == 1
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        # The next frame rebuilds against the mutated map: out of range.
        assert listeners[1].received == 1

    def test_downed_node_stops_sensing_and_receiving(self):
        conn = GeometricConnectivity({0: (0.0, 0.0), 1: (200.0, 0.0)}, RANGES)
        engine = Engine()
        channel = Channel(engine, conn, RngRegistry(0))
        listeners = {i: CountingListener() for i in (0, 1)}
        for i, listener in listeners.items():
            channel.attach(i, listener)
        conn.set_node_active(1, False)
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert listeners[1].received == 0 and listeners[1].busy == 0
        conn.set_node_active(1, True)
        channel.transmit(0, FakeFrame(dst=1), 100)
        engine.run()
        assert listeners[1].received == 1

    def test_connectivity_changed_clears_caches_eagerly(self):
        conn = GeometricConnectivity({0: (0.0, 0.0), 1: (200.0, 0.0)}, RANGES)
        channel = Channel(Engine(), conn, RngRegistry(0))
        for i in (0, 1):
            channel.attach(i, PhyListener())
        channel._plan_for(0)
        assert channel._plans
        conn.set_node_active(1, False)
        channel.connectivity_changed()
        assert not channel._plans and not channel._node_powers
        assert channel._plan_epoch == conn.epoch


class TestReroute:
    def build_grid(self):
        # 3x3 grid, spacing 200 m: 0 1 2 / 3 4 5 / 6 7 8; gateway is the
        # node nearest the (lo_x, lo_y) corner — node 0.
        network, topo = build_mesh_network(
            MeshSpec(kind="grid", nodes=9, gateways=1, seed=1)
        )
        assert topo.gateways == [0]
        return network, topo

    def test_reroute_avoids_downed_relay(self):
        network, _topo = self.build_grid()
        assert network.routing.path(2, 0) == [2, 1, 0]
        driver = ChurnDriver(network, parse_churn_spec("down:1@0"))
        driver._apply(driver.schedule.events[0])
        new_path = network.routing.path(2, 0)
        assert 1 not in new_path
        assert new_path[0] == 2 and new_path[-1] == 0

    def test_reroute_clears_node_stack_caches(self):
        network, _topo = self.build_grid()
        stack = network.nodes[2]
        stack._own_targets["sentinel"] = None
        stack._fwd_targets["sentinel"] = None
        driver = ChurnDriver(network, parse_churn_spec("down:1@0"))
        driver._apply(driver.schedule.events[0])
        assert not stack._own_targets and not stack._fwd_targets

    def test_node_coming_back_restores_shortest_route(self):
        network, _topo = self.build_grid()
        driver = ChurnDriver(network, parse_churn_spec("down:1@0+up:1@1"))
        down, up = driver.schedule.ordered()
        driver._apply(down)
        assert 1 not in network.routing.path(2, 0)
        driver._apply(up)
        assert network.routing.path(2, 0) == [2, 1, 0]

    def test_installed_driver_applies_at_scheduled_times(self):
        network, _topo = self.build_grid()
        driver = ChurnDriver(network, parse_churn_spec("down:1@0.001+up:1@0.002"))
        driver.install()
        network.engine.run(until=5_000)
        assert [e.kind for e in driver.applied] == ["down", "up"]

    def test_install_mid_run_uses_absolute_times(self):
        """Event times are absolute sim seconds, not offsets from the
        install moment — installing after a warmup must not shift them."""
        network, _topo = self.build_grid()
        engine = network.engine
        engine.run(until=1_000)  # advance the clock before installing
        driver = ChurnDriver(network, parse_churn_spec("down:1@0.005"))
        applied_at = []
        original = driver._apply
        driver._apply = lambda event: (applied_at.append(engine.now), original(event))
        driver.install()
        engine.run(until=10_000)
        assert applied_at == [5_000]  # 0.005 s absolute, not 1_000 + 5_000
        assert not network.connectivity.is_active(1)

    def test_loss_models_follow_churn_created_links(self):
        """A mobility step that creates reception edges gets them lossy
        immediately; pre-existing links keep their model instance (and
        with it the burst state and stream position)."""
        from repro.phy.linkstate import parse_loss_spec, apply_loss_models

        network, _topo = self.build_grid()
        spec = parse_loss_spec("ge:0.05:0.3")
        apply_loss_models(network, spec)
        conn = network.connectivity
        channel = network.channel
        kept = channel.link_model(0, 1)
        assert kept is not None
        before = channel.link_model_count()
        # Diagonal neighbour 4 is sense-only from 0 in the grid; moving
        # it next to 0 creates fresh reception edges.
        assert 4 not in conn.receivers_of(0)
        driver = ChurnDriver(
            network, parse_churn_spec("move:4@0:100:100"), loss_spec=spec
        )
        driver._apply(driver.schedule.events[0])
        assert 4 in conn.receivers_of(0)
        for sender in conn.nodes():
            for receiver in conn.receivers_of(sender):
                assert channel.link_model(sender, receiver) is not None
        assert channel.link_model(0, 1) is kept  # state preserved
        assert channel.link_model_count() > before


class TestEndToEnd:
    def test_churned_meshgen_run_completes_and_reports(self):
        from repro.experiments import meshgen

        result = meshgen.run(
            nodes=9,
            topology="grid",
            flows=2,
            duration_s=4.0,
            warmup_s=1.0,
            loss="ge:0.05:0.3",
            churn="down:4@1.5+up:4@3",
        )
        dynamics = result.find_table("Dynamic link state").rows[0]
        assert dynamics[0] == "ge:0.05:0.3"
        assert dynamics[1] > 0  # lossy links configured
        assert dynamics[2] == 2  # both churn events applied
        summary = result.find_table("Summary").rows[0]
        assert 0.0 <= summary[2] <= 1.0  # delivered ratio stays a ratio
        assert result.parameters["churn"] == "down:4@1.5+up:4@3"

    def test_churned_runs_are_deterministic(self):
        from repro.experiments import meshgen

        kwargs = dict(
            nodes=9,
            topology="mesh",
            flows=2,
            duration_s=3.0,
            warmup_s=1.0,
            loss="iid:0.1",
            churn="down:3@1+move:5@1.5:100:100+up:3@2",
        )
        first = meshgen.run(**kwargs)
        second = meshgen.run(**kwargs)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )


class TestChurnSweepDeterminism:
    GRID = {
        "nodes": [9],
        "topology": ["grid", "mesh"],
        "flows": [2],
        "duration_s": [3.0],
        "warmup_s": [1.0],
        "loss": ["ge:0.05:0.3"],
        "churn": ["down:3@1+up:3@2"],
    }

    def test_parallel_and_serial_churn_exports_byte_identical(self, tmp_path):
        """The churn-smoke CI guarantee: dynamic-topology sweeps export
        the same bytes whatever the worker count."""
        requests = _grid_requests("meshgen", self.GRID)
        assert len(requests) == 2
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        os.makedirs(serial_dir)
        os.makedirs(parallel_dir)
        export_records(SweepRunner(jobs=1).run(requests), str(serial_dir))
        export_records(SweepRunner(jobs=2).run(requests), str(parallel_dir))

        def assert_identical(cmp):
            assert not cmp.left_only and not cmp.right_only
            for name in cmp.common_files:
                left = os.path.join(cmp.left, name)
                right = os.path.join(cmp.right, name)
                if name == "manifest.json":
                    with open(left) as handle:
                        left_manifest = json.load(handle)
                    with open(right) as handle:
                        right_manifest = json.load(handle)
                    left_manifest.pop("timing")
                    right_manifest.pop("timing")
                    assert left_manifest == right_manifest
                else:
                    assert filecmp.cmp(left, right, shallow=False), name
            assert not [f for f in cmp.diff_files if f != "manifest.json"]
            for sub in cmp.subdirs.values():
                assert_identical(sub)

        assert_identical(filecmp.dircmp(str(serial_dir), str(parallel_dir)))
        with open(os.path.join(str(serial_dir), "manifest.json")) as handle:
            manifest = json.load(handle)
        assert all(run["parameters"]["churn"] for run in manifest["runs"])
