"""Tests for connectivity maps and relative power levels."""

import pytest

from repro.phy.connectivity import (
    ExplicitConnectivity,
    GeometricConnectivity,
    SENSE_ONLY_POWER,
)
from repro.phy.propagation import RangeModel


def chain_positions(count, spacing=200.0):
    return {i: (i * spacing, 0.0) for i in range(count)}


class TestGeometricConnectivity:
    def test_adjacent_nodes_receive(self):
        conn = GeometricConnectivity(chain_positions(3), RangeModel())
        assert conn.can_receive(1, 0)
        assert conn.can_receive(0, 1)

    def test_two_hop_nodes_sense_only(self):
        conn = GeometricConnectivity(chain_positions(3), RangeModel())
        assert not conn.can_receive(2, 0)
        assert conn.can_sense(2, 0)

    def test_three_hop_nodes_hidden(self):
        conn = GeometricConnectivity(chain_positions(4), RangeModel())
        assert not conn.can_sense(3, 0)

    def test_one_hop_sensing_regime(self):
        conn = GeometricConnectivity(chain_positions(3), RangeModel(250.0, 350.0))
        assert conn.can_sense(1, 0)
        assert not conn.can_sense(2, 0)

    def test_receivers_of(self):
        conn = GeometricConnectivity(chain_positions(4), RangeModel())
        assert conn.receivers_of(1) == frozenset({0, 2})

    def test_sensors_of(self):
        conn = GeometricConnectivity(chain_positions(5), RangeModel())
        assert conn.sensors_of(2) == frozenset({0, 1, 3, 4})

    def test_rx_power_follows_inverse_fourth(self):
        conn = GeometricConnectivity(chain_positions(3), RangeModel())
        near = conn.rx_power(1, 0)   # 200 m
        far = conn.rx_power(2, 0)    # 400 m
        assert near / far == pytest.approx(16.0)

    def test_rx_power_zero_beyond_sensing(self):
        conn = GeometricConnectivity(chain_positions(4), RangeModel())
        assert conn.rx_power(3, 0) == 0.0

    def test_rx_power_zero_for_self(self):
        conn = GeometricConnectivity(chain_positions(2), RangeModel())
        assert conn.rx_power(0, 0) == 0.0

    def test_nodes(self):
        conn = GeometricConnectivity(chain_positions(3), RangeModel())
        assert conn.nodes() == frozenset({0, 1, 2})


class TestExplicitConnectivity:
    def build(self):
        return ExplicitConnectivity(
            nodes=["a", "b", "c"],
            rx_edges=[("a", "b"), ("b", "c")],
            sense_edges=[("a", "c")],
        )

    def test_rx_edges_symmetric_by_default(self):
        conn = self.build()
        assert conn.can_receive("b", "a")
        assert conn.can_receive("a", "b")

    def test_rx_edge_implies_sense(self):
        conn = self.build()
        assert conn.can_sense("b", "a")

    def test_sense_only_edge(self):
        conn = self.build()
        assert conn.can_sense("c", "a")
        assert not conn.can_receive("c", "a")

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            ExplicitConnectivity(["a"], rx_edges=[("a", "zz")])

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            ExplicitConnectivity(["a", "b"], rx_edges=[("a", "a")])

    def test_rx_power_levels(self):
        conn = self.build()
        assert conn.rx_power("b", "a") == 1.0
        assert conn.rx_power("c", "a") == SENSE_ONLY_POWER
        assert conn.rx_power("a", "a") == 0.0

    def test_disconnected_power_zero(self):
        conn = ExplicitConnectivity(["a", "b", "c"], rx_edges=[("a", "b")])
        assert conn.rx_power("c", "a") == 0.0

    def test_sense_only_power_below_capture(self):
        # A decodable frame must capture through sense-only interference.
        assert SENSE_ONLY_POWER * 10.0 < 1.0
