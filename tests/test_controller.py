"""Tests for the EZ-flow controller wiring (BOE + CAA on a node stack)."""

import pytest

from repro.core import EZFlowConfig, EZFlowController, attach_ezflow
from repro.sim.units import seconds
from repro.topology.linear import linear_chain


class TestWiring:
    def test_machinery_created_per_successor(self):
        network = linear_chain(hops=3, seed=1)
        controller = EZFlowController(network.nodes[0])
        network.run(until_us=seconds(5))
        assert set(controller.boes) == {1}
        assert set(controller.caas) == {1}

    def test_relay_tracks_its_successor(self):
        network = linear_chain(hops=3, seed=1)
        controller = EZFlowController(network.nodes[1])
        network.run(until_us=seconds(5))
        assert set(controller.boes) == {2}

    def test_destination_has_no_machinery(self):
        network = linear_chain(hops=3, seed=1)
        controller = EZFlowController(network.nodes[3])
        network.run(until_us=seconds(5))
        assert controller.boes == {}

    def test_last_relay_produces_no_samples(self):
        """Packets delivered to the destination are not 'forwarded', so
        the last relay's BOE for the destination must stay empty."""
        network = linear_chain(hops=3, seed=1)
        controller = EZFlowController(network.nodes[2])
        network.run(until_us=seconds(5))
        boe = controller.boes.get(3)
        assert boe is None or boe.pending == 0

    def test_attach_ezflow_covers_all_nodes(self):
        network = linear_chain(hops=4, seed=1)
        controllers = attach_ezflow(network.nodes)
        assert set(controllers) == set(network.nodes)

    def test_attach_ezflow_exclude(self):
        network = linear_chain(hops=4, seed=1)
        controllers = attach_ezflow(network.nodes, exclude=[0])
        assert 0 not in controllers
        assert 1 in controllers

    def test_current_cw_accessor(self):
        network = linear_chain(hops=3, seed=1)
        controller = EZFlowController(network.nodes[0])
        network.run(until_us=seconds(5))
        assert controller.current_cw(1) in {16, 32, 64, 128}
        assert controller.current_cw(99) is None


class TestEstimation:
    def test_estimates_reflect_actual_buffer(self):
        """BOE samples must equal the successor's true forwarding queue
        size at forwarding instants (modulo in-flight MAC handoff).

        Uses a below-capacity CBR flow: without relay drops the passive
        estimate is exact. (Under saturation, packets the relay *drops*
        stay in the send history and inflate the estimate — a
        conservative bias that only strengthens the congestion signal.)
        """
        network = linear_chain(hops=3, seed=2, saturated=False, rate_bps=150_000.0)
        controller = EZFlowController(network.nodes[0])
        errors = []

        def check(estimate):
            actual = network.nodes[1].forwarding_occupancy()
            errors.append(abs(estimate - actual))

        network.run(until_us=seconds(1))  # create machinery lazily
        assert 1 in controller.boes
        controller.boes[1].sample_callbacks.append(check)
        network.run(until_us=seconds(20))
        assert errors, "no BOE samples produced"
        # Estimates may differ transiently by the packet being ACKed.
        assert sum(errors) / len(errors) <= 2.0

    def test_cw_adapts_under_congestion(self):
        network = linear_chain(hops=4, seed=1)
        controllers = attach_ezflow(network.nodes)
        network.run(until_us=seconds(120))
        # The 4-hop chain congests its first relay; the source must
        # have raised its window above the minimum.
        assert controllers[0].current_cw(1) > 16

    def test_adaptation_applies_to_mac_entity(self):
        network = linear_chain(hops=4, seed=1)
        controllers = attach_ezflow(network.nodes)
        network.run(until_us=seconds(120))
        entity = network.nodes[0].mac.entities[0]
        assert entity.cwmin == controllers[0].current_cw(1)

    def test_no_message_passing(self):
        """EZ-flow must add zero transmissions: frame counts with and
        without controllers are identical for the same seed."""
        plain = linear_chain(hops=3, seed=7)
        plain.run(until_us=seconds(10))
        baseline_tx = plain.trace.counter("mac.data_tx")

        controlled = linear_chain(hops=3, seed=7)
        # Attach estimators but force CAA to never change cw, isolating
        # the passive machinery: traffic must be byte-identical.
        config = EZFlowConfig(b_min=0.0, b_max=10**9)
        attach_ezflow(controlled.nodes, config)
        controlled.run(until_us=seconds(10))
        assert controlled.trace.counter("mac.data_tx") == baseline_tx


class TestStabilization:
    def test_ezflow_stabilizes_4hop_chain(self):
        std = linear_chain(hops=4, seed=3)
        std.run(until_us=seconds(120))
        std_buffer = std.nodes[1].total_buffer_occupancy()

        ez = linear_chain(hops=4, seed=3)
        attach_ezflow(ez.nodes)
        ez.run(until_us=seconds(120))
        ez_buffer = ez.nodes[1].total_buffer_occupancy()
        assert std_buffer >= 40  # saturated without EZ-flow
        assert ez_buffer <= 25   # stabilized with EZ-flow

    def test_ezflow_improves_throughput(self):
        std = linear_chain(hops=4, seed=3)
        std.run(until_us=seconds(120))
        std_thr = std.flow("F1").throughput_bps(seconds(30), seconds(120))

        ez = linear_chain(hops=4, seed=3)
        attach_ezflow(ez.nodes)
        ez.run(until_us=seconds(120))
        ez_thr = ez.flow("F1").throughput_bps(seconds(30), seconds(120))
        assert ez_thr > std_thr
