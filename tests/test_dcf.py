"""Tests for the DCF MAC: backoff, retries, ACKs, CWmin adaptation."""

import pytest

from repro.mac.dcf import Dcf, DcfConfig, OrderedDedup
from repro.mac.queues import FifoQueue
from repro.net.packet import Packet
from repro.phy.channel import Channel
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def make_pair(seed=0, config=None, count=2, spacing=200.0):
    """Two (or more) nodes in a row with attached MACs."""
    engine = Engine()
    positions = {i: (i * spacing, 0.0) for i in range(count)}
    conn = GeometricConnectivity(positions, RangeModel())
    channel = Channel(engine, conn, RngRegistry(seed))
    macs = [
        Dcf(engine, channel, i, config or DcfConfig(), RngRegistry(seed + 1))
        for i in range(count)
    ]
    return engine, channel, macs


def packet(seq=1, dst=1):
    return Packet(flow_id="F", seq=seq, src=0, dst=dst)


class TestConfig:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            DcfConfig(cwmin=15)
        with pytest.raises(ValueError):
            DcfConfig(cwmax=100)

    def test_cwmax_at_least_cwmin(self):
        with pytest.raises(ValueError):
            DcfConfig(cwmin=64, cwmax=32)

    def test_retry_limit_positive(self):
        with pytest.raises(ValueError):
            DcfConfig(retry_limit=0)

    def test_difs_formula(self):
        config = DcfConfig()
        assert config.rates.difs_us == config.rates.sifs_us + 2 * config.rates.slot_time_us


class TestSingleLink:
    def test_successful_delivery_with_ack(self):
        engine, channel, (tx, rx) = make_pair()
        delivered = []
        rx.on_data_received = lambda frame, now: delivered.append(frame)
        queue = FifoQueue()
        entity = tx.add_entity("q", queue, successor=1)
        queue.push(packet())
        entity.notify_enqueue()
        engine.run(until=100_000)
        assert len(delivered) == 1
        assert entity.tx_successes == 1
        assert queue.is_empty()

    def test_success_callback_fires(self):
        engine, channel, (tx, rx) = make_pair()
        successes = []
        tx.on_tx_success = lambda entity, pkt, frame: successes.append(pkt)
        queue = FifoQueue()
        entity = tx.add_entity("q", queue, successor=1)
        p = packet()
        queue.push(p)
        entity.notify_enqueue()
        engine.run(until=100_000)
        assert successes == [p]

    def test_queue_drains_in_order(self):
        engine, channel, (tx, rx) = make_pair()
        received = []
        rx.on_data_received = lambda frame, now: received.append(frame.packet.seq)
        queue = FifoQueue()
        entity = tx.add_entity("q", queue, successor=1)
        for seq in range(1, 6):
            queue.push(packet(seq))
        entity.notify_enqueue()
        engine.run(until=1_000_000)
        assert received == [1, 2, 3, 4, 5]

    def test_retry_until_drop_on_dead_link(self):
        config = DcfConfig(retry_limit=3)
        engine, channel, (tx, rx) = make_pair(config=config)
        channel.set_link_loss(0, 1, 1.0)
        drops = []
        tx.on_tx_drop = lambda entity, pkt: drops.append(pkt)
        queue = FifoQueue()
        entity = tx.add_entity("q", queue, successor=1)
        queue.push(packet())
        entity.notify_enqueue()
        engine.run(until=10_000_000)
        assert len(drops) == 1
        assert entity.tx_attempts == 4  # initial + 3 retries
        assert queue.is_empty()

    def test_cw_doubles_on_failure_and_resets(self):
        config = DcfConfig(retry_limit=2, cwmin=16, cwmax=1024)
        engine, channel, (tx, rx) = make_pair(config=config)
        channel.set_link_loss(0, 1, 1.0)
        queue = FifoQueue()
        entity = tx.add_entity("q", queue, successor=1)
        observed = []
        original = entity._draw_backoff

        def spy():
            observed.append(entity.cw)
            original()

        entity._draw_backoff = spy
        queue.push(packet())
        entity.notify_enqueue()
        engine.run(until=10_000_000)
        # first draw at cwmin, then doubled per retry; reset after drop
        assert observed[0] == 16
        assert 32 in observed
        assert entity.cw == 16


class TestCwminAdaptation:
    def test_set_cwmin_changes_effective_window(self):
        engine, channel, macs = make_pair()
        entity = macs[0].add_entity("q", FifoQueue(), successor=1)
        entity.set_cwmin(256)
        assert entity.effective_cwmin() == 256

    def test_set_cwmin_validates_power_of_two(self):
        engine, channel, macs = make_pair()
        entity = macs[0].add_entity("q", FifoQueue(), successor=1)
        with pytest.raises(ValueError):
            entity.set_cwmin(100)

    def test_hw_cap_clamps_effective_cwmin(self):
        config = DcfConfig(hw_cw_cap=1024)
        engine, channel, macs = make_pair(config=config)
        entity = macs[0].add_entity("q", FifoQueue(), successor=1)
        entity.set_cwmin(32768)
        assert entity.cwmin == 32768  # requested value kept
        assert entity.effective_cwmin() == 1024  # Madwifi flaw

    def test_larger_cwmin_slows_access(self):
        # Statistical: with a huge window the sender completes fewer frames.
        def run_with(cwmin):
            engine, channel, (tx, rx) = make_pair(seed=3)
            queue = FifoQueue(capacity=1000)
            entity = tx.add_entity("q", queue, successor=1)
            entity.set_cwmin(cwmin)
            for seq in range(200):
                queue.push(packet(seq))
            entity.notify_enqueue()
            engine.run(until=2_000_000)
            return entity.tx_successes

        assert run_with(16) > run_with(2048) * 1.5


class TestDuplicateFiltering:
    def test_duplicate_sequence_filtered(self):
        engine, channel, (tx, rx) = make_pair()
        received = []
        rx.on_data_received = lambda frame, now: received.append(frame)
        from repro.mac.frames import make_data_frame

        p = packet()
        frame1 = make_data_frame(0, 1, p, seq=5)
        frame2 = make_data_frame(0, 1, p, seq=5)
        rx.on_frame_received(frame1, 0)
        rx.on_frame_received(frame2, 1)
        assert len(received) == 1

    def test_ordered_dedup_evicts_oldest(self):
        dedup = OrderedDedup(size=2)
        assert not dedup.seen(("a", 1))
        assert not dedup.seen(("a", 2))
        assert not dedup.seen(("a", 3))  # evicts ("a", 1)
        assert not dedup.seen(("a", 1))  # forgotten -> treated as new
        assert dedup.seen(("a", 3))


class TestMultiEntity:
    def test_two_entities_share_radio(self):
        engine, channel, macs = make_pair(count=3)
        tx = macs[1]  # middle node talks to both sides
        received = {0: [], 2: []}
        macs[0].on_data_received = lambda f, now: received[0].append(f)
        macs[2].on_data_received = lambda f, now: received[2].append(f)
        q_left, q_right = FifoQueue(), FifoQueue()
        e_left = tx.add_entity("left", q_left, successor=0)
        e_right = tx.add_entity("right", q_right, successor=2)
        for seq in range(5):
            q_left.push(Packet(flow_id="L", seq=seq, src=1, dst=0))
            q_right.push(Packet(flow_id="R", seq=seq, src=1, dst=2))
        e_left.notify_enqueue()
        e_right.notify_enqueue()
        engine.run(until=2_000_000)
        assert len(received[0]) == 5
        assert len(received[2]) == 5

    def test_entities_have_independent_cwmin(self):
        engine, channel, macs = make_pair(count=3)
        e1 = macs[1].add_entity("a", FifoQueue(), successor=0)
        e2 = macs[1].add_entity("b", FifoQueue(), successor=2)
        e1.set_cwmin(64)
        assert e2.effective_cwmin() == 16
