"""Cross-process determinism: results must not depend on PYTHONHASHSEED.

Node ids can be strings; if any hot path iterated raw sets, the event
order — and hence every RNG draw — would differ between processes with
different hash seeds. This regression test runs a short testbed
simulation in two subprocesses with different hash seeds and demands
bit-identical statistics.
"""

import os
import subprocess
import sys

import pytest

import repro

# Heavy end-to-end simulations: excluded from the CI fast lane.
pytestmark = pytest.mark.slow

SCRIPT = """
from repro.core import attach_ezflow
from repro.sim.units import seconds
from repro.topology.testbed import testbed_network

net = testbed_network(seed=4, flows=("F1", "F2"))
attach_ezflow(net.nodes)
net.run(until_us=seconds(20))
print(
    net.flow("F1").delivered,
    net.flow("F2").delivered,
    int(net.trace.counter("mac.data_tx")),
    net.nodes["N4"].total_buffer_occupancy(),
)
"""


def run_with_hashseed(seed: str) -> str:
    # The child needs to import repro; derive the import root from the
    # installed package itself so the test works from any invocation
    # (plain `PYTHONPATH=src pytest`, editable install, tox, ...).
    import_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": seed,
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            "PYTHONPATH": import_root,
        },
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


def test_results_independent_of_hash_seed():
    assert run_with_hashseed("1") == run_with_hashseed("424242")
