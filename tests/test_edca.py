"""Tests for the 802.11e EDCA access-category support."""

import pytest

from repro.mac.dcf import Dcf, DcfConfig
from repro.mac.edca import (
    AC_BE,
    AC_BK,
    AC_VI,
    AC_VO,
    ACCESS_CATEGORIES,
    AccessCategory,
    assign_categories,
    configure_entity,
)
from repro.mac.queues import FifoQueue
from repro.net.packet import Packet
from repro.phy.channel import Channel
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import seconds


def star(seed=0):
    """Node 0 (center) plus two neighbours within reception range."""
    engine = Engine()
    positions = {0: (0.0, 0.0), 1: (200.0, 0.0), 2: (0.0, 200.0)}
    conn = GeometricConnectivity(positions, RangeModel())
    channel = Channel(engine, conn, RngRegistry(seed))
    macs = {
        node: Dcf(engine, channel, node, DcfConfig(), RngRegistry(seed + 1))
        for node in positions
    }
    return engine, channel, macs


class TestAccessCategory:
    def test_standard_sets(self):
        assert AC_VO.aifsn == 2 and AC_VO.cwmin == 8
        assert AC_BK.aifsn == 7
        assert set(ACCESS_CATEGORIES) == {"VO", "VI", "BE", "BK"}

    def test_validation(self):
        with pytest.raises(ValueError):
            AccessCategory("X", aifsn=0, cwmin=16, cwmax=32)
        with pytest.raises(ValueError):
            AccessCategory("X", aifsn=2, cwmin=20, cwmax=32)
        with pytest.raises(ValueError):
            AccessCategory("X", aifsn=2, cwmin=64, cwmax=32)


class TestConfiguration:
    def test_configure_entity(self):
        engine, channel, macs = star()
        entity = macs[0].add_entity("q", FifoQueue(), successor=1)
        configure_entity(entity, AC_BK)
        assert entity.aifsn == 7
        assert entity.cwmin == 32

    def test_assign_categories_in_priority_order(self):
        engine, channel, macs = star()
        entities = [
            macs[0].add_entity(f"q{i}", FifoQueue(), successor=1) for i in range(3)
        ]
        mapping = assign_categories(entities)
        assert mapping["VO"] is entities[0]
        assert mapping["BE"] is entities[2]

    def test_too_many_queues_rejected(self):
        engine, channel, macs = star()
        entities = [
            macs[0].add_entity(f"q{i}", FifoQueue(), successor=1) for i in range(5)
        ]
        with pytest.raises(ValueError):
            assign_categories(entities)

    def test_ezflow_can_still_override_cwmin(self):
        engine, channel, macs = star()
        entity = macs[0].add_entity("q", FifoQueue(), successor=1)
        configure_entity(entity, AC_BE)
        entity.set_cwmin(1024)  # what the CAA would do
        assert entity.aifsn == AC_BE.aifsn  # priority preserved
        assert entity.effective_cwmin() == 1024


class TestAifsPriority:
    def test_default_aifsn_reproduces_difs(self):
        engine, channel, macs = star()
        assert macs[0].current_ifs_us(2) == macs[0].config.rates.difs_us

    def test_larger_aifsn_defers_longer(self):
        engine, channel, macs = star()
        assert macs[0].current_ifs_us(7) > macs[0].current_ifs_us(2)

    def test_high_priority_category_wins_airtime(self):
        """Saturated VO and BK queues at the same node: the VO queue
        must clearly dominate the share (smaller AIFS and CWmin)."""
        engine, channel, macs = star(seed=5)
        q_vo, q_bk = FifoQueue(capacity=1000), FifoQueue(capacity=1000)
        e_vo = macs[0].add_entity("vo", q_vo, successor=1)
        e_bk = macs[0].add_entity("bk", q_bk, successor=2)
        configure_entity(e_vo, AC_VO)
        configure_entity(e_bk, AC_BK)
        for seq in range(400):
            q_vo.push(Packet(flow_id="VO", seq=seq, src=0, dst=1))
            q_bk.push(Packet(flow_id="BK", seq=seq, src=0, dst=2))
        e_vo.notify_enqueue()
        e_bk.notify_enqueue()
        engine.run(until=seconds(3))
        assert e_vo.tx_successes > 1.5 * e_bk.tx_successes
