"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimTimeError


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Engine().now == 0

    def test_runs_event_at_scheduled_time(self):
        engine = Engine()
        fired = []
        engine.schedule(50, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [50]

    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(30, order.append, "b")
        engine.schedule(10, order.append, "a")
        engine.schedule(99, order.append, "c")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_tick_events_run_in_schedule_order(self):
        engine = Engine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule(5, order.append, tag)
        engine.run()
        assert order == ["first", "second", "third"]

    def test_zero_delay_allowed(self):
        engine = Engine()
        fired = []
        engine.schedule(0, fired.append, 1)
        engine.run()
        assert fired == [1]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimTimeError):
            Engine().schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        fired = []
        engine.schedule_at(123, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [123]

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        with pytest.raises(SimTimeError):
            engine.schedule_at(5, lambda: None)

    def test_args_passed_to_callback(self):
        engine = Engine()
        seen = []
        engine.schedule(1, lambda a, b: seen.append((a, b)), "x", 42)
        engine.run()
        assert seen == [("x", 42)]

    def test_events_scheduled_during_run_execute(self):
        engine = Engine()
        fired = []

        def chain():
            fired.append(engine.now)
            if engine.now < 30:
                engine.schedule(10, chain)

        engine.schedule(10, chain)
        engine.run()
        assert fired == [10, 20, 30]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(10, fired.append, 1)
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        event = engine.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        engine.run()

    def test_cancel_one_of_many(self):
        engine = Engine()
        fired = []
        keep = engine.schedule(10, fired.append, "keep")
        drop = engine.schedule(10, fired.append, "drop")
        drop.cancel()
        engine.run()
        assert fired == ["keep"]

    def test_cancelled_events_not_counted_as_processed(self):
        engine = Engine()
        event = engine.schedule(10, lambda: None)
        event.cancel()
        engine.schedule(20, lambda: None)
        engine.run()
        assert engine.processed_events == 1


class TestRunUntil:
    def test_run_until_stops_clock_at_bound(self):
        engine = Engine()
        engine.schedule(100, lambda: None)
        engine.run(until=40)
        assert engine.now == 40
        assert engine.pending_events == 1

    def test_event_exactly_at_until_executes(self):
        engine = Engine()
        fired = []
        engine.schedule(40, fired.append, 1)
        engine.run(until=40)
        assert fired == [1]

    def test_run_resumes_after_until(self):
        engine = Engine()
        fired = []
        engine.schedule(100, fired.append, 1)
        engine.run(until=40)
        engine.run(until=200)
        assert fired == [1]
        assert engine.now == 200

    def test_clock_advances_to_until_with_empty_heap(self):
        engine = Engine()
        engine.run(until=77)
        assert engine.now == 77


class TestStep:
    def test_step_executes_single_event(self):
        engine = Engine()
        fired = []
        engine.schedule(5, fired.append, "a")
        engine.schedule(10, fired.append, "b")
        assert engine.step()
        assert fired == ["a"]

    def test_step_on_empty_heap_returns_false(self):
        assert not Engine().step()

    def test_step_skips_cancelled(self):
        engine = Engine()
        fired = []
        engine.schedule(5, fired.append, "a").cancel()
        engine.schedule(10, fired.append, "b")
        assert engine.step()
        assert fired == ["b"]


class TestLiveAndCancelledAccounting:
    """pending_events counts heap entries; live_events excludes cancelled."""

    def test_split_after_cancellations(self):
        engine = Engine()
        handles = [engine.schedule(10 + i, lambda: None) for i in range(10)]
        engine.post(100, lambda: None)
        assert engine.pending_events == 11
        assert engine.live_events == 11
        for handle in handles[:4]:
            handle.cancel()
        assert engine.pending_events == 11
        assert engine.live_events == 7
        assert engine.cancelled_events == 4

    def test_cancel_is_idempotent_for_accounting(self):
        engine = Engine()
        handle = engine.schedule(5, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.cancelled_events == 1
        assert engine.live_events == 0

    def test_cancel_after_fire_does_not_corrupt_counts(self):
        engine = Engine()
        handle = engine.schedule(5, lambda: None)
        engine.run()
        handle.cancel()  # late cancel: harmless no-op
        assert engine.cancelled_events == 0
        assert engine.pending_events == 0
        assert engine.live_events == 0

    def test_counts_drain_through_run(self):
        engine = Engine()
        fired = []
        keep = [engine.schedule(i, fired.append, i) for i in range(6)]
        for handle in keep[::2]:
            handle.cancel()
        engine.run()
        assert fired == [1, 3, 5]
        assert engine.pending_events == 0
        assert engine.live_events == 0
        assert engine.cancelled_events == 0


class TestHeapCompaction:
    def test_compaction_removes_dead_entries(self):
        engine = Engine()
        fired = []
        handles = [engine.schedule(i, fired.append, i) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        # Compaction fired at the 100th cancel (>= the 64 floor and half
        # of the 200-entry heap); the remaining 50 cancels stay below
        # the floor, so they linger — but live accounting stays exact.
        assert engine.pending_events == 100
        assert engine.live_events == 50
        assert engine.cancelled_events == 50
        engine.run()
        assert fired == list(range(150, 200))
        assert engine.pending_events == 0
        assert engine.cancelled_events == 0

    def test_compaction_preserves_dispatch_order(self):
        engine = Engine()
        fired = []
        # Interleave survivors and victims at identical ticks so any
        # ordering damage from the rebuild would be visible.
        survivors = []
        victims = []
        for i in range(120):
            survivors.append(engine.schedule(7, fired.append, i))
            victims.append(engine.schedule(7, lambda: fired.append("dead")))
        for handle in victims:
            handle.cancel()
        engine.run()
        assert fired == list(range(120))

    def test_small_heaps_are_not_compacted(self):
        engine = Engine()
        handles = [engine.schedule(i, lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the floor: entries stay, but live accounting is exact.
        assert engine.pending_events == 10
        assert engine.live_events == 0


class TestPeriodicCallbacks:
    def test_periodic_fires_on_grid(self):
        engine = Engine()
        ticks = []
        engine.post_periodic(0, 10, lambda: ticks.append(engine.now))
        engine.run(until=35)
        assert ticks == [0, 10, 20, 30]

    def test_periodic_matches_self_reposting_sequence(self):
        """(time, seq) stream identical to a callback that re-posts
        itself last — the ordering contract samplers rely on."""
        periodic = Engine()
        log_p = []
        periodic.post_periodic(0, 10, lambda: log_p.append(periodic.now))
        periodic.post(15, log_p.append, "mid")
        periodic.run(until=30)

        reposting = Engine()
        log_r = []
        def sample():
            log_r.append(reposting.now)
            reposting.post(10, sample)
        reposting.post(0, sample)
        reposting.post(15, log_r.append, "mid")
        reposting.run(until=30)
        assert log_p == log_r

    def test_periodic_rejects_bad_interval(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.post_periodic(0, 0, lambda: None)

    def test_step_handles_periodic_entries(self):
        engine = Engine()
        ticks = []
        engine.post_periodic(5, 10, lambda: ticks.append(engine.now))
        assert engine.step()
        assert engine.step()
        assert ticks == [5, 15]
