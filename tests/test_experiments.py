"""Tests for the experiment framework and fast smoke runs of harnesses."""

import pytest

from repro.experiments import experiment_ids, get_experiment
from repro.experiments import fig1, stability, table1
from repro.experiments.common import ExperimentResult, Table, sparkline, throughput_gain


class TestTable:
    def test_add_and_render(self):
        table = Table("T", ["a", "b"])
        table.add(1, 2.5)
        text = table.render()
        assert "T" in text
        assert "2.50" in text

    def test_row_width_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_column_extraction(self):
        table = Table("T", ["a", "b"])
        table.add(1, "x")
        table.add(2, "y")
        assert table.column("a") == [1, 2]
        with pytest.raises(ValueError):
            table.column("zz")


class TestExperimentResult:
    def test_table_creation_and_lookup(self):
        result = ExperimentResult("e", "desc")
        result.table("Alpha table", ["x"])
        assert result.find_table("Alpha").columns == ["x"]
        with pytest.raises(KeyError):
            result.find_table("missing")

    def test_render_includes_everything(self):
        result = ExperimentResult("e", "desc", parameters={"seed": 1})
        result.table("T", ["x"]).add(5)
        result.series["s"] = [(0.0, 1.0), (1.0, 2.0)]
        result.notes.append("hello")
        text = result.render()
        for fragment in ("e: desc", "seed=1", "T", "series s", "hello"):
            assert fragment in text


class TestHelpers:
    def test_sparkline_empty(self):
        assert sparkline([]) == "(empty)"

    def test_sparkline_constant(self):
        assert "constant" in sparkline([(0, 5.0), (1, 5.0)])

    def test_sparkline_varies(self):
        text = sparkline([(i, float(i)) for i in range(10)])
        assert "[0.00..9.00]" in text

    def test_throughput_gain(self):
        assert throughput_gain(100, 150) == pytest.approx(50.0)
        assert throughput_gain(0, 100) == 0.0


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for required in (
            "fig1",
            "table1",
            "fig4",
            "table2",
            "fig6",
            "fig7",
            "fig8",
            "fig10",
            "fig11",
            "table3",
            "table4",
            "stability",
        ):
            assert required in ids

    def test_aliases_resolve_to_shared_harness(self):
        assert get_experiment("fig6") is get_experiment("scenario1")
        assert get_experiment("table3") is get_experiment("scenario2")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")


class TestSmokeRuns:
    """Fast, scaled-down executions of the cheap harnesses."""

    def test_fig1_smoke(self):
        result = fig1.run(duration_s=20.0, warmup_s=5.0, seed=1)
        table = result.find_table("Figure 1")
        assert len(table.rows) == 5  # 3-hop: 2 relays; 4-hop: 3 relays
        assert "3hop.node1.buffer" in result.series

    def test_table1_smoke(self):
        result = table1.run(duration_s=10.0, warmup_s=2.0, seed=1)
        table = result.find_table("Table 1")
        assert len(table.rows) == 7
        measured = table.column("measured_kbps")
        assert all(v > 0 for v in measured)

    def test_stability_smoke(self):
        result = stability.run(slots=5000, trials=50)
        table4 = result.find_table("Table 4")
        assert len(table4.rows) >= 14
        drift = result.find_table("Theorem 1")
        assert len(drift.rows) == 7
        walk = result.find_table("Random walk")
        assert len(walk.rows) == 2
