"""Tests for the result export tool."""

import csv
import os
import subprocess
import sys

from repro.experiments.common import ExperimentResult
from repro.experiments.export import export_result, table_to_markdown


def make_result():
    result = ExperimentResult("demo", "a demo result", parameters={"seed": 1})
    table = result.table("Demo table", ["a", "b"])
    table.add(1, 2.5)
    table.add(3, 4.0)
    result.series["thr/F1"] = [(0.0, 1.0), (1.0, 2.0)]
    result.notes.append("a note")
    return result


class TestMarkdown:
    def test_table_markdown_structure(self):
        text = table_to_markdown(make_result().tables[0])
        assert "### Demo table" in text
        assert "| a | b |" in text
        assert "| 1 | 2.500 |" in text


class TestExport:
    def test_writes_series_and_tables(self, tmp_path):
        target = export_result(make_result(), str(tmp_path))
        assert os.path.isdir(target)
        csv_path = os.path.join(target, "thr_F1.csv")
        with open(csv_path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["0.0", "1.0"]
        with open(os.path.join(target, "tables.md")) as handle:
            text = handle.read()
        assert "Demo table" in text
        assert "> a note" in text
        assert "seed=1" in text

    def test_removed_cli_points_at_replacement(self):
        # The standalone export CLI was removed after its deprecation
        # cycle: running the module exits 2 and names the successor.
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.export"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
        assert "python -m repro.experiments run" in proc.stdout + proc.stderr
