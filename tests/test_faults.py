"""Fault-tolerant sweep execution: error policies, timeouts, supervision.

The chaos battery: every failure mode the supervised runner handles —
a run raising, hanging past ``--run-timeout``, or hard-crashing its
worker process — is injected deterministically via
:class:`repro.experiments.faults.FaultPlan` and exercised under all
three error policies (``fail``/``continue``/``retry:N``), serially and
pooled. The CI ``chaos-smoke`` job runs exactly this module.

Determinism stakes: surviving-run exports and ``failures.json`` must be
byte-identical at any ``--jobs`` count, and a resume after failures must
re-execute only the failed runs and converge on the same store digest an
uninterrupted sweep produces.
"""

import json
import os
import warnings

import pytest

from repro.experiments.faults import (
    FAULT_PLAN_ENV,
    FaultAction,
    FaultPlan,
    InjectedFault,
)
from repro.experiments.runner import (
    ErrorPolicy,
    RunFailure,
    RunTimeoutError,
    SweepRunner,
    WorkerCrashError,
    request_for,
)
from repro.experiments.specs import ParameterValueError
from repro.results import (
    IncompleteSweepWarning,
    ResultSet,
    compare,
    open_store,
)
from repro.results.store import DirectoryStore, SqliteStore, request_key

#: A fast, deterministic scenario for chaos runs (~10 ms each).
FAST = {"slots": 300, "trials": 5}

#: Zero-backoff retry policies so retry tests do not sleep.
RETRY_2 = ErrorPolicy("continue", retries=2, backoff_base_s=0.0, backoff_cap_s=0.0)


def fast_requests(seeds=(1, 2, 3, 4)):
    return [request_for("stability", dict(FAST, seed=seed)) for seed in seeds]


class TestErrorPolicy:
    def test_parse_spellings(self):
        assert ErrorPolicy.parse("fail") == ErrorPolicy("fail")
        assert ErrorPolicy.parse("continue") == ErrorPolicy("continue")
        retried = ErrorPolicy.parse("retry:3")
        assert retried.mode == "continue" and retried.retries == 3

    @pytest.mark.parametrize("bad", ["", "retry", "retry:0", "retry:x", "abort"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ErrorPolicy.parse(bad)

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            ErrorPolicy("explode")
        with pytest.raises(ValueError):
            ErrorPolicy("continue", retries=-1)

    def test_backoff_doubles_and_caps(self):
        policy = ErrorPolicy("continue", retries=5, backoff_base_s=0.1,
                             backoff_cap_s=0.25)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.25)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.25)


class TestFaultPlanParsing:
    def test_selectors_and_actions(self):
        plan = FaultPlan.parse("2=raise+tree=hang:60+5=crash:7/2")
        assert len(plan.clauses) == 3
        assert plan.action_for("anything", 2).kind == "raise"
        assert plan.action_for("meshgen~topology=tree", 0).kind == "hang"
        assert plan.action_for("meshgen~topology=tree", 0).param == 60.0
        crash = plan.action_for("x", 5)
        assert crash.kind == "crash" and crash.param == 7.0 and crash.times == 2
        assert plan.action_for("x", 0) is None

    def test_first_matching_clause_wins(self):
        plan = FaultPlan.parse("*=raise+1=crash")
        assert plan.action_for("x", 1).kind == "raise"

    def test_selector_with_equals_in_run_id(self):
        # run ids contain '=', so the clause splits on the LAST '='.
        plan = FaultPlan.parse("seed=3=raise")
        assert plan.action_for("stability~seed=3~slots=300", 0).kind == "raise"
        assert plan.action_for("stability~seed=4~slots=300", 0) is None

    def test_sample_selector_is_seeded(self):
        plan = FaultPlan.parse("sample:0.5:42=raise")
        fired = [
            run_id
            for run_id in (f"run{i}" for i in range(40))
            if plan.action_for(run_id, 0) is not None
        ]
        assert 0 < len(fired) < 40  # P=0.5 fires some, not all
        again = FaultPlan.parse("sample:0.5:42=raise")
        assert fired == [
            run_id
            for run_id in (f"run{i}" for i in range(40))
            if again.action_for(run_id, 0) is not None
        ]
        reseeded = FaultPlan.parse("sample:0.5:43=raise")
        assert fired != [
            run_id
            for run_id in (f"run{i}" for i in range(40))
            if reseeded.action_for(run_id, 0) is not None
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "raise",  # no selector
            "=raise",
            "2=",
            "2=explode",
            "2=raise:5",  # raise takes no parameter
            "2=hang:abc",
            "2=hang:-1",
            "2=crash:x",
            "2=raise/0",
            "2=raise/x",
            "sample:2:7=raise",  # P outside [0, 1]
            "sample:0.5=raise",  # missing seed
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ParameterValueError):
            FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "  ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "0=raise")
        plan = FaultPlan.from_env()
        assert plan.action_for("x", 0).kind == "raise"

    def test_needs_worker_only_for_crash(self):
        assert not FaultPlan.parse("0=raise+1=hang:5").needs_worker
        assert FaultPlan.parse("0=raise+1=crash").needs_worker

    def test_times_cap_releases_later_attempts(self):
        action = FaultAction.parse("raise/2")
        with pytest.raises(InjectedFault):
            action.trigger("r", 1)
        with pytest.raises(InjectedFault):
            action.trigger("r", 2)
        action.trigger("r", 3)  # past the cap: no fault


class TestRaisingRuns:
    """The `raise` fault under every policy, serial and pooled."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fail_policy_propagates(self, jobs):
        plan = FaultPlan.parse("1=raise")
        with SweepRunner(jobs=jobs) as runner:
            with pytest.raises(InjectedFault, match="raised"):
                runner.run(fast_requests(), policy="fail", faults=plan)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_continue_policy_isolates(self, jobs):
        plan = FaultPlan.parse("1=raise")
        with SweepRunner(jobs=jobs) as runner:
            records = runner.run(fast_requests(), policy="continue", faults=plan)
        assert len(records) == 4
        failed = [r for r in records if not r.ok]
        assert len(failed) == 1
        failure = failed[0].failure
        assert failure.kind == "exception"
        assert failure.error == "InjectedFault"
        assert failure.attempts == 1
        assert "InjectedFault" in failure.traceback
        assert failure.run_id == fast_requests()[1].run_id
        # record order is request order, failure in place
        assert [r.request.run_id for r in records] == [
            r.run_id for r in fast_requests()
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_policy_exhausts_attempts(self, jobs):
        plan = FaultPlan.parse("1=raise")
        with SweepRunner(jobs=jobs) as runner:
            records = runner.run(fast_requests(), policy=RETRY_2, faults=plan)
        failure = next(r for r in records if not r.ok).failure
        assert failure.attempts == 3  # 1 initial + 2 retries

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_policy_heals_transient_fault(self, jobs):
        plan = FaultPlan.parse("1=raise/1")  # first attempt only
        with SweepRunner(jobs=jobs) as runner:
            records = runner.run(fast_requests(), policy=RETRY_2, faults=plan)
        assert all(r.ok for r in records)

    def test_failure_records_identical_across_jobs(self):
        plan = FaultPlan.parse("1=raise")
        with SweepRunner() as runner:
            serial = runner.run(fast_requests(), policy="continue", faults=plan)
        with SweepRunner(jobs=2) as runner:
            pooled = runner.run(fast_requests(), policy="continue", faults=plan)
        f_serial = next(r for r in serial if not r.ok).failure
        f_pooled = next(r for r in pooled if not r.ok).failure
        # byte-identical including the traceback text — the _attempt
        # shim catches at the same stack depth inline and in workers
        assert f_serial.to_dict() == f_pooled.to_dict()

    def test_fail_policy_serial_raises_original_exception(self):
        # The no-supervision direct path: a genuine experiment error
        # propagates as itself with its genuine traceback.
        bad = request_for("stability", dict(FAST, seed=1))
        plan = FaultPlan.parse("*=raise")
        with SweepRunner() as runner:
            with pytest.raises(InjectedFault):
                runner.run([bad], faults=plan)


class TestDuplicateRunIds:
    def test_error_names_the_offenders(self):
        requests = fast_requests((1, 2))
        dupes = [requests[0], requests[1], requests[0], requests[1]]
        with SweepRunner() as runner:
            with pytest.raises(ValueError) as err:
                runner.run(dupes)
        assert requests[0].run_id in str(err.value)
        assert requests[1].run_id in str(err.value)


@pytest.mark.slow
class TestWorkerDeath:
    """Real worker crashes (os._exit) under every policy."""

    def test_fail_policy_raises_worker_crash(self):
        plan = FaultPlan.parse("2=crash")
        with SweepRunner(jobs=2) as runner:
            with pytest.raises(WorkerCrashError, match="worker process died"):
                runner.run(fast_requests(), policy="fail", faults=plan)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_continue_policy_quarantines_poison_run(self, jobs):
        # jobs=1 still works: a crash clause forces pooled execution.
        plan = FaultPlan.parse("2=crash")
        with SweepRunner(jobs=jobs) as runner:
            records = runner.run(fast_requests(), policy="continue", faults=plan)
        assert len(records) == 4
        failed = [r for r in records if not r.ok]
        assert len(failed) == 1
        failure = failed[0].failure
        assert failure.kind == "worker-crash"
        assert failure.error == "WorkerCrashError"
        assert failure.run_id == fast_requests()[2].run_id
        # innocent runs all survived with real results
        assert sum(1 for r in records if r.ok) == 3

    def test_retry_policy_charges_each_crash_attempt(self):
        plan = FaultPlan.parse("2=crash")
        policy = ErrorPolicy("continue", retries=1, backoff_base_s=0.0,
                             backoff_cap_s=0.0)
        with SweepRunner(jobs=2) as runner:
            records = runner.run(fast_requests(), policy=policy, faults=plan)
        failure = next(r for r in records if not r.ok).failure
        assert failure.kind == "worker-crash"
        assert failure.attempts == 2

    def test_retry_heals_transient_crash(self):
        plan = FaultPlan.parse("2=crash/1")  # crashes the first attempt only
        with SweepRunner(jobs=2) as runner:
            records = runner.run(fast_requests(), policy=RETRY_2, faults=plan)
        assert all(r.ok for r in records)

    def test_pool_survives_for_subsequent_batches(self):
        # A crash breaks the executor; the runner must transparently
        # rebuild so the same SweepRunner keeps working afterwards.
        plan = FaultPlan.parse("2=crash")
        with SweepRunner(jobs=2) as runner:
            first = runner.run(fast_requests(), policy="continue", faults=plan)
            second = runner.run(fast_requests((7, 8)), policy="continue")
        assert sum(1 for r in first if not r.ok) == 1
        assert all(r.ok for r in second)


@pytest.mark.slow
class TestRunTimeouts:
    """Hung runs killed by --run-timeout under every policy."""

    def test_fail_policy_raises_timeout(self):
        plan = FaultPlan.parse("1=hang:60")
        with SweepRunner(jobs=2) as runner:
            with pytest.raises(RunTimeoutError, match="timeout"):
                runner.run(
                    fast_requests(), policy="fail", faults=plan, run_timeout=2.0
                )

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_continue_policy_charges_only_the_hung_run(self, jobs):
        # jobs=1 still works: a run_timeout forces pooled execution.
        plan = FaultPlan.parse("1=hang:60")
        with SweepRunner(jobs=jobs) as runner:
            records = runner.run(
                fast_requests(), policy="continue", faults=plan, run_timeout=2.0
            )
        failed = [r for r in records if not r.ok]
        assert len(failed) == 1
        failure = failed[0].failure
        assert failure.kind == "timeout"
        assert failure.error == "RunTimeoutError"
        assert failure.run_id == fast_requests()[1].run_id
        assert sum(1 for r in records if r.ok) == 3

    def test_retry_heals_transient_hang(self):
        plan = FaultPlan.parse("1=hang:60/1")
        policy = ErrorPolicy("continue", retries=1, backoff_base_s=0.0,
                             backoff_cap_s=0.0)
        with SweepRunner(jobs=2) as runner:
            records = runner.run(
                fast_requests(), policy=policy, faults=plan, run_timeout=2.0
            )
        assert all(r.ok for r in records)

    def test_timeout_requires_positive(self):
        with SweepRunner() as runner:
            with pytest.raises(ValueError):
                runner.run(fast_requests((1,)), run_timeout=0)


class TestFailureStores:
    """Failure records checkpoint into both store backends."""

    @pytest.mark.parametrize("backend", ["dir", "sqlite"])
    def test_put_failure_round_trips(self, tmp_path, backend):
        store = (
            DirectoryStore(str(tmp_path / "tree"))
            if backend == "dir"
            else SqliteStore(str(tmp_path / "s.sqlite"))
        )
        request = fast_requests((1,))[0]
        failure = RunFailure(
            run_id=request.run_id,
            spec_id=request.spec_id,
            kwargs=request.kwargs_dict,
            kind="exception",
            error="ValueError",
            message="boom",
            traceback="Traceback ...",
            attempts=2,
            wall_s=0.5,
        )
        with store:
            store.put_failure(request, failure)
            loaded = store.failures()
            assert len(loaded) == 1
            assert loaded[0].to_dict() == failure.to_dict()
            assert loaded[0].wall_s == pytest.approx(0.5)
            # a failure is NOT a cache hit: the request re-executes
            assert store.get(request) is None
            assert failure.run_id in store.canonical_dump()["failures"]

    @pytest.mark.parametrize("backend", ["dir", "sqlite"])
    def test_success_supersedes_failure(self, tmp_path, backend):
        store = (
            DirectoryStore(str(tmp_path / "tree"))
            if backend == "dir"
            else SqliteStore(str(tmp_path / "s.sqlite"))
        )
        request = fast_requests((1,))[0]
        failure = RunFailure(
            run_id=request.run_id, spec_id=request.spec_id,
            kwargs=request.kwargs_dict, error="ValueError", message="boom",
        )
        with store:
            store.put_failure(request, failure)
            with SweepRunner() as runner:
                records = runner.run([request], store=store)
            assert records[0].ok and not records[0].cached
            assert store.failures() == []
            assert store.get(request) is not None

    def test_sweep_checkpoints_failures(self, tmp_path):
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        plan = FaultPlan.parse("1=raise")
        with store, SweepRunner() as runner:
            runner.run(fast_requests(), policy="continue", faults=plan, store=store)
            assert len(store.failures()) == 1
            assert len(store) == 3
            rs = store.result_set()
            assert len(rs) == 3 and len(rs.failures) == 1 and not rs.ok


class TestResumeAfterFailures:
    def test_resume_executes_only_failed_runs(self, tmp_path):
        store_path = str(tmp_path / "store.sqlite")
        plan = FaultPlan.parse("1=raise")
        with open_store(store_path) as store, SweepRunner() as runner:
            runner.run(fast_requests(), policy="continue", faults=plan, store=store)
        # resume without the chaos plan: 3 cache hits, 1 execution
        executed = []
        with open_store(store_path) as store, SweepRunner() as runner:
            records = runner.run(
                fast_requests(),
                on_record=lambda r: executed.append(r) if not r.cached else None,
                store=store,
            )
            assert all(r.ok for r in records)
            assert [r.request.run_id for r in executed] == [
                fast_requests()[1].run_id
            ]
            assert store.failures() == []
        # the resumed store equals an uninterrupted sweep's
        with open_store(str(tmp_path / "ref.sqlite")) as ref, SweepRunner() as runner:
            runner.run(fast_requests(), store=ref)
            with open_store(store_path) as resumed:
                assert resumed.digest() == ref.digest()

    @pytest.mark.slow
    def test_surviving_exports_byte_identical_across_jobs(self, tmp_path):
        """The acceptance-criteria core: chaos sweep at jobs 1 vs 4
        exports byte-identical surviving artefacts and failures.json,
        and a resumed tree equals an uninterrupted one."""
        plan = FaultPlan.parse("1=raise+2=crash")
        trees = {}
        for jobs in (1, 4):
            out = tmp_path / f"jobs{jobs}"
            with open_store(str(out)) as store, SweepRunner(jobs=jobs) as runner:
                runner.run(
                    fast_requests(), policy="continue", faults=plan, store=store
                )
            trees[jobs] = out
        # compare the full trees, skipping the two timing carriers
        skip = {"manifest.json", ".sweep-checkpoint.json"}
        for root, _dirs, files in os.walk(trees[1]):
            rel = os.path.relpath(root, trees[1])
            for name in files:
                if name in skip:
                    continue
                one = os.path.join(root, name)
                four = os.path.join(trees[4], rel, name)
                with open(one, "rb") as h1, open(four, "rb") as h4:
                    assert h1.read() == h4.read(), f"{rel}/{name} differs"
        for jobs in (1, 4):
            with open(trees[jobs] / "failures.json") as handle:
                failures = json.load(handle)["failures"]
            assert [f["run_id"] for f in failures] == sorted(
                fast_requests()[i].run_id for i in (1, 2)
            )
            assert {f["kind"] for f in failures} == {"exception", "worker-crash"}
        # resume one tree to completion: byte-identical to uninterrupted
        with open_store(str(trees[1])) as store, SweepRunner() as runner:
            runner.run(fast_requests(), store=store)
        ref = tmp_path / "ref"
        with open_store(str(ref)) as store, SweepRunner() as runner:
            runner.run(fast_requests(), store=store)
        assert not (trees[1] / "failures.json").exists()
        assert not (trees[1] / ".sweep-checkpoint.json").exists()
        for root, _dirs, files in os.walk(ref):
            rel = os.path.relpath(root, ref)
            for name in files:
                if name == "manifest.json":
                    continue
                with open(os.path.join(root, name), "rb") as h1:
                    with open(trees[1] / rel / name, "rb") as h2:
                        assert h1.read() == h2.read(), f"{rel}/{name} differs"


class TestResultsPlaneDegradation:
    def run_with_failures(self):
        plan = FaultPlan.parse("1=raise")
        with SweepRunner() as runner:
            records = runner.run(fast_requests(), policy="continue", faults=plan)
        return ResultSet.from_records(records)

    def test_result_set_surfaces_failures(self):
        results = self.run_with_failures()
        assert len(results) == 3
        assert len(results.failures) == 1
        assert not results.ok
        assert results.failures[0].error == "InjectedFault"

    def test_failures_survive_filter_and_slices(self):
        results = self.run_with_failures()
        assert results.filter(slots=300).failures == results.failures
        assert results[0:2].failures == results.failures

    def test_save_and_load_round_trip_failures(self, tmp_path):
        results = self.run_with_failures()
        out = str(tmp_path / "out")
        results.save(out)
        with open(os.path.join(out, "failures.json")) as handle:
            data = json.load(handle)
        assert len(data["failures"]) == 1
        assert "wall_s" not in data["failures"][0]  # deterministic form
        loaded = ResultSet.load(out)
        assert len(loaded) == 3
        assert [f.to_dict() for f in loaded.failures] == [
            f.to_dict() for f in results.failures
        ]

    def test_complete_save_removes_stale_failures_json(self, tmp_path):
        out = str(tmp_path / "out")
        self.run_with_failures().save(out)
        assert os.path.exists(os.path.join(out, "failures.json"))
        with SweepRunner() as runner:
            records = runner.run(fast_requests())
        ResultSet.from_records(records).save(out)
        assert not os.path.exists(os.path.join(out, "failures.json"))

    def test_compare_warns_on_incomplete_sweep(self):
        # stability has no algorithm axis; build a tiny meshgen-free
        # comparison over the failure-carrying set just to provoke the
        # warning path, using seed as the variant axis.
        results = self.run_with_failures()
        with pytest.warns(IncompleteSweepWarning, match="1 run\\(s\\) failed"):
            try:
                compare(results, baseline={"seed": "1"})
            except Exception:
                pass  # table shape is not under test here

    def test_compare_silent_on_complete_sweep(self):
        with SweepRunner() as runner:
            records = runner.run(fast_requests())
        results = ResultSet.from_records(records)
        with warnings.catch_warnings():
            warnings.simplefilter("error", IncompleteSweepWarning)
            try:
                compare(results, baseline={"seed": "1"})
            except IncompleteSweepWarning:  # pragma: no cover
                raise
            except Exception:
                pass


class TestKeyboardInterrupt:
    def test_interrupt_tears_down_the_pool(self):
        ticks = []

        def boom(record):
            ticks.append(record)
            if len(ticks) == 2:
                raise KeyboardInterrupt

        runner = SweepRunner(jobs=2)
        with pytest.raises(KeyboardInterrupt):
            runner.run(fast_requests(), on_record=boom)
        # the abort path killed and dropped the executor
        assert runner._executor is None
        runner.close()

    def test_cli_exits_130(self, monkeypatch, capsys):
        import repro.experiments.__main__ as cli

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "execute_requests", interrupted)
        code = cli.main(["sweep", "stability", "--set", "slots=300",
                         "--set", "trials=5"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err


class TestCLI:
    def sweep_argv(self, *extra, seeds="1,2,3"):
        return [
            "sweep", "stability",
            "--set", "slots=300", "--set", "trials=5",
            "--set", f"seed={seeds}",
            *extra,
        ]

    def test_on_error_continue_exits_4_with_summary(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        out = str(tmp_path / "out")
        code = main(self.sweep_argv(
            "--fault-plan", "1=raise", "--on-error", "continue", "--out", out
        ))
        assert code == 4
        captured = capsys.readouterr()
        assert "1 run(s) failed" in captured.err
        assert "[exception] InjectedFault" in captured.err
        assert "FAILED [exception]" in captured.out
        with open(os.path.join(out, "failures.json")) as handle:
            assert len(json.load(handle)["failures"]) == 1

    def test_on_error_fail_is_default_and_propagates(self):
        from repro.experiments.__main__ import main

        with pytest.raises(InjectedFault):
            main(self.sweep_argv("--fault-plan", "1=raise"))

    def test_clean_sweep_with_continue_exits_0(self, capsys):
        from repro.experiments.__main__ import main

        assert main(self.sweep_argv("--on-error", "continue")) == 0
        assert "failed" not in capsys.readouterr().err

    def test_bogus_policy_is_a_cli_error(self, capsys):
        from repro.experiments.__main__ import main

        assert main(self.sweep_argv("--on-error", "explode")) == 2
        assert "error policy" in capsys.readouterr().err

    def test_bogus_fault_plan_is_a_cli_error(self, capsys):
        from repro.experiments.__main__ import main

        assert main(self.sweep_argv("--fault-plan", "nonsense")) == 2

    def test_nonpositive_timeout_is_a_cli_error(self, capsys):
        from repro.experiments.__main__ import main

        assert main(self.sweep_argv("--run-timeout", "0")) == 2
        assert "--run-timeout" in capsys.readouterr().err

    def test_fault_plan_env_var(self, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.setenv(FAULT_PLAN_ENV, "1=raise")
        code = main(self.sweep_argv("--on-error", "continue"))
        assert code == 4
        assert "1 run(s) failed" in capsys.readouterr().err

    def test_store_resume_after_failures(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        store = str(tmp_path / "store.sqlite")
        code = main(self.sweep_argv(
            "--fault-plan", "1=raise", "--on-error", "continue",
            "--store", store,
        ))
        assert code == 4
        capsys.readouterr()
        # resume: the 2 survivors are cache hits, only the failure re-runs
        code = main(self.sweep_argv("--store", store, "--resume"))
        assert code == 0
        assert "2 cache hit(s), 1 executed" in capsys.readouterr().err

    def test_legacy_kill_hook_still_exits_3(self, capsys, monkeypatch, tmp_path):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_SWEEP_FAULT_AFTER", "1")
        code = main(self.sweep_argv("--store", str(tmp_path / "s.sqlite")))
        assert code == 3
        assert "injected fault after 1 executed run(s)" in capsys.readouterr().err
