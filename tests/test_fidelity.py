"""Tests for the engine-tier subsystem: registry, slotted mesh tier,
cross-tier sweeps and the validate-fidelity harness.

The contracts pinned here are the ones the fidelity axis rests on:
the winner process consumes the exact ``rng.choices`` draw sequence
(uniform fast path included), the slotted mesh is deterministic and
parallel-safe, ``fidelity=event`` changes no exported bytes, and the
validation report's pairing/tolerance logic fails loudly instead of
silently mis-pairing.
"""

import random

import pytest

import repro.experiments.meshgen  # noqa: F401  (registers the engine tiers)
import repro.sim.tiers as tiers_mod
from repro.analysis.activation import activation_distribution, successful_links
from repro.experiments.specs import catalogue, get_spec
from repro.results import (
    DEFAULT_TOLERANCES,
    ResultSet,
    Study,
    Tolerance,
    ValidationError,
    validate_fidelity,
)
from repro.results.types import canonical_result_dict
from repro.sim import EngineTier, UnknownTierError, get_tier, register_tier_entry
from repro.sim.slotted import SlottedFlow, SlottedMesh, sample_transmitters


def _choices_reference(contenders, cw, defer_of, rng):
    """The winner process spelled with random.choices (the contract)."""
    ordered = sorted(contenders)
    transmitters = []
    while ordered:
        weights = [1.0 / cw[node] for node in ordered]
        winner = rng.choices(ordered, weights=weights)[0]
        transmitters.append(winner)
        deferring = defer_of(winner)
        ordered = [o for o in ordered if o != winner and o not in deferring]
    return transmitters


class TestWinnerProcess:
    def test_matches_choices_reference_bit_for_bit(self):
        chain_defer = lambda w: (w - 1, w + 1)
        for trial in range(300):
            seed_rng = random.Random(trial)
            n = seed_rng.randint(2, 24)
            contenders = set(
                i for i in range(n) if seed_rng.random() < 0.7
            ) or {0}
            cw = {i: seed_rng.choice([16, 32, 64, 1024]) for i in range(n)}
            a = sample_transmitters(
                set(contenders), cw, chain_defer, random.Random(trial)
            )
            b = _choices_reference(
                contenders, cw, chain_defer, random.Random(trial)
            )
            assert a == b

    def test_uniform_fast_path_bit_identical(self):
        # cw=None asserts equal power-of-two windows; the fast path must
        # consume the same draws and pick the same winners as the
        # weighted arithmetic it replaces.
        chain_defer = lambda w: (w - 1, w + 1)
        for trial in range(300):
            seed_rng = random.Random(1000 + trial)
            n = seed_rng.randint(2, 24)
            contenders = set(i for i in range(n) if seed_rng.random() < 0.7) or {0}
            cw = {i: 16 for i in range(n)}
            rng_a, rng_b = random.Random(trial), random.Random(trial)
            a = sample_transmitters(set(contenders), cw, chain_defer, rng_a)
            b = sample_transmitters(set(contenders), None, chain_defer, rng_b)
            assert a == b
            # Same number of draws consumed: the streams stay aligned.
            assert rng_a.random() == rng_b.random()

    @pytest.mark.parametrize("uniform", [False, True])
    def test_winner_distribution_matches_activation_distribution(self, uniform):
        hops = 4
        buffers = [float("inf"), 1.0, 1.0, 1.0]
        cw = [16] * hops
        exact = activation_distribution(buffers, cw, hops)
        rng = random.Random(7 if uniform else 8)
        contenders = [i for i in range(hops) if i == 0 or buffers[i] > 0]
        counts = {}
        samples = 20000
        for _ in range(samples):
            transmitters = sample_transmitters(
                list(contenders),
                None if uniform else cw,
                lambda w: (w - 1, w + 1),
                rng,
            )
            pattern = successful_links(transmitters, hops)
            counts[pattern] = counts.get(pattern, 0) + 1
        assert set(counts) <= set(exact)
        for pattern, probability in exact.items():
            observed = counts.get(pattern, 0) / samples
            assert observed == pytest.approx(probability, abs=0.015)


class _ChainConnectivity:
    """Minimal duck-typed static chain 0 - 1 - ... - n."""

    def __init__(self, last: int):
        self.last = last

    def nodes(self):
        return list(range(self.last + 1))

    def receivers_of(self, node):
        return frozenset(
            v for v in (node - 1, node + 1) if 0 <= v <= self.last
        )

    def senders_received_at(self, node):
        return self.receivers_of(node)


def _chain_mesh(seed: int) -> SlottedMesh:
    last = 4
    flows = [SlottedFlow("F0", "cbr", 0, last, pkts_per_slot=0.45)]
    mesh = SlottedMesh(
        _ChainConnectivity(last),
        flows,
        rng=random.Random(seed),
        slot_s=0.01,
    )
    mesh.set_routes({last: {i: i + 1 for i in range(last)}})
    return mesh


class TestSlottedMeshDeterminism:
    def test_same_seed_identical_slot_trace(self):
        traces = []
        for _ in range(2):
            mesh = _chain_mesh(21)
            outcomes = []
            mesh.run(400, on_slot=outcomes.append)
            traces.append(outcomes)
        assert traces[0] == traces[1]
        assert any(outcome.delivered for outcome in traces[0])

    def test_record_false_changes_no_state(self):
        observed = _chain_mesh(33)
        observed.run(400, on_slot=lambda outcome: None)
        silent = _chain_mesh(33)
        for _ in range(400):
            assert silent.step(record=False) is None
        flow_a, flow_b = observed.flows[0], silent.flows[0]
        assert flow_a.generated == flow_b.generated
        assert flow_a.delivered == flow_b.delivered
        assert flow_a.lost == flow_b.lost
        assert observed.backlog() == silent.backlog()
        assert observed.cw == silent.cw


class TestTierRegistry:
    def test_unknown_fidelity_lists_known(self):
        with pytest.raises(UnknownTierError) as excinfo:
            get_tier("warp-speed")
        assert "warp-speed" in str(excinfo.value)
        assert isinstance(excinfo.value, ValueError)

    def test_entry_point_must_have_module_attr_form(self):
        with pytest.raises(ValueError):
            register_tier_entry("broken", "no-colon-here")
        with pytest.raises(ValueError):
            register_tier_entry("", "mod:attr")

    def test_lazy_entry_resolves_and_caches(self):
        name = "test-lazy-tier"
        try:
            register_tier_entry(name, "repro.experiments.tiers:SLOTTED_TIER")
            tier = get_tier(name)
            assert isinstance(tier, EngineTier)
            assert get_tier(name) is tier
        finally:
            tiers_mod._TIERS.pop(name, None)

    def test_entry_does_not_clobber_live_tier(self):
        live = get_tier("slotted")
        register_tier_entry("slotted", "repro.experiments.tiers:EVENT_TIER")
        assert get_tier("slotted") is live


class TestFidelityAxis:
    def test_event_default_bytes_unchanged(self):
        spec = get_spec("meshgen")
        implicit = spec.run(nodes=12, duration_s=6.0)
        explicit = spec.run(nodes=12, duration_s=6.0, fidelity="event")
        assert canonical_result_dict(implicit) == canonical_result_dict(explicit)
        assert "fidelity" not in implicit.parameters
        assert "fidelity" not in explicit.parameters

    def test_slotted_records_fidelity_parameter(self):
        result = get_spec("meshgen").run(
            nodes=12, duration_s=6.0, fidelity="slotted"
        )
        assert result.parameters["fidelity"] == "slotted"
        assert result.find_table("Summary") is not None

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            get_spec("meshgen").run(nodes=12, duration_s=2.0, fidelity="nope")

    def test_catalogue_advertises_fidelities(self):
        data = catalogue()
        assert data["schema"] == "repro.experiments/catalogue/2"
        by_id = {spec["id"]: spec for spec in data["experiments"]}
        assert by_id["meshgen"]["fidelities"] == ["event", "slotted"]
        assert by_id["fig1"]["fidelities"] == ["event"]

    def test_slotted_sweep_parallel_bytes_identical(self):
        def sweep(jobs):
            return (
                Study("meshgen")
                .no_default_axes()
                .grid(algorithm=["none", "ezflow"])
                .set(nodes=16, duration_s=6.0, fidelity="slotted")
                .run(jobs=jobs)
            )

        serial, parallel = sweep(1), sweep(2)
        assert serial.run_ids == parallel.run_ids
        for left, right in zip(serial, parallel):
            assert left.canonical() == right.canonical()


@pytest.fixture(scope="module")
def matrix():
    """A 2-algorithm x 2-tier meshgen matrix (one topology, fast)."""
    return (
        Study("meshgen")
        .no_default_axes()
        .grid(algorithm=["none", "ezflow"], fidelity=["event", "slotted"])
        .set(nodes=16, duration_s=10.0, seed=11)
        .run()
    )


class TestEffectiveParam:
    def test_request_kwargs_fill_elided_axes(self, matrix):
        for run in matrix:
            tier = run.effective_param("fidelity", "event")
            if str(run.kwargs.get("fidelity")) == "slotted":
                assert run.parameters["fidelity"] == "slotted"
                assert tier == "slotted"
            else:
                # The event default is elided from exported parameters
                # but still visible through the request kwargs.
                assert "fidelity" not in run.parameters
                assert tier == "event"
        assert matrix[0].effective_param("no_such_axis", "fallback") == "fallback"


class TestTolerance:
    def test_needs_a_bound(self):
        with pytest.raises(ValueError):
            Tolerance("aggregate_kbps")

    def test_either_bound_accepts(self):
        band = Tolerance("m", rel_tol=0.10, abs_tol=5.0)
        assert band.accepts(100.0, 104.0)  # inside both
        assert band.accepts(100.0, 109.0)  # abs out, rel in
        assert band.accepts(10.0, 14.0)  # rel out, abs in
        assert not band.accepts(10.0, 16.0)  # outside both

    def test_deltas_and_describe(self):
        band = Tolerance("m", rel_tol=0.5)
        abs_delta, rel_delta = band.deltas(10.0, 14.0)
        assert abs_delta == pytest.approx(4.0)
        assert rel_delta == pytest.approx(0.4)
        assert band.describe() == "rel<=0.5"
        assert Tolerance("m", abs_tol=2.0).describe() == "abs<=2"
        # Dead baseline metric: the floor keeps the ratio finite.
        _, rel_dead = band.deltas(0.0, 0.0)
        assert rel_dead == 0.0

    def test_defaults_cover_headline_metrics(self):
        assert [t.metric for t in DEFAULT_TOLERANCES] == [
            "aggregate_kbps",
            "delivered_ratio",
            "jain_fairness",
        ]


class TestValidateFidelity:
    def test_pairs_and_reports(self, matrix):
        report = validate_fidelity(matrix)
        assert report.pair_count == 2
        assert report.unpaired == ()
        assert len(report.rows) == 2 * len(DEFAULT_TOLERANCES)
        table = report.table()
        assert "slotted vs event" in table.title
        assert len(table.rows) == len(report.rows)

    def test_tight_tolerance_flags_violations(self, matrix):
        report = validate_fidelity(
            matrix, tolerances=[Tolerance("aggregate_kbps", rel_tol=1e-12)]
        )
        assert not report.ok
        assert report.violations
        rendered = report.table().render()
        assert "NO" in rendered

    def test_loose_tolerance_passes(self, matrix):
        report = validate_fidelity(
            matrix, tolerances=[Tolerance("aggregate_kbps", rel_tol=100.0)]
        )
        assert report.ok and not report.violations

    def test_unpaired_runs_reported(self, matrix):
        pruned = ResultSet(
            run
            for run in matrix
            if not (
                str(run.effective_param("fidelity", "event")) == "slotted"
                and str(run.effective_param("algorithm")) == "ezflow"
            )
        )
        report = validate_fidelity(pruned)
        assert report.pair_count == 1
        assert len(report.unpaired) == 1

    def test_duplicate_tier_in_group_rejected(self, matrix):
        with pytest.raises(ValidationError, match="several"):
            validate_fidelity(matrix, align=[])

    def test_empty_and_degenerate_inputs_rejected(self, matrix):
        with pytest.raises(ValidationError):
            validate_fidelity(ResultSet([]))
        with pytest.raises(ValidationError):
            validate_fidelity(matrix, candidate="event")
        with pytest.raises(ValidationError):
            validate_fidelity(matrix, tolerances=[])
        with pytest.raises(ValidationError, match="missing"):
            validate_fidelity(
                matrix, tolerances=[Tolerance("no_such_metric", abs_tol=1.0)]
            )
        only_event = ResultSet(
            run
            for run in matrix
            if str(run.effective_param("fidelity", "event")) == "event"
        )
        with pytest.raises(ValidationError, match="pair"):
            validate_fidelity(only_event)


class TestValidateFidelityCli:
    ARGS = [
        "validate-fidelity",
        "--topologies",
        "mesh",
        "--algorithms",
        "none,ezflow",
        "--nodes",
        "16",
        "--duration",
        "10",
    ]

    def test_fresh_matrix_passes(self, capsys):
        from repro.experiments.__main__ import main

        assert main(list(self.ARGS)) == 0
        captured = capsys.readouterr()
        assert "Fidelity agreement" in captured.out
        assert "fidelity validation OK" in captured.err

    def test_out_saves_runs_and_report_then_reloads(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_dir = tmp_path / "matrix"
        assert main(list(self.ARGS) + ["--out", str(out_dir)]) == 0
        assert (out_dir / "validation.md").is_file()
        capsys.readouterr()
        assert main(["validate-fidelity", "--from", str(out_dir)]) == 0
        assert "fidelity validation OK" in capsys.readouterr().err

    def test_violations_exit_1(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        out_dir = tmp_path / "matrix"
        assert main(list(self.ARGS) + ["--out", str(out_dir)]) == 0
        capsys.readouterr()
        monkeypatch.setattr(
            "repro.results.validation.DEFAULT_TOLERANCES",
            (Tolerance("aggregate_kbps", rel_tol=1e-12),),
        )
        assert main(["validate-fidelity", "--from", str(out_dir)]) == 1
        assert "FIDELITY VALIDATION FAILED" in capsys.readouterr().err

    def test_unpairable_set_exits_2(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_dir = tmp_path / "event-only"
        Study("meshgen").set(nodes=12, duration_s=4.0).run().save(str(out_dir))
        assert main(["validate-fidelity", "--from", str(out_dir)]) == 2
        assert "pair" in capsys.readouterr().err

    def test_static_only_skips_dynamic_cases(self, capsys):
        from repro.experiments.__main__ import main

        assert main(list(self.ARGS) + ["--static-only"]) == 0
        captured = capsys.readouterr()
        assert "0 dynamic case(s), x 2 tiers = 4 run(s)" in captured.err
        assert "iid:0.1" not in captured.out

    def test_dynamic_cases_in_default_matrix(self, capsys):
        from repro.experiments.__main__ import main

        assert main(list(self.ARGS)) == 0
        captured = capsys.readouterr()
        assert "2 dynamic case(s), x 2 tiers = 8 run(s)" in captured.err
        assert "iid:0.1" in captured.out
        assert "down:2@10+up:2@20" in captured.out


class TestValidationStudyDynamicCases:
    def test_dynamic_blocks_pair_and_align(self):
        from repro.results import validate_fidelity, validation_study
        from repro.results.validation import DYNAMIC_CASES

        results = validation_study(
            topologies=("mesh",),
            algorithms=("ezflow",),
            nodes=12,
            duration_s=4.0,
            seed=11,
            dynamic_cases=({"topology": "mesh", "algorithm": "ezflow", "loss": "iid:0.1"},),
        )
        assert len(results) == 4  # (static + loss case) x 2 tiers
        report = validate_fidelity(
            results, tolerances=[Tolerance("aggregate_kbps", rel_tol=10.0)]
        )
        assert report.pair_count == 2
        assert not report.unpaired
        scenarios = {row.scenario_dict.get("loss") for row in report.rows}
        assert scenarios == {"None", "iid:0.1"}
        # The default cases stay well-formed meshgen parameter sets.
        for case in DYNAMIC_CASES:
            get_spec("meshgen").validate(case)

    def test_dynamic_cases_checkpoint_into_store(self, tmp_path):
        from repro.results import SqliteStore, validation_study

        store = SqliteStore(str(tmp_path / "matrix.sqlite"))
        kwargs = dict(
            topologies=("mesh",),
            algorithms=("ezflow",),
            nodes=12,
            duration_s=4.0,
            seed=11,
            dynamic_cases=({"topology": "mesh", "algorithm": "ezflow", "loss": "iid:0.1"},),
            store=store,
        )
        validation_study(**kwargs)
        assert len(store) == 4
        # Re-running the same matrix against the store is all cache hits
        # (the store digest cannot change).
        digest = store.digest()
        validation_study(**kwargs)
        assert store.digest() == digest
        store.close()
