"""Tests for flows and the per-node stack."""

import pytest

from repro.mac.dcf import DcfConfig
from repro.net.flow import Flow
from repro.net.node import NodeStack
from repro.net.packet import Packet
from repro.net.routing import StaticRouting
from repro.phy.channel import Channel
from repro.phy.connectivity import GeometricConnectivity
from repro.phy.propagation import RangeModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceRecorder
from repro.sim.units import seconds


class TestFlow:
    def test_active_window(self):
        flow = Flow("F", 0, 1, start_us=100, stop_us=200)
        assert not flow.active_at(99)
        assert flow.active_at(100)
        assert flow.active_at(199)
        assert not flow.active_at(200)

    def test_active_without_stop(self):
        flow = Flow("F", 0, 1, start_us=100)
        assert flow.active_at(10**12)

    def test_note_delivered_records(self):
        flow = Flow("F", 0, 1)
        p = Packet(flow_id="F", seq=1, src=0, dst=1, created_at=0)
        flow.note_delivered(p, seconds(2))
        assert flow.delivered == 1
        assert p.delivered_at == seconds(2)
        assert flow.mean_delay_s(0, seconds(10)) == pytest.approx(2.0)

    def test_wrong_flow_packet_rejected(self):
        flow = Flow("F", 0, 1)
        p = Packet(flow_id="OTHER", seq=1, src=0, dst=1)
        with pytest.raises(ValueError):
            flow.note_delivered(p, 0)

    def test_throughput_bps(self):
        flow = Flow("F", 0, 1)
        for i in range(10):
            p = Packet(flow_id="F", seq=i, src=0, dst=1, size_bytes=1000)
            flow.note_delivered(p, seconds(i * 0.1))
        # 10 packets * 8000 bits in 1 s window
        assert flow.throughput_bps(0, seconds(1)) == pytest.approx(80_000.0)

    def test_throughput_series_kbps(self):
        flow = Flow("F", 0, 1)
        for i in range(4):
            p = Packet(flow_id="F", seq=i, src=0, dst=1, size_bytes=1000)
            flow.note_delivered(p, seconds(i))
        series = flow.throughput_series_kbps(0, seconds(4), bin_s=2.0)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(8.0)

    def test_path_delay_series(self):
        flow = Flow("F", 0, 1)
        p = Packet(flow_id="F", seq=1, src=0, dst=1, created_at=0)
        p.first_tx_at = seconds(1)
        flow.note_delivered(p, seconds(3))
        series = flow.path_delay_series_s(0, seconds(10))
        assert series == [(3.0, 2.0)]

    def test_empty_window_zero(self):
        flow = Flow("F", 0, 1)
        assert flow.throughput_bps(0, seconds(1)) == 0.0
        assert flow.mean_delay_s(0, seconds(1)) == 0.0


def build_chain(count=4, seed=0, spacing=200.0):
    engine = Engine()
    positions = {i: (i * spacing, 0.0) for i in range(count)}
    conn = GeometricConnectivity(positions, RangeModel())
    rng = RngRegistry(seed)
    trace = TraceRecorder()
    channel = Channel(engine, conn, rng, trace)
    routing = StaticRouting()
    nodes = {
        i: NodeStack(engine, channel, routing, i, DcfConfig(), rng, trace)
        for i in range(count)
    }
    routing.install_path(list(range(count)))
    return engine, nodes, routing


class TestNodeStack:
    def test_send_enqueues_own_queue(self):
        engine, nodes, routing = build_chain()
        p = Packet(flow_id="F", seq=1, src=0, dst=3)
        assert nodes[0].send(p)
        queue, _ = nodes[0].queue_for("own", 1)
        assert len(queue) == 1

    def test_multihop_delivery(self):
        engine, nodes, routing = build_chain()
        flow = Flow("F", 0, 3)
        nodes[3].register_flow(flow)
        for seq in range(3):
            nodes[0].send(Packet(flow_id="F", seq=seq, src=0, dst=3))
        engine.run(until=seconds(5))
        assert flow.delivered == 3

    def test_hops_counted(self):
        engine, nodes, routing = build_chain()
        delivered = []
        nodes[3].delivered_callbacks.append(lambda p, now: delivered.append(p))
        flow = Flow("F", 0, 3)
        nodes[3].register_flow(flow)
        nodes[0].send(Packet(flow_id="F", seq=1, src=0, dst=3))
        engine.run(until=seconds(5))
        assert delivered[0].hops == 3

    def test_first_tx_recorded_at_source_only(self):
        engine, nodes, routing = build_chain()
        flow = Flow("F", 0, 3)
        nodes[3].register_flow(flow)
        p = Packet(flow_id="F", seq=1, src=0, dst=3, created_at=0)
        nodes[0].send(p)
        engine.run(until=seconds(5))
        assert p.first_tx_at is not None
        assert p.path_delay_us < p.delay_us or p.delay_us == p.path_delay_us

    def test_own_and_forward_queues_separate(self):
        engine, nodes, routing = build_chain()
        own, _ = nodes[1].queue_for("own", 2)
        fwd, _ = nodes[1].queue_for("fwd", 2)
        assert own is not fwd

    def test_source_drop_when_queue_full(self):
        engine, nodes, routing = build_chain()
        for seq in range(60):
            nodes[0].send(Packet(flow_id="F", seq=seq, src=0, dst=3))
        assert nodes[0].source_drops == 10

    def test_total_buffer_occupancy(self):
        engine, nodes, routing = build_chain()
        for seq in range(5):
            nodes[0].send(Packet(flow_id="F", seq=seq, src=0, dst=3))
        assert nodes[0].total_buffer_occupancy() == 5
        assert nodes[0].forwarding_occupancy() == 0

    def test_sniffer_callback_fires_on_overheard_data(self):
        engine, nodes, routing = build_chain()
        flow = Flow("F", 0, 3)
        nodes[3].register_flow(flow)
        sniffed = []
        nodes[0].sniffer_callbacks.append(lambda frame, now: sniffed.append(frame))
        nodes[0].send(Packet(flow_id="F", seq=1, src=0, dst=3))
        engine.run(until=seconds(5))
        # node 0 overhears node 1 forwarding to node 2
        assert any(f.src == 1 and f.dst == 2 for f in sniffed)

    def test_sent_callback_fires_on_mac_success(self):
        engine, nodes, routing = build_chain()
        flow = Flow("F", 0, 3)
        nodes[3].register_flow(flow)
        sent = []
        nodes[0].sent_callbacks.append(
            lambda entity, pkt, frame, now: sent.append((entity.successor, pkt.seq))
        )
        nodes[0].send(Packet(flow_id="F", seq=9, src=0, dst=3))
        engine.run(until=seconds(5))
        assert sent == [(1, 9)]
