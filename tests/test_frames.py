"""Tests for MAC frame construction."""

from repro.mac.frames import (
    MAC_ACK_BYTES,
    MAC_DATA_HEADER_BYTES,
    Frame,
    FrameKind,
    make_ack_frame,
    make_data_frame,
)


class FakePacket:
    size_bytes = 1000


def test_data_frame_size_includes_header():
    frame = make_data_frame("a", "b", FakePacket(), seq=1)
    assert frame.size_bytes == 1000 + MAC_DATA_HEADER_BYTES


def test_ack_frame_size():
    ack = make_ack_frame("b", "a")
    assert ack.size_bytes == MAC_ACK_BYTES


def test_data_frame_addresses():
    frame = make_data_frame("a", "b", FakePacket(), seq=7)
    assert frame.src == "a"
    assert frame.dst == "b"
    assert frame.seq == 7
    assert frame.kind is FrameKind.DATA


def test_ack_frame_addresses():
    ack = make_ack_frame("b", "a")
    assert ack.src == "b"
    assert ack.dst == "a"
    assert ack.kind is FrameKind.ACK


def test_dedup_key_uses_src_and_seq():
    packet = FakePacket()
    one = make_data_frame("a", "b", packet, seq=1)
    dup = make_data_frame("a", "b", packet, seq=1)
    other = make_data_frame("a", "b", packet, seq=2)
    assert one.dedup_key() == dup.dedup_key()
    assert one.dedup_key() != other.dedup_key()


def test_retry_flag_default_false():
    frame = make_data_frame("a", "b", FakePacket(), seq=1)
    assert not frame.retry
